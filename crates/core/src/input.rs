//! Problem instances and result types shared by every MaxRS algorithm in this
//! crate.
//!
//! The paper states all ball algorithms in the *dual* setting (Section 1.4):
//! after scaling so the query ball has unit radius, every weighted input point
//! becomes a unit ball centered at it, and placing the query ball optimally is
//! the same as finding a point of maximum (weighted or colored) depth in that
//! ball collection.  The instance types here perform that scaling and
//! dualization once so the algorithms can work with unit balls throughout.

use mrs_geom::{Ball, ColoredSite, Point, WeightedPoint};

/// A placement of the query range for a weighted MaxRS problem: where to put
/// the range's center, and the total weight it covers there.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Placement<const D: usize> {
    /// Center of the query ball (original, unscaled coordinates).
    pub center: Point<D>,
    /// Total covered weight at this placement.
    pub value: f64,
}

impl<const D: usize> Placement<D> {
    /// A placement covering nothing, used for empty inputs.
    pub fn empty() -> Self {
        Self { center: Point::origin(), value: 0.0 }
    }
}

/// A placement of the query range for a colored MaxRS problem: where to put
/// the range's center, and how many distinct colors it covers there.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ColoredPlacement<const D: usize> {
    /// Center of the query ball (original, unscaled coordinates).
    pub center: Point<D>,
    /// Number of distinct colors covered at this placement.
    pub distinct: usize,
}

impl<const D: usize> ColoredPlacement<D> {
    /// A placement covering nothing, used for empty inputs.
    pub fn empty() -> Self {
        Self { center: Point::origin(), distinct: 0 }
    }
}

/// A weighted MaxRS instance with a `d`-ball query range of radius `radius`.
#[derive(Clone, Debug)]
pub struct WeightedBallInstance<const D: usize> {
    /// Input points with their weights.
    pub points: Vec<WeightedPoint<D>>,
    /// Radius of the query ball.
    pub radius: f64,
}

impl<const D: usize> WeightedBallInstance<D> {
    /// Creates an instance.
    ///
    /// # Panics
    /// Panics if the radius is not strictly positive, if any coordinate is not
    /// finite, or if any weight is negative or not finite (the paper's
    /// algorithms require non-negative weights).
    pub fn new(points: Vec<WeightedPoint<D>>, radius: f64) -> Self {
        assert!(radius.is_finite() && radius > 0.0, "query radius must be positive");
        for wp in &points {
            assert!(wp.point.is_finite(), "point coordinates must be finite");
            assert!(
                wp.weight.is_finite() && wp.weight >= 0.0,
                "weights must be finite and non-negative"
            );
        }
        Self { points, radius }
    }

    /// An unweighted instance (every weight 1).
    pub fn unweighted(points: Vec<Point<D>>, radius: f64) -> Self {
        Self::new(points.into_iter().map(WeightedPoint::unit).collect(), radius)
    }

    /// Number of input points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Returns `true` if the instance has no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Total weight of all points (an upper bound on any placement value).
    pub fn total_weight(&self) -> f64 {
        self.points.iter().map(|p| p.weight).sum()
    }

    /// The dual view: one *unit* ball per input point, in coordinates scaled
    /// by `1/radius`, paired with the point's weight.
    pub fn dual_unit_balls(&self) -> Vec<(Ball<D>, f64)> {
        let inv = 1.0 / self.radius;
        self.points.iter().map(|wp| (Ball::unit(wp.point.scale(inv)), wp.weight)).collect()
    }

    /// Maps a point expressed in the scaled (dual) coordinate system back to
    /// the original coordinates.
    pub fn unscale(&self, scaled: Point<D>) -> Point<D> {
        scaled.scale(self.radius)
    }

    /// The weighted depth at `center` in the *original* coordinates: total
    /// weight of input points within distance `radius` of `center`.  This is
    /// the value of the placement with that center.
    pub fn value_at(&self, center: &Point<D>) -> f64 {
        let query = Ball::new(*center, self.radius);
        self.points.iter().filter(|wp| query.contains(&wp.point)).map(|wp| wp.weight).sum()
    }
}

/// A colored MaxRS instance with a `d`-ball query range of radius `radius`.
#[derive(Clone, Debug)]
pub struct ColoredBallInstance<const D: usize> {
    /// Input sites with their colors.
    pub sites: Vec<ColoredSite<D>>,
    /// Radius of the query ball.
    pub radius: f64,
}

impl<const D: usize> ColoredBallInstance<D> {
    /// Creates an instance.
    ///
    /// # Panics
    /// Panics if the radius is not strictly positive or any coordinate is not
    /// finite.
    pub fn new(sites: Vec<ColoredSite<D>>, radius: f64) -> Self {
        assert!(radius.is_finite() && radius > 0.0, "query radius must be positive");
        for s in &sites {
            assert!(s.point.is_finite(), "site coordinates must be finite");
        }
        Self { sites, radius }
    }

    /// Number of input sites.
    pub fn len(&self) -> usize {
        self.sites.len()
    }

    /// Returns `true` if the instance has no sites.
    pub fn is_empty(&self) -> bool {
        self.sites.is_empty()
    }

    /// Number of distinct colors present in the input (an upper bound on any
    /// placement's distinct-color count).
    pub fn distinct_colors(&self) -> usize {
        let mut colors: Vec<usize> = self.sites.iter().map(|s| s.color).collect();
        colors.sort_unstable();
        colors.dedup();
        colors.len()
    }

    /// The dual view: one unit ball per site in coordinates scaled by
    /// `1/radius`, paired with the site's color.
    pub fn dual_unit_balls(&self) -> Vec<(Ball<D>, usize)> {
        let inv = 1.0 / self.radius;
        self.sites.iter().map(|s| (Ball::unit(s.point.scale(inv)), s.color)).collect()
    }

    /// Maps a point expressed in the scaled (dual) coordinate system back to
    /// the original coordinates.
    pub fn unscale(&self, scaled: Point<D>) -> Point<D> {
        scaled.scale(self.radius)
    }

    /// The colored depth at `center` in the original coordinates: number of
    /// distinct colors among sites within distance `radius` of `center`.
    pub fn distinct_at(&self, center: &Point<D>) -> usize {
        let query = Ball::new(*center, self.radius);
        let mut colors: Vec<usize> =
            self.sites.iter().filter(|s| query.contains(&s.point)).map(|s| s.color).collect();
        colors.sort_unstable();
        colors.dedup();
        colors.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrs_geom::Point2;

    #[test]
    fn weighted_instance_basics() {
        let inst = WeightedBallInstance::new(
            vec![
                WeightedPoint::new(Point2::xy(0.0, 0.0), 2.0),
                WeightedPoint::new(Point2::xy(1.0, 0.0), 3.0),
                WeightedPoint::new(Point2::xy(10.0, 0.0), 5.0),
            ],
            2.0,
        );
        assert_eq!(inst.len(), 3);
        assert_eq!(inst.total_weight(), 10.0);
        assert_eq!(inst.value_at(&Point2::xy(0.5, 0.0)), 5.0);
        assert_eq!(inst.value_at(&Point2::xy(10.0, 0.0)), 5.0);
        let dual = inst.dual_unit_balls();
        assert_eq!(dual.len(), 3);
        assert!((dual[1].0.center.x() - 0.5).abs() < 1e-12);
        assert_eq!(dual[1].0.radius, 1.0);
        assert_eq!(inst.unscale(Point2::xy(0.5, 0.0)), Point2::xy(1.0, 0.0));
    }

    #[test]
    fn unweighted_constructor_gives_unit_weights() {
        let inst = WeightedBallInstance::unweighted(vec![Point2::xy(0.0, 0.0); 4], 1.0);
        assert_eq!(inst.total_weight(), 4.0);
    }

    #[test]
    #[should_panic(expected = "weights must be finite and non-negative")]
    fn negative_weights_rejected() {
        WeightedBallInstance::new(vec![WeightedPoint::new(Point2::xy(0.0, 0.0), -1.0)], 1.0);
    }

    #[test]
    #[should_panic(expected = "query radius must be positive")]
    fn zero_radius_rejected() {
        WeightedBallInstance::<2>::new(vec![], 0.0);
    }

    #[test]
    fn colored_instance_basics() {
        let inst = ColoredBallInstance::new(
            vec![
                ColoredSite::new(Point2::xy(0.0, 0.0), 0),
                ColoredSite::new(Point2::xy(0.2, 0.0), 0),
                ColoredSite::new(Point2::xy(0.4, 0.0), 1),
                ColoredSite::new(Point2::xy(9.0, 9.0), 2),
            ],
            1.0,
        );
        assert_eq!(inst.distinct_colors(), 3);
        assert_eq!(inst.distinct_at(&Point2::xy(0.0, 0.0)), 2);
        assert_eq!(inst.distinct_at(&Point2::xy(9.0, 9.0)), 1);
        assert_eq!(inst.distinct_at(&Point2::xy(50.0, 50.0)), 0);
    }

    #[test]
    fn placements_default_to_empty() {
        assert_eq!(Placement::<2>::empty().value, 0.0);
        assert_eq!(ColoredPlacement::<3>::empty().distinct, 0);
    }
}
