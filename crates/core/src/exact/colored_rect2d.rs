//! Exact colored rectangle MaxRS in the plane.
//!
//! The colored problem for axis-aligned rectangles is the setting of
//! [ZGH+22], which the paper cites as prior work (Section 1.3) and whose
//! `O(n log n)` algorithm motivates asking the same question for balls.  This
//! module provides an exact solver so the colored-ball algorithms have a
//! rectangle counterpart to be compared with: a sweep over candidate vertical
//! positions with an incremental sliding window over x, running in `O(n²)`
//! after sorting — not as sharp as [ZGH+22] but exact, simple and fast enough
//! to serve as a baseline and test oracle for every workload in this
//! repository.

use std::collections::HashMap;

use mrs_geom::{Aabb, ColoredSite, Point2, Rect};

/// Result of an exact colored rectangle MaxRS query.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ColoredRectPlacement {
    /// The chosen rectangle.
    pub rect: Rect,
    /// Number of distinct colors it covers.
    pub distinct: usize,
}

/// Number of distinct colors among sites inside the closed rectangle.
pub fn colored_rect_count(sites: &[ColoredSite<2>], rect: &Rect) -> usize {
    let mut colors: Vec<usize> =
        sites.iter().filter(|s| rect.contains(&s.point)).map(|s| s.color).collect();
    colors.sort_unstable();
    colors.dedup();
    colors.len()
}

/// Incremental distinct-color counter over a multiset of colors.
#[derive(Default)]
struct DistinctCounter {
    counts: HashMap<usize, usize>,
}

impl DistinctCounter {
    fn add(&mut self, color: usize) {
        *self.counts.entry(color).or_insert(0) += 1;
    }

    fn remove(&mut self, color: usize) {
        if let Some(c) = self.counts.get_mut(&color) {
            *c -= 1;
            if *c == 0 {
                self.counts.remove(&color);
            }
        }
    }

    fn distinct(&self) -> usize {
        self.counts.len()
    }
}

/// Exact colored MaxRS for a closed `width × height` axis-aligned rectangle:
/// returns a placement covering the maximum number of distinct colors.
///
/// The sweep enumerates the `2n` candidate bottom edges (every site's `y` and
/// every site's `y − height`); for each it performs one linear two-pointer
/// pass over the sites sorted by `x`, maintaining a distinct-color counter for
/// the current window of width `width`.  Total time `O(n²)` after an
/// `O(n log n)` sort.
///
/// # Panics
/// Panics if `width` or `height` is negative or not finite.
pub fn exact_colored_rect(
    sites: &[ColoredSite<2>],
    width: f64,
    height: f64,
) -> ColoredRectPlacement {
    assert!(width.is_finite() && width >= 0.0, "rectangle width must be non-negative");
    assert!(height.is_finite() && height >= 0.0, "rectangle height must be non-negative");
    if sites.is_empty() {
        return ColoredRectPlacement {
            rect: Aabb::new(Point2::xy(0.0, 0.0), Point2::xy(width, height)),
            distinct: 0,
        };
    }

    // Sites sorted by x once; reused by every horizontal pass.
    let mut by_x: Vec<&ColoredSite<2>> = sites.iter().collect();
    by_x.sort_by(|a, b| a.point.x().partial_cmp(&b.point.x()).unwrap());

    // Candidate bottom edges: a maximum-depth rectangle can always be pushed
    // down until its bottom or top edge touches a site.
    let mut bottoms: Vec<f64> = Vec::with_capacity(2 * sites.len());
    for s in sites {
        bottoms.push(s.point.y());
        bottoms.push(s.point.y() - height);
    }
    bottoms.sort_by(|a, b| a.partial_cmp(b).unwrap());
    bottoms.dedup_by(|a, b| (*a - *b).abs() < 1e-12);

    let mut best = ColoredRectPlacement {
        rect: Aabb::new(
            Point2::xy(by_x[0].point.x(), bottoms[0]),
            Point2::xy(by_x[0].point.x() + width, bottoms[0] + height),
        ),
        distinct: 0,
    };

    for &bottom in &bottoms {
        let top = bottom + height;
        // The strip of sites whose y lies in [bottom, top], in x order.
        let strip: Vec<&ColoredSite<2>> = by_x
            .iter()
            .copied()
            .filter(|s| s.point.y() >= bottom - 1e-12 && s.point.y() <= top + 1e-12)
            .collect();
        if strip.len() <= best.distinct {
            // Even if every strip site had a unique color we could not improve.
            continue;
        }
        // Two-pointer pass over candidate left edges: every strip x and every
        // strip x − width, in increasing order.
        let xs: Vec<f64> = strip.iter().map(|s| s.point.x()).collect();
        let mut starts: Vec<f64> = xs.iter().map(|x| x - width).chain(xs.iter().copied()).collect();
        starts.sort_by(|a, b| a.partial_cmp(b).unwrap());
        starts.dedup_by(|a, b| (*a - *b).abs() < 1e-12);

        let mut counter = DistinctCounter::default();
        let mut lo = 0usize; // first strip index inside the window
        let mut hi = 0usize; // one past the last strip index inside the window
        for &left in &starts {
            let right = left + width;
            while hi < strip.len() && xs[hi] <= right + 1e-12 {
                counter.add(strip[hi].color);
                hi += 1;
            }
            while lo < hi && xs[lo] < left - 1e-12 {
                counter.remove(strip[lo].color);
                lo += 1;
            }
            if counter.distinct() > best.distinct {
                best = ColoredRectPlacement {
                    rect: Aabb::new(Point2::xy(left, bottom), Point2::xy(right, top)),
                    distinct: counter.distinct(),
                };
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::prelude::*;

    fn site(x: f64, y: f64, color: usize) -> ColoredSite<2> {
        ColoredSite::new(Point2::xy(x, y), color)
    }

    /// O(n³) oracle over the candidate anchor grid.
    fn brute(sites: &[ColoredSite<2>], w: f64, h: f64) -> usize {
        let mut best = 0;
        for sx in sites {
            for sy in sites {
                for (ax, ay) in [
                    (sx.point.x(), sy.point.y()),
                    (sx.point.x() - w, sy.point.y()),
                    (sx.point.x(), sy.point.y() - h),
                    (sx.point.x() - w, sy.point.y() - h),
                ] {
                    let rect = Aabb::new(Point2::xy(ax, ay), Point2::xy(ax + w, ay + h));
                    best = best.max(colored_rect_count(sites, &rect));
                }
            }
        }
        best
    }

    #[test]
    fn empty_and_single_inputs() {
        assert_eq!(exact_colored_rect(&[], 1.0, 1.0).distinct, 0);
        let one = vec![site(3.0, 4.0, 9)];
        let res = exact_colored_rect(&one, 0.5, 0.5);
        assert_eq!(res.distinct, 1);
        assert!(res.rect.contains(&Point2::xy(3.0, 4.0)));
    }

    #[test]
    fn duplicate_colors_do_not_inflate_the_count() {
        let sites =
            vec![site(0.0, 0.0, 0), site(0.1, 0.1, 0), site(0.2, 0.2, 0), site(0.3, 0.3, 1)];
        assert_eq!(exact_colored_rect(&sites, 1.0, 1.0).distinct, 2);
    }

    #[test]
    fn figure_1b_style_instance_with_a_rectangle() {
        let sites = vec![
            site(0.0, 0.0, 0),
            site(0.3, 0.2, 0),
            site(0.5, 0.0, 1),
            site(0.1, 0.6, 2),
            site(10.0, 10.0, 3),
        ];
        let res = exact_colored_rect(&sites, 1.0, 1.0);
        assert_eq!(res.distinct, 3);
        assert_eq!(colored_rect_count(&sites, &res.rect), 3);
    }

    #[test]
    fn tall_and_wide_rectangles_behave_differently() {
        // Colors stacked vertically: only a tall rectangle collects them all.
        let sites = vec![site(0.0, 0.0, 0), site(0.0, 2.0, 1), site(0.0, 4.0, 2)];
        assert_eq!(exact_colored_rect(&sites, 1.0, 1.0).distinct, 1);
        assert_eq!(exact_colored_rect(&sites, 1.0, 4.0).distinct, 3);
        assert_eq!(exact_colored_rect(&sites, 4.0, 1.0).distinct, 1);
    }

    #[test]
    fn matches_brute_force_on_random_instances() {
        let mut rng = StdRng::seed_from_u64(19);
        for round in 0..40 {
            let n = rng.gen_range(1..35);
            let m = rng.gen_range(1..8usize);
            let sites: Vec<ColoredSite<2>> = (0..n)
                .map(|_| {
                    site(rng.gen_range(0.0..6.0), rng.gen_range(0.0..6.0), rng.gen_range(0..m))
                })
                .collect();
            let w = rng.gen_range(0.3..3.0);
            let h = rng.gen_range(0.3..3.0);
            let fast = exact_colored_rect(&sites, w, h);
            let slow = brute(&sites, w, h);
            assert_eq!(fast.distinct, slow, "round {round} (w={w:.2}, h={h:.2})");
            assert_eq!(colored_rect_count(&sites, &fast.rect), fast.distinct);
        }
    }

    proptest! {
        #[test]
        fn count_is_bounded_by_palette_size(
            coords in proptest::collection::vec((0.0f64..10.0, 0.0f64..10.0, 0usize..6), 1..40),
            w in 0.5f64..4.0,
            h in 0.5f64..4.0,
        ) {
            let sites: Vec<ColoredSite<2>> =
                coords.iter().map(|&(x, y, c)| site(x, y, c)).collect();
            let palette: std::collections::HashSet<usize> =
                sites.iter().map(|s| s.color).collect();
            let res = exact_colored_rect(&sites, w, h);
            prop_assert!(res.distinct >= 1);
            prop_assert!(res.distinct <= palette.len());
            // A bigger rectangle never covers fewer colors.
            let bigger = exact_colored_rect(&sites, w * 2.0, h * 2.0);
            prop_assert!(bigger.distinct >= res.distinct);
        }
    }
}
