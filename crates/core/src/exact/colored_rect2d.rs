//! Exact colored rectangle MaxRS in the plane.
//!
//! The colored problem for axis-aligned rectangles is the setting of
//! [ZGH+22], which the paper cites as prior work (Section 1.3) and whose
//! `O(n log n)` algorithm motivates asking the same question for balls.  This
//! module provides an exact solver so the colored-ball algorithms have a
//! rectangle counterpart to be compared with: a sweep over candidate vertical
//! positions with an incremental sliding window over x, running in `O(n²)`
//! after sorting — not as sharp as [ZGH+22] but exact, simple and fast enough
//! to serve as a baseline and test oracle for every workload in this
//! repository.

use mrs_geom::{Aabb, ColoredSite, Point2, Rect};

/// Result of an exact colored rectangle MaxRS query.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ColoredRectPlacement {
    /// The chosen rectangle.
    pub rect: Rect,
    /// Number of distinct colors it covers.
    pub distinct: usize,
}

/// Number of distinct colors among sites inside the closed rectangle.
pub fn colored_rect_count(sites: &[ColoredSite<2>], rect: &Rect) -> usize {
    let mut colors: Vec<usize> =
        sites.iter().filter(|s| rect.contains(&s.point)).map(|s| s.color).collect();
    colors.sort_unstable();
    colors.dedup();
    colors.len()
}

/// Incremental distinct-color counter over a multiset of *dense* color
/// indices (`0..m`, see [`dense_colors`]): a flat count array instead of a
/// hash map, so every add/remove is one array access.
struct DistinctCounter {
    counts: Vec<u32>,
    distinct: usize,
}

impl DistinctCounter {
    fn new(num_colors: usize) -> Self {
        Self { counts: vec![0; num_colors], distinct: 0 }
    }

    // Both updates are branch-free: the 0→1 / 1→0 transitions fold into the
    // running distinct count as a boolean, so the window loops carry no
    // data-dependent branch per site (see `mrs_geom::kernels` for the same
    // idiom in the distance filters).
    #[inline]
    fn add(&mut self, color: usize) {
        let c = self.counts[color] + 1;
        self.counts[color] = c;
        self.distinct += usize::from(c == 1);
    }

    #[inline]
    fn remove(&mut self, color: usize) {
        let c = self.counts[color] - 1;
        self.counts[color] = c;
        self.distinct -= usize::from(c == 0);
    }

    fn distinct(&self) -> usize {
        self.distinct
    }
}

/// Remaps arbitrary color ids to dense indices `0..m` (sorted-id order, so
/// the mapping is deterministic).  Returns the per-site dense color array
/// and `m`.
fn dense_colors(sites: &[ColoredSite<2>]) -> (Vec<usize>, usize) {
    let mut palette: Vec<usize> = sites.iter().map(|s| s.color).collect();
    palette.sort_unstable();
    palette.dedup();
    let dense = sites
        .iter()
        .map(|s| palette.binary_search(&s.color).expect("color is in its own palette"))
        .collect();
    (dense, palette.len())
}

/// Exact colored MaxRS for a closed `width × height` axis-aligned rectangle:
/// returns a placement covering the maximum number of distinct colors.
///
/// The sweep enumerates the `2n` candidate bottom edges (every site's `y` and
/// every site's `y − height`); for each it performs one linear two-pointer
/// pass over the sites sorted by `x`, maintaining a distinct-color counter for
/// the current window of width `width`.  Total time `O(n²)` after an
/// `O(n log n)` sort.
///
/// # Panics
/// Panics if `width` or `height` is negative or not finite.
pub fn exact_colored_rect(
    sites: &[ColoredSite<2>],
    width: f64,
    height: f64,
) -> ColoredRectPlacement {
    assert!(width.is_finite() && width >= 0.0, "rectangle width must be non-negative");
    assert!(height.is_finite() && height >= 0.0, "rectangle height must be non-negative");
    if sites.is_empty() {
        return ColoredRectPlacement {
            rect: Aabb::new(Point2::xy(0.0, 0.0), Point2::xy(width, height)),
            distinct: 0,
        };
    }

    let (dense, num_colors) = dense_colors(sites);

    // Sites sorted by x once (reused by every horizontal pass) and by y once
    // (driving the incremental strip window).
    let mut by_x: Vec<usize> = (0..sites.len()).collect();
    by_x.sort_by(|&a, &b| sites[a].point.x().partial_cmp(&sites[b].point.x()).unwrap());
    let mut by_y: Vec<usize> = (0..sites.len()).collect();
    by_y.sort_by(|&a, &b| sites[a].point.y().partial_cmp(&sites[b].point.y()).unwrap());
    // SoA mirrors in x order: contiguous rows the laned band filter streams
    // through, instead of gathering `sites[s].point.y()` per index.
    let ys_in_x_order: Vec<f64> = by_x.iter().map(|&s| sites[s].point.y()).collect();
    let xs_in_x_order: Vec<f64> = by_x.iter().map(|&s| sites[s].point.x()).collect();

    // Candidate bottom edges: a maximum-depth rectangle can always be pushed
    // down until its bottom or top edge touches a site.
    let mut bottoms: Vec<f64> = Vec::with_capacity(2 * sites.len());
    for s in sites {
        bottoms.push(s.point.y());
        bottoms.push(s.point.y() - height);
    }
    bottoms.sort_by(|a, b| a.partial_cmp(b).unwrap());
    bottoms.dedup_by(|a, b| (*a - *b).abs() < 1e-12);

    let mut best = ColoredRectPlacement {
        rect: Aabb::new(
            Point2::xy(sites[by_x[0]].point.x(), bottoms[0]),
            Point2::xy(sites[by_x[0]].point.x() + width, bottoms[0] + height),
        ),
        distinct: 0,
    };

    // The strip `[bottom, bottom + height]` slides monotonically upward as
    // the bottoms ascend, so its membership — and its distinct-color count —
    // is maintained incrementally over `by_y`: each site enters and leaves
    // exactly once across the whole sweep.  A strip whose distinct count
    // cannot *strictly* beat the best is skipped before any per-strip work
    // (behavior-identical: the horizontal pass could never improve on it).
    let mut strip_counter = DistinctCounter::new(num_colors);
    let mut win_lo = 0usize;
    let mut win_hi = 0usize;
    let mut counter = DistinctCounter::new(num_colors);
    let mut strip: Vec<usize> = Vec::new();
    let mut xs: Vec<f64> = Vec::new();
    let mut starts: Vec<f64> = Vec::new();
    for &bottom in &bottoms {
        let top = bottom + height;
        while win_hi < by_y.len() && sites[by_y[win_hi]].point.y() <= top + 1e-12 {
            strip_counter.add(dense[by_y[win_hi]]);
            win_hi += 1;
        }
        while win_lo < win_hi && sites[by_y[win_lo]].point.y() < bottom - 1e-12 {
            strip_counter.remove(dense[by_y[win_lo]]);
            win_lo += 1;
        }
        if strip_counter.distinct() <= best.distinct {
            continue;
        }
        // The strip in x order (only materialized for strips that can win):
        // one laned band filter over the SoA y row fills the index list and
        // the x row in the same in-order drain.
        strip.clear();
        xs.clear();
        mrs_geom::kernels::filter_in_band(&ys_in_x_order, bottom - 1e-12, top + 1e-12, |i| {
            strip.push(by_x[i]);
            xs.push(xs_in_x_order[i]);
        });
        // Two-pointer pass over candidate left edges: every strip x and every
        // strip x − width, in increasing order (a merge of two already-sorted
        // streams).
        starts.clear();
        let (mut ia, mut ib) = (0usize, 0usize);
        while ia < xs.len() || ib < xs.len() {
            let shifted = if ia < xs.len() { xs[ia] - width } else { f64::INFINITY };
            let plain = if ib < xs.len() { xs[ib] } else { f64::INFINITY };
            if shifted <= plain {
                starts.push(shifted);
                ia += 1;
            } else {
                starts.push(plain);
                ib += 1;
            }
        }
        starts.dedup_by(|a, b| (*a - *b).abs() < 1e-12);

        let mut lo = 0usize; // first strip index inside the window
        let mut hi = 0usize; // one past the last strip index inside the window
        for &left in starts.iter() {
            let right = left + width;
            while hi < strip.len() && xs[hi] <= right + 1e-12 {
                counter.add(dense[strip[hi]]);
                hi += 1;
            }
            while lo < hi && xs[lo] < left - 1e-12 {
                counter.remove(dense[strip[lo]]);
                lo += 1;
            }
            if counter.distinct() > best.distinct {
                best = ColoredRectPlacement {
                    rect: Aabb::new(Point2::xy(left, bottom), Point2::xy(right, top)),
                    distinct: counter.distinct(),
                };
            }
        }
        // Drain the window so the counter is clean for the next strip.
        for &s in &strip[lo..hi] {
            counter.remove(dense[s]);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::prelude::*;

    fn site(x: f64, y: f64, color: usize) -> ColoredSite<2> {
        ColoredSite::new(Point2::xy(x, y), color)
    }

    /// O(n³) oracle over the candidate anchor grid.
    fn brute(sites: &[ColoredSite<2>], w: f64, h: f64) -> usize {
        let mut best = 0;
        for sx in sites {
            for sy in sites {
                for (ax, ay) in [
                    (sx.point.x(), sy.point.y()),
                    (sx.point.x() - w, sy.point.y()),
                    (sx.point.x(), sy.point.y() - h),
                    (sx.point.x() - w, sy.point.y() - h),
                ] {
                    let rect = Aabb::new(Point2::xy(ax, ay), Point2::xy(ax + w, ay + h));
                    best = best.max(colored_rect_count(sites, &rect));
                }
            }
        }
        best
    }

    #[test]
    fn empty_and_single_inputs() {
        assert_eq!(exact_colored_rect(&[], 1.0, 1.0).distinct, 0);
        let one = vec![site(3.0, 4.0, 9)];
        let res = exact_colored_rect(&one, 0.5, 0.5);
        assert_eq!(res.distinct, 1);
        assert!(res.rect.contains(&Point2::xy(3.0, 4.0)));
    }

    #[test]
    fn duplicate_colors_do_not_inflate_the_count() {
        let sites =
            vec![site(0.0, 0.0, 0), site(0.1, 0.1, 0), site(0.2, 0.2, 0), site(0.3, 0.3, 1)];
        assert_eq!(exact_colored_rect(&sites, 1.0, 1.0).distinct, 2);
    }

    #[test]
    fn figure_1b_style_instance_with_a_rectangle() {
        let sites = vec![
            site(0.0, 0.0, 0),
            site(0.3, 0.2, 0),
            site(0.5, 0.0, 1),
            site(0.1, 0.6, 2),
            site(10.0, 10.0, 3),
        ];
        let res = exact_colored_rect(&sites, 1.0, 1.0);
        assert_eq!(res.distinct, 3);
        assert_eq!(colored_rect_count(&sites, &res.rect), 3);
    }

    #[test]
    fn tall_and_wide_rectangles_behave_differently() {
        // Colors stacked vertically: only a tall rectangle collects them all.
        let sites = vec![site(0.0, 0.0, 0), site(0.0, 2.0, 1), site(0.0, 4.0, 2)];
        assert_eq!(exact_colored_rect(&sites, 1.0, 1.0).distinct, 1);
        assert_eq!(exact_colored_rect(&sites, 1.0, 4.0).distinct, 3);
        assert_eq!(exact_colored_rect(&sites, 4.0, 1.0).distinct, 1);
    }

    #[test]
    fn matches_brute_force_on_random_instances() {
        let mut rng = StdRng::seed_from_u64(19);
        for round in 0..40 {
            let n = rng.gen_range(1..35);
            let m = rng.gen_range(1..8usize);
            let sites: Vec<ColoredSite<2>> = (0..n)
                .map(|_| {
                    site(rng.gen_range(0.0..6.0), rng.gen_range(0.0..6.0), rng.gen_range(0..m))
                })
                .collect();
            let w = rng.gen_range(0.3..3.0);
            let h = rng.gen_range(0.3..3.0);
            let fast = exact_colored_rect(&sites, w, h);
            let slow = brute(&sites, w, h);
            assert_eq!(fast.distinct, slow, "round {round} (w={w:.2}, h={h:.2})");
            assert_eq!(colored_rect_count(&sites, &fast.rect), fast.distinct);
        }
    }

    proptest! {
        #[test]
        fn count_is_bounded_by_palette_size(
            coords in proptest::collection::vec((0.0f64..10.0, 0.0f64..10.0, 0usize..6), 1..40),
            w in 0.5f64..4.0,
            h in 0.5f64..4.0,
        ) {
            let sites: Vec<ColoredSite<2>> =
                coords.iter().map(|&(x, y, c)| site(x, y, c)).collect();
            let palette: std::collections::HashSet<usize> =
                sites.iter().map(|s| s.color).collect();
            let res = exact_colored_rect(&sites, w, h);
            prop_assert!(res.distinct >= 1);
            prop_assert!(res.distinct <= palette.len());
            // A bigger rectangle never covers fewer colors.
            let bigger = exact_colored_rect(&sites, w * 2.0, h * 2.0);
            prop_assert!(bigger.distinct >= res.distinct);
        }
    }
}
