//! Exact MaxRS baselines.
//!
//! These are the exact algorithms the paper builds on, compares against, or
//! reduces to:
//!
//! * [`interval1d`] — exact interval MaxRS on the line (`O(n log n)`), the
//!   per-length oracle of the batched problem of Section 5;
//! * [`rect2d`] — exact rectangle MaxRS in the plane (`O(n log n)`,
//!   \[IA83\]/\[NB95\]);
//! * [`disk2d`] — exact disk MaxRS in the plane (`O(n² log n)`, \[CL86\]);
//! * [`colored_disk2d`] — the straightforward exact algorithm for colored disk
//!   MaxRS by candidate enumeration;
//! * [`colored_rect2d`] — exact colored rectangle MaxRS (the \[ZGH+22\] setting
//!   the paper cites as prior work);
//! * [`brute`] — brute-force depth oracles and `opt` lower bounds in arbitrary
//!   small dimension, used by the test-suite to validate the randomized
//!   techniques.

pub mod brute;
pub mod colored_disk2d;
pub mod colored_rect2d;
pub mod disk2d;
pub mod interval1d;
pub mod rect2d;

pub use colored_disk2d::exact_colored_disk;
pub use colored_rect2d::{exact_colored_rect, ColoredRectPlacement};
pub use disk2d::max_disk_placement;
pub use interval1d::{max_interval_placement, IntervalPlacement, LinePoint, SortedLine};
pub use rect2d::{max_rect_placement, RectPlacement};
