//! Exact disk MaxRS in the plane in `O(n² log n)` time.
//!
//! This is the Chazelle–Lee style angular sweep \[CL86\] the paper uses as the
//! exact comparator for its `d`-ball approximation algorithms (and whose
//! conditional Ω(n²) lower bound \[AH08\] motivates those approximations).  In
//! the dual view every weighted input point becomes a disk of the query
//! radius; the deepest point of that disk arrangement lies on some disk's
//! boundary, so sweeping every boundary by angle and keeping a running
//! coverage weight finds the optimum.
//!
//! ## Hot-path layout
//!
//! The sweep is factored so the batch executor can amortize everything that
//! does not depend on the single query:
//!
//! * the neighbour index is a prebuilt CSR [`HashGrid`] (one per distinct
//!   radius, cached in the engine's `SharedIndex`);
//! * the per-center event list lives in a caller-owned [`DiskSweepScratch`]
//!   reused across all centers (and across all queries of a batch), so the
//!   inner loop allocates nothing;
//! * [`max_disk_placement_chunked`] splits the center range over
//!   `std::thread::scope` workers — each with its own scratch — and merges
//!   chunk results in order with a strictly-greater comparison, so the
//!   answer is byte-identical to the serial sweep at any thread count.

use mrs_geom::{Ball, GridQueryStats, HashGrid, Point, Point2, WeightedPoint};

use crate::engine::cancel;
use crate::input::Placement;

/// Reusable per-thread scratch of the sweep: the angular event list of one
/// center.  Create once, pass to every call; the capacity then stabilizes at
/// the densest neighbourhood and the inner loop stops allocating.
#[derive(Clone, Debug, Default)]
pub struct DiskSweepScratch {
    events: Vec<(f64, f64)>,
}

/// Work counters of one sweep, surfaced as `SolveStats` counters by the
/// engine wrapper.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DiskSweepStats {
    /// Candidate neighbours examined across every grid query (phase 0
    /// coverage probes plus phase 1 event generation).
    pub candidates_examined: usize,
    /// Grid cells visited across every grid query.
    pub grid_cells_visited: usize,
    /// Candidates rejected by the widened f32 sieve before the exact f64
    /// verify (zero outside [`mrs_geom::KernelMode::SieveF32`]).
    pub sieve_rejected: usize,
}

impl DiskSweepStats {
    fn absorb(&mut self, q: GridQueryStats) {
        self.candidates_examined += q.candidates;
        self.grid_cells_visited += q.cells;
        self.sieve_rejected += q.sieve_rejected;
    }

    fn merge(&mut self, other: DiskSweepStats) {
        self.candidates_examined += other.candidates_examined;
        self.grid_cells_visited += other.grid_cells_visited;
        self.sieve_rejected += other.sieve_rejected;
    }
}

/// The polar angle of `b - a` using the first two coordinates.  The sweep is
/// planar; generic `D` lets it run directly over `Point<D>` storage when the
/// engine has already checked `D == 2`.
#[inline]
fn angle2<const D: usize>(a: &Point<D>, b: &Point<D>) -> f64 {
    (b[1] - a[1]).atan2(b[0] - a[0])
}

/// The point at distance `r` and angle `theta` from `c` in the first two
/// coordinates.
#[inline]
fn polar2<const D: usize>(c: &Point<D>, r: f64, theta: f64) -> Point<D> {
    let mut p = *c;
    p[0] += r * theta.cos();
    p[1] += r * theta.sin();
    p
}

/// Exact MaxRS for a disk of radius `radius` over weighted points with
/// non-negative weights.
///
/// Returns the center at which to place the query disk and the total weight it
/// covers.  Runs in `O(n² log n)` worst case; the hash-grid neighbour index
/// keeps it close to `O(n · k log k)` where `k` is the local overlap.
///
/// # Example
/// ```
/// use mrs_core::exact::disk2d::max_disk_placement;
/// use mrs_geom::{Point2, WeightedPoint};
///
/// let points = vec![
///     WeightedPoint::new(Point2::xy(0.0, 0.0), 2.0),
///     WeightedPoint::new(Point2::xy(0.5, 0.0), 3.0),
///     WeightedPoint::new(Point2::xy(9.0, 0.0), 4.0),
/// ];
/// let best = max_disk_placement(&points, 1.0);
/// assert_eq!(best.value, 5.0);
/// ```
///
/// # Panics
/// Panics if `radius` is not strictly positive or any weight is negative.
pub fn max_disk_placement(points: &[WeightedPoint<2>], radius: f64) -> Placement<2> {
    assert!(radius.is_finite() && radius > 0.0, "query radius must be positive");
    let centers: Vec<Point2> = points.iter().map(|p| p.point).collect();
    let index = HashGrid::build(radius.max(1e-9), &centers);
    let mut scratch = DiskSweepScratch::default();
    max_disk_placement_indexed(points, radius, &index, &mut scratch).0
}

/// The indexed, allocation-free form of [`max_disk_placement`]: the neighbour
/// grid is caller-owned (built once per distinct radius and shared across a
/// whole batch) and the event list lives in caller-owned scratch.
///
/// The grid must have been built over exactly `points`' locations, with a
/// cell side for which `reach = ⌈2·radius / side⌉` stays small (the engine
/// uses `side = radius`).
///
/// # Panics
/// Panics if `radius` is not strictly positive or any weight is negative.
pub fn max_disk_placement_indexed<const D: usize>(
    points: &[WeightedPoint<D>],
    radius: f64,
    index: &HashGrid<D>,
    scratch: &mut DiskSweepScratch,
) -> (Placement<D>, DiskSweepStats) {
    assert!(radius.is_finite() && radius > 0.0, "query radius must be positive");
    for p in points {
        assert!(p.weight >= 0.0, "disk MaxRS requires non-negative weights");
    }
    let mut stats = DiskSweepStats::default();
    if points.is_empty() {
        return (Placement::empty(), stats);
    }
    let mut best = Placement { center: points[0].point, value: points[0].weight };
    sweep_chunk(points, radius, index, scratch, 0..points.len(), Phase::Centers, &mut best)
        .merge_into(&mut stats);
    sweep_chunk(points, radius, index, scratch, 0..points.len(), Phase::Boundaries, &mut best)
        .merge_into(&mut stats);
    (best, stats)
}

/// The chunked-parallel form of [`max_disk_placement_indexed`]: the center
/// range is split into `threads` chunks per phase, each swept by its own
/// worker with its own scratch, and chunk results merge in chunk order with
/// a strictly-greater comparison — so the placement is byte-identical to the
/// serial sweep for every thread count.
///
/// # Panics
/// Panics if `radius` is not strictly positive or any weight is negative.
pub fn max_disk_placement_chunked<const D: usize>(
    points: &[WeightedPoint<D>],
    radius: f64,
    index: &HashGrid<D>,
    threads: usize,
) -> (Placement<D>, DiskSweepStats) {
    let threads = threads.max(1).min(points.len().max(1));
    if threads <= 1 || points.len() < 2 * threads {
        let mut scratch = DiskSweepScratch::default();
        return max_disk_placement_indexed(points, radius, index, &mut scratch);
    }
    assert!(radius.is_finite() && radius > 0.0, "query radius must be positive");
    for p in points {
        assert!(p.weight >= 0.0, "disk MaxRS requires non-negative weights");
    }
    let n = points.len();
    let chunk = n.div_ceil(threads);
    let mut stats = DiskSweepStats::default();
    let mut best = Placement { center: points[0].point, value: points[0].weight };
    // Thread-locals do not cross `scope.spawn`; re-install the caller's
    // cancellation token (if any) inside every worker.
    let token = cancel::current();
    let degraded = cancel::degraded();
    for phase in [Phase::Centers, Phase::Boundaries] {
        // Every chunk starts from the best found so far (phase 0 completes
        // before phase 1, as in the serial sweep); candidates must strictly
        // beat it, so the in-order merge reproduces the serial tie-breaking.
        let baseline = best;
        let mut results: Vec<(Placement<D>, DiskSweepStats)> = Vec::new();
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..n)
                .step_by(chunk)
                .map(|start| {
                    let end = (start + chunk).min(n);
                    let token = token.clone();
                    scope.spawn(move || {
                        let _cancel = cancel::install(token, degraded);
                        let mut local_best = baseline;
                        let mut scratch = DiskSweepScratch::default();
                        let chunk_stats = sweep_chunk(
                            points,
                            radius,
                            index,
                            &mut scratch,
                            start..end,
                            phase,
                            &mut local_best,
                        );
                        (local_best, chunk_stats)
                    })
                })
                .collect();
            results = handles.into_iter().map(|h| h.join().expect("sweep worker ran")).collect();
        });
        for (candidate, chunk_stats) in results {
            chunk_stats.merge_into(&mut stats);
            if candidate.value > best.value {
                best = candidate;
            }
        }
    }
    (best, stats)
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Phase {
    /// Candidate 0: every input point as a center (also covers `n = 1` and
    /// keeps the result robust when all points coincide).
    Centers,
    /// Candidate 1: the angular sweep of every dual disk's boundary.
    Boundaries,
}

impl DiskSweepStats {
    fn merge_into(self, into: &mut DiskSweepStats) {
        into.merge(self);
    }
}

/// Sweeps one phase over the center range `range`, updating `best` with a
/// strictly-greater comparison.  The serial sweep is `sweep_chunk(.., 0..n,
/// Centers) ; sweep_chunk(.., 0..n, Boundaries)`.
fn sweep_chunk<const D: usize>(
    points: &[WeightedPoint<D>],
    radius: f64,
    index: &HashGrid<D>,
    scratch: &mut DiskSweepScratch,
    range: std::ops::Range<usize>,
    phase: Phase,
    best: &mut Placement<D>,
) -> DiskSweepStats {
    let mut stats = DiskSweepStats::default();
    match phase {
        Phase::Centers => {
            for (k, i) in range.enumerate() {
                if cancel::poll(k) {
                    break;
                }
                let p = &points[i];
                let mut value = 0.0;
                stats.absorb(index.for_each_within(&p.point, radius, |j| {
                    value += points[j].weight;
                }));
                if value > best.value {
                    *best = Placement { center: p.point, value };
                }
            }
        }
        Phase::Boundaries => {
            let two_r = 2.0 * radius;
            for (k, i) in range.enumerate() {
                if cancel::poll(k) {
                    break;
                }
                let pi = &points[i];
                // Events on the circle of radius `radius` around p_i:
                // neighbour j covers the angular interval centred on the
                // direction to p_j with half-width acos(d / 2r).
                let mut base = pi.weight;
                let events = &mut scratch.events;
                events.clear();
                let mut initial = 0.0; // coverage at angle 0
                stats.absorb(index.for_each_within(&pi.point, two_r, |j| {
                    if j == i {
                        return;
                    }
                    let pj = &points[j];
                    let d = pi.point.dist(&pj.point);
                    if d <= 1e-12 {
                        // Coincident centre: covers the whole boundary.
                        base += pj.weight;
                        return;
                    }
                    // Note: at d = 2r the interval degenerates to a single
                    // tangent point; keeping the (equal-angle) event pair
                    // still credits it, because gains are applied before
                    // losses at equal angles.
                    let half = (d / two_r).clamp(-1.0, 1.0).acos();
                    let center_angle = angle2(&pi.point, &pj.point);
                    let start = normalize(center_angle - half);
                    let end = normalize(center_angle + half);
                    events.push((start, pj.weight));
                    events.push((end, -pj.weight));
                    if start > end {
                        // Interval wraps through angle 0, so it covers angle 0.
                        initial += pj.weight;
                    }
                }));
                if events.is_empty() {
                    if base > best.value {
                        *best = Placement { center: polar2(&pi.point, radius, 0.0), value: base };
                    }
                    continue;
                }
                // Sort by angle; at equal angles apply gains before losses so
                // that the closed-interval endpoints (boundary-boundary
                // intersection points) are counted on both sides.  The event
                // order is produced by this center's own grid scan alone, so
                // it is identical at every chunking and the unstable sort
                // stays deterministic.
                events.sort_unstable_by(|a, b| {
                    a.0.partial_cmp(&b.0).unwrap().then_with(|| b.1.partial_cmp(&a.1).unwrap())
                });
                let mut running = initial;
                for &(angle, delta) in events.iter() {
                    running += delta;
                    let candidate = base + running;
                    if candidate > best.value {
                        *best = Placement {
                            center: polar2(&pi.point, radius, angle),
                            value: candidate,
                        };
                    }
                }
                // Also consider angle 0 itself (covered by `initial`).
                let at_zero = base + initial;
                if at_zero > best.value {
                    *best = Placement { center: polar2(&pi.point, radius, 0.0), value: at_zero };
                }
            }
        }
    }
    stats
}

/// Total weight of points within distance `radius` of `q` (the weighted depth
/// of `q` in the dual arrangement).  Brute force, used for verification.
pub fn weighted_depth_at(points: &[WeightedPoint<2>], radius: f64, q: &Point2) -> f64 {
    let query = Ball::new(*q, radius);
    points.iter().filter(|p| query.contains(&p.point)).map(|p| p.weight).sum()
}

fn normalize(theta: f64) -> f64 {
    mrs_geom::arcs::normalize_angle(theta)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::prelude::*;

    /// O(n^3) reference: evaluate the depth at every pairwise boundary
    /// intersection and at every centre.
    fn brute(points: &[WeightedPoint<2>], radius: f64) -> f64 {
        let mut best = 0.0f64;
        for p in points {
            best = best.max(weighted_depth_at(points, radius, &p.point));
        }
        for i in 0..points.len() {
            for j in (i + 1)..points.len() {
                let a = Ball::new(points[i].point, radius);
                let b = Ball::new(points[j].point, radius);
                if let Some((p, q)) = a.boundary_intersections(&b) {
                    best = best.max(weighted_depth_at(points, radius, &p));
                    best = best.max(weighted_depth_at(points, radius, &q));
                }
            }
        }
        best
    }

    #[test]
    fn figure_1a_style_instance() {
        // A cluster of six points coverable by one unit disk plus stragglers.
        let pts: Vec<WeightedPoint<2>> = [
            (0.0, 0.0),
            (0.5, 0.3),
            (0.8, 0.6),
            (0.2, 0.7),
            (0.7, 0.1),
            (0.4, 0.5),
            (5.0, 5.0),
            (-4.0, 2.0),
        ]
        .iter()
        .map(|&(x, y)| WeightedPoint::unit(Point2::xy(x, y)))
        .collect();
        let res = max_disk_placement(&pts, 1.0);
        assert_eq!(res.value, 6.0);
        assert_eq!(weighted_depth_at(&pts, 1.0, &res.center), 6.0);
    }

    #[test]
    fn single_and_empty_inputs() {
        assert_eq!(max_disk_placement(&[], 1.0).value, 0.0);
        let one = vec![WeightedPoint::new(Point2::xy(2.0, 3.0), 4.0)];
        let res = max_disk_placement(&one, 0.5);
        assert_eq!(res.value, 4.0);
        assert_eq!(weighted_depth_at(&one, 0.5, &res.center), 4.0);
    }

    #[test]
    fn two_far_points_cannot_be_covered_together() {
        let pts = vec![
            WeightedPoint::new(Point2::xy(0.0, 0.0), 1.0),
            WeightedPoint::new(Point2::xy(10.0, 0.0), 2.0),
        ];
        let res = max_disk_placement(&pts, 1.0);
        assert_eq!(res.value, 2.0);
    }

    #[test]
    fn two_points_at_exactly_diameter_distance() {
        // Distance exactly 2r: a single disk can still cover both (they sit on
        // its boundary).
        let pts = vec![
            WeightedPoint::unit(Point2::xy(0.0, 0.0)),
            WeightedPoint::unit(Point2::xy(2.0, 0.0)),
        ];
        let res = max_disk_placement(&pts, 1.0);
        assert_eq!(res.value, 2.0);
        assert!((res.center.dist(&Point2::xy(1.0, 0.0))) < 1e-6);
    }

    #[test]
    fn coincident_points_stack_weights() {
        let pts = vec![
            WeightedPoint::new(Point2::xy(1.0, 1.0), 2.0),
            WeightedPoint::new(Point2::xy(1.0, 1.0), 3.0),
            WeightedPoint::new(Point2::xy(1.0, 1.0), 4.0),
        ];
        let res = max_disk_placement(&pts, 0.25);
        assert_eq!(res.value, 9.0);
    }

    #[test]
    fn matches_brute_force_on_random_instances() {
        let mut rng = StdRng::seed_from_u64(11);
        for round in 0..30 {
            let n = rng.gen_range(1..30);
            let pts: Vec<WeightedPoint<2>> = (0..n)
                .map(|_| {
                    WeightedPoint::new(
                        Point2::xy(rng.gen_range(0.0..6.0), rng.gen_range(0.0..6.0)),
                        rng.gen_range(0.0..3.0),
                    )
                })
                .collect();
            let radius = rng.gen_range(0.4..2.0);
            let fast = max_disk_placement(&pts, radius);
            let want = brute(&pts, radius);
            assert!(
                (fast.value - want).abs() < 1e-6,
                "round {round}: sweep {} vs brute {want}",
                fast.value
            );
            // Reported centre must actually achieve the reported value.
            let check = weighted_depth_at(&pts, radius * (1.0 + 1e-9), &fast.center);
            assert!(check >= fast.value - 1e-6, "check {check} < {}", fast.value);
        }
    }

    #[test]
    fn chunked_sweep_is_byte_identical_to_serial_at_any_thread_count() {
        let mut rng = StdRng::seed_from_u64(77);
        let pts: Vec<WeightedPoint<2>> = (0..160)
            .map(|_| {
                WeightedPoint::new(
                    Point2::xy(rng.gen_range(0.0..6.0), rng.gen_range(0.0..6.0)),
                    rng.gen_range(0.0..3.0),
                )
            })
            .collect();
        let centers: Vec<Point2> = pts.iter().map(|p| p.point).collect();
        for radius in [0.3, 0.8, 1.7] {
            let index = HashGrid::build(radius, &centers);
            let mut scratch = DiskSweepScratch::default();
            let (serial, serial_stats) =
                max_disk_placement_indexed(&pts, radius, &index, &mut scratch);
            for threads in [1, 2, 3, 7] {
                let (chunked, chunked_stats) =
                    max_disk_placement_chunked(&pts, radius, &index, threads);
                assert_eq!(serial.center, chunked.center, "threads = {threads}");
                assert_eq!(serial.value.to_bits(), chunked.value.to_bits());
                assert_eq!(serial_stats, chunked_stats, "work counters are thread-invariant");
            }
        }
    }

    #[test]
    fn sweep_reports_work_counters() {
        let pts: Vec<WeightedPoint<2>> =
            (0..50).map(|i| WeightedPoint::unit(Point2::xy(0.1 * i as f64, 0.0))).collect();
        let centers: Vec<Point2> = pts.iter().map(|p| p.point).collect();
        let index = HashGrid::build(1.0, &centers);
        let mut scratch = DiskSweepScratch::default();
        let (_, stats) = max_disk_placement_indexed(&pts, 1.0, &index, &mut scratch);
        assert!(stats.candidates_examined > 0);
        assert!(stats.grid_cells_visited > 0);
        // Every candidate examination touched a cell that was counted.
        assert!(stats.candidates_examined >= pts.len());
    }

    proptest! {
        #[test]
        fn value_is_sandwiched_by_trivial_bounds(
            coords in proptest::collection::vec((0.0f64..8.0, 0.0f64..8.0), 1..25),
            radius in 0.3f64..2.0,
        ) {
            let pts: Vec<WeightedPoint<2>> =
                coords.iter().map(|&(x, y)| WeightedPoint::unit(Point2::xy(x, y))).collect();
            let res = max_disk_placement(&pts, radius);
            prop_assert!(res.value >= 1.0 - 1e-9);
            prop_assert!(res.value <= pts.len() as f64 + 1e-9);
        }
    }
}
