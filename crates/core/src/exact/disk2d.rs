//! Exact disk MaxRS in the plane in `O(n² log n)` time.
//!
//! This is the Chazelle–Lee style angular sweep \[CL86\] the paper uses as the
//! exact comparator for its `d`-ball approximation algorithms (and whose
//! conditional Ω(n²) lower bound \[AH08\] motivates those approximations).  In
//! the dual view every weighted input point becomes a disk of the query
//! radius; the deepest point of that disk arrangement lies on some disk's
//! boundary, so sweeping every boundary by angle and keeping a running
//! coverage weight finds the optimum.

use mrs_geom::{Ball, HashGrid, Point2, WeightedPoint};

use crate::input::Placement;

/// Exact MaxRS for a disk of radius `radius` over weighted points with
/// non-negative weights.
///
/// Returns the center at which to place the query disk and the total weight it
/// covers.  Runs in `O(n² log n)` worst case; the hash-grid neighbour index
/// keeps it close to `O(n · k log k)` where `k` is the local overlap.
///
/// # Example
/// ```
/// use mrs_core::exact::disk2d::max_disk_placement;
/// use mrs_geom::{Point2, WeightedPoint};
///
/// let points = vec![
///     WeightedPoint::new(Point2::xy(0.0, 0.0), 2.0),
///     WeightedPoint::new(Point2::xy(0.5, 0.0), 3.0),
///     WeightedPoint::new(Point2::xy(9.0, 0.0), 4.0),
/// ];
/// let best = max_disk_placement(&points, 1.0);
/// assert_eq!(best.value, 5.0);
/// ```
///
/// # Panics
/// Panics if `radius` is not strictly positive or any weight is negative.
pub fn max_disk_placement(points: &[WeightedPoint<2>], radius: f64) -> Placement<2> {
    assert!(radius.is_finite() && radius > 0.0, "query radius must be positive");
    for p in points {
        assert!(p.weight >= 0.0, "disk MaxRS requires non-negative weights");
    }
    if points.is_empty() {
        return Placement::empty();
    }

    let centers: Vec<Point2> = points.iter().map(|p| p.point).collect();
    let index = HashGrid::build(radius.max(1e-9), &centers);

    let mut best = Placement { center: points[0].point, value: points[0].weight };
    // Candidate 0: every input point as a center (also covers the n = 1 case
    // and keeps the result robust when all points coincide).
    for p in points {
        let mut value = 0.0;
        index.for_each_within(&p.point, radius, |j| value += points[j].weight);
        if value > best.value {
            best = Placement { center: p.point, value };
        }
    }

    // Candidate 1: sweep the boundary of every dual disk.
    let two_r = 2.0 * radius;
    for (i, pi) in points.iter().enumerate() {
        // Events on the circle of radius `radius` around p_i: neighbour j
        // covers the angular interval centred on the direction to p_j with
        // half-width acos(d / 2r).
        let mut base = pi.weight;
        let mut events: Vec<(f64, f64)> = Vec::new(); // (angle, +/- weight)
        let mut initial = 0.0; // coverage at angle 0
        index.for_each_within(&pi.point, two_r, |j| {
            if j == i {
                return;
            }
            let pj = &points[j];
            let d = pi.point.dist(&pj.point);
            if d <= 1e-12 {
                // Coincident centre: covers the whole boundary.
                base += pj.weight;
                return;
            }
            // Note: at d = 2r the interval degenerates to a single tangent
            // point; keeping the (equal-angle) event pair still credits it,
            // because gains are applied before losses at equal angles.
            let half = (d / two_r).clamp(-1.0, 1.0).acos();
            let center_angle = pi.point.angle_to(&pj.point);
            let start = normalize(center_angle - half);
            let end = normalize(center_angle + half);
            events.push((start, pj.weight));
            events.push((end, -pj.weight));
            if start > end {
                // Interval wraps through angle 0, so it covers angle 0.
                initial += pj.weight;
            }
        });
        if events.is_empty() {
            if base > best.value {
                best = Placement { center: pi.point.polar_offset(radius, 0.0), value: base };
            }
            continue;
        }
        // Sort by angle; at equal angles apply gains before losses so that the
        // closed-interval endpoints (boundary-boundary intersection points)
        // are counted on both sides.
        events.sort_by(|a, b| {
            a.0.partial_cmp(&b.0).unwrap().then_with(|| b.1.partial_cmp(&a.1).unwrap())
        });
        let mut running = initial;
        for &(angle, delta) in &events {
            running += delta;
            let candidate = base + running;
            if candidate > best.value {
                best = Placement { center: pi.point.polar_offset(radius, angle), value: candidate };
            }
        }
        // Also consider angle 0 itself (covered by `initial`).
        let at_zero = base + initial;
        if at_zero > best.value {
            best = Placement { center: pi.point.polar_offset(radius, 0.0), value: at_zero };
        }
    }
    best
}

/// Total weight of points within distance `radius` of `q` (the weighted depth
/// of `q` in the dual arrangement).  Brute force, used for verification.
pub fn weighted_depth_at(points: &[WeightedPoint<2>], radius: f64, q: &Point2) -> f64 {
    let query = Ball::new(*q, radius);
    points.iter().filter(|p| query.contains(&p.point)).map(|p| p.weight).sum()
}

fn normalize(theta: f64) -> f64 {
    mrs_geom::arcs::normalize_angle(theta)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::prelude::*;

    /// O(n^3) reference: evaluate the depth at every pairwise boundary
    /// intersection and at every centre.
    fn brute(points: &[WeightedPoint<2>], radius: f64) -> f64 {
        let mut best = 0.0f64;
        for p in points {
            best = best.max(weighted_depth_at(points, radius, &p.point));
        }
        for i in 0..points.len() {
            for j in (i + 1)..points.len() {
                let a = Ball::new(points[i].point, radius);
                let b = Ball::new(points[j].point, radius);
                if let Some((p, q)) = a.boundary_intersections(&b) {
                    best = best.max(weighted_depth_at(points, radius, &p));
                    best = best.max(weighted_depth_at(points, radius, &q));
                }
            }
        }
        best
    }

    #[test]
    fn figure_1a_style_instance() {
        // A cluster of six points coverable by one unit disk plus stragglers.
        let pts: Vec<WeightedPoint<2>> = [
            (0.0, 0.0),
            (0.5, 0.3),
            (0.8, 0.6),
            (0.2, 0.7),
            (0.7, 0.1),
            (0.4, 0.5),
            (5.0, 5.0),
            (-4.0, 2.0),
        ]
        .iter()
        .map(|&(x, y)| WeightedPoint::unit(Point2::xy(x, y)))
        .collect();
        let res = max_disk_placement(&pts, 1.0);
        assert_eq!(res.value, 6.0);
        assert_eq!(weighted_depth_at(&pts, 1.0, &res.center), 6.0);
    }

    #[test]
    fn single_and_empty_inputs() {
        assert_eq!(max_disk_placement(&[], 1.0).value, 0.0);
        let one = vec![WeightedPoint::new(Point2::xy(2.0, 3.0), 4.0)];
        let res = max_disk_placement(&one, 0.5);
        assert_eq!(res.value, 4.0);
        assert_eq!(weighted_depth_at(&one, 0.5, &res.center), 4.0);
    }

    #[test]
    fn two_far_points_cannot_be_covered_together() {
        let pts = vec![
            WeightedPoint::new(Point2::xy(0.0, 0.0), 1.0),
            WeightedPoint::new(Point2::xy(10.0, 0.0), 2.0),
        ];
        let res = max_disk_placement(&pts, 1.0);
        assert_eq!(res.value, 2.0);
    }

    #[test]
    fn two_points_at_exactly_diameter_distance() {
        // Distance exactly 2r: a single disk can still cover both (they sit on
        // its boundary).
        let pts = vec![
            WeightedPoint::unit(Point2::xy(0.0, 0.0)),
            WeightedPoint::unit(Point2::xy(2.0, 0.0)),
        ];
        let res = max_disk_placement(&pts, 1.0);
        assert_eq!(res.value, 2.0);
        assert!((res.center.dist(&Point2::xy(1.0, 0.0))) < 1e-6);
    }

    #[test]
    fn coincident_points_stack_weights() {
        let pts = vec![
            WeightedPoint::new(Point2::xy(1.0, 1.0), 2.0),
            WeightedPoint::new(Point2::xy(1.0, 1.0), 3.0),
            WeightedPoint::new(Point2::xy(1.0, 1.0), 4.0),
        ];
        let res = max_disk_placement(&pts, 0.25);
        assert_eq!(res.value, 9.0);
    }

    #[test]
    fn matches_brute_force_on_random_instances() {
        let mut rng = StdRng::seed_from_u64(11);
        for round in 0..30 {
            let n = rng.gen_range(1..30);
            let pts: Vec<WeightedPoint<2>> = (0..n)
                .map(|_| {
                    WeightedPoint::new(
                        Point2::xy(rng.gen_range(0.0..6.0), rng.gen_range(0.0..6.0)),
                        rng.gen_range(0.0..3.0),
                    )
                })
                .collect();
            let radius = rng.gen_range(0.4..2.0);
            let fast = max_disk_placement(&pts, radius);
            let want = brute(&pts, radius);
            assert!(
                (fast.value - want).abs() < 1e-6,
                "round {round}: sweep {} vs brute {want}",
                fast.value
            );
            // Reported centre must actually achieve the reported value.
            let check = weighted_depth_at(&pts, radius * (1.0 + 1e-9), &fast.center);
            assert!(check >= fast.value - 1e-6, "check {check} < {}", fast.value);
        }
    }

    proptest! {
        #[test]
        fn value_is_sandwiched_by_trivial_bounds(
            coords in proptest::collection::vec((0.0f64..8.0, 0.0f64..8.0), 1..25),
            radius in 0.3f64..2.0,
        ) {
            let pts: Vec<WeightedPoint<2>> =
                coords.iter().map(|&(x, y)| WeightedPoint::unit(Point2::xy(x, y))).collect();
            let res = max_disk_placement(&pts, radius);
            prop_assert!(res.value >= 1.0 - 1e-9);
            prop_assert!(res.value <= pts.len() as f64 + 1e-9);
        }
    }
}
