//! Exact rectangle MaxRS in the plane in `O(n log n)` time.
//!
//! This is the classic sweep of Imai–Asano \[IA83\] and Nandy–Bhattacharya
//! \[NB95\] that the paper uses as the per-query baseline for batched MaxRS with
//! axis-aligned rectangles (Section 1.2): each input point, viewed from the
//! rectangle's anchor, becomes an axis-aligned box of feasible anchors, and
//! the optimal anchor is a point of maximum depth in that box arrangement,
//! found by a y-sweep with a segment tree over x.

use mrs_geom::{Aabb, MaxSegmentTree, Point2, Rect, WeightedPoint};

use crate::engine::cancel;

/// Result of an exact rectangle MaxRS query.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RectPlacement {
    /// The chosen rectangle (axis-aligned, of the requested dimensions).
    pub rect: Rect,
    /// Total weight of the points covered by it.
    pub value: f64,
}

#[derive(Clone, Copy, Debug, PartialEq)]
enum EventKind {
    Add,
    Remove,
}

#[derive(Clone, Copy, Debug)]
struct Event {
    y: f64,
    kind: EventKind,
    x_lo: usize,
    x_hi: usize,
    weight: f64,
}

/// Exact MaxRS for an axis-aligned `width × height` rectangle over weighted
/// points with non-negative weights, in `O(n log n)`.
///
/// Returns a rectangle whose covered weight is maximum; ties are broken
/// arbitrarily.  For an empty input the rectangle is placed at the origin
/// with value 0.
///
/// # Example
/// ```
/// use mrs_core::exact::rect2d::max_rect_placement;
/// use mrs_geom::{Point2, WeightedPoint};
///
/// let points = vec![
///     WeightedPoint::unit(Point2::xy(0.0, 0.0)),
///     WeightedPoint::unit(Point2::xy(0.6, 0.4)),
///     WeightedPoint::unit(Point2::xy(5.0, 5.0)),
/// ];
/// let best = max_rect_placement(&points, 1.0, 1.0);
/// assert_eq!(best.value, 2.0);
/// ```
///
/// # Panics
/// Panics if `width` or `height` is negative/non-finite, or if any weight is
/// negative (the sweep's "snap to a box corner" argument needs monotone
/// gains).
pub fn max_rect_placement(points: &[WeightedPoint<2>], width: f64, height: f64) -> RectPlacement {
    let by_x = sorted_order_by_axis(points, 0);
    let by_y = sorted_order_by_axis(points, 1);
    max_rect_placement_presorted(points, width, height, &by_x, &by_y)
}

/// The point ids sorted by coordinate `axis` (ties by id) — the sorted
/// projection [`max_rect_placement_presorted`] consumes.  Batched callers
/// build each axis once per point set (the engine's `SharedIndex` caches
/// them by delegating here, so the two orders can never drift apart) and
/// reuse them for every rectangle size.
pub fn sorted_order_by_axis<const D: usize>(points: &[WeightedPoint<D>], axis: usize) -> Vec<u32> {
    let mut ids: Vec<u32> = (0..points.len() as u32).collect();
    ids.sort_by(|&a, &b| {
        points[a as usize].point[axis].total_cmp(&points[b as usize].point[axis]).then(a.cmp(&b))
    });
    ids
}

/// The sort-free form of [`max_rect_placement`]: the caller supplies the
/// point ids sorted by x and by y (ties by id, see
/// [`sorted_order_by_axis`]), and the sweep derives its coordinate
/// compression and event order by merging the two shifted sorted streams in
/// `O(n)` instead of sorting per query.  The result is identical to
/// [`max_rect_placement`] bit for bit.
///
/// # Panics
/// Panics if `width` or `height` is negative/non-finite, if any weight is
/// negative, or if the orders do not cover `points`.
pub fn max_rect_placement_presorted(
    points: &[WeightedPoint<2>],
    width: f64,
    height: f64,
    by_x: &[u32],
    by_y: &[u32],
) -> RectPlacement {
    assert!(width.is_finite() && width >= 0.0, "rectangle width must be non-negative");
    assert!(height.is_finite() && height >= 0.0, "rectangle height must be non-negative");
    assert_eq!(by_x.len(), points.len(), "one x-order entry per point");
    assert_eq!(by_y.len(), points.len(), "one y-order entry per point");
    for p in points {
        assert!(p.weight >= 0.0, "rectangle MaxRS requires non-negative weights");
    }
    if points.is_empty() {
        return RectPlacement {
            rect: Aabb::new(Point2::xy(0.0, 0.0), Point2::xy(width, height)),
            value: 0.0,
        };
    }
    let n = points.len();

    // Anchor = lower-left corner of the placed rectangle.  Point p is covered
    // iff the anchor lies in [p.x - width, p.x] × [p.y - height, p.y].
    // The compressed x coordinates are the merge of the two sorted streams
    // `x - width` and `x` (both ascending in `by_x` order).
    let mut xs: Vec<f64> = Vec::with_capacity(n * 2);
    let (mut ia, mut ib) = (0usize, 0usize);
    while ia < n || ib < n {
        let shifted =
            if ia < n { points[by_x[ia] as usize].point.x() - width } else { f64::INFINITY };
        let plain = if ib < n { points[by_x[ib] as usize].point.x() } else { f64::INFINITY };
        if shifted <= plain {
            xs.push(shifted);
            ia += 1;
        } else {
            xs.push(plain);
            ib += 1;
        }
    }
    xs.dedup_by(|a, b| (*a - *b).abs() < 1e-12);
    let x_index = |x: f64| -> usize {
        // Position of the compressed coordinate equal to x.
        xs.partition_point(|&v| v < x - 1e-9)
    };

    // Event order: additions ascend in `y - height` (the `by_y` order), and
    // removals ascend in `y`; merging the two streams — additions first at
    // equal y, so an anchor exactly on both a box top and another box bottom
    // counts both (closed boxes) — reproduces the sorted event sequence.
    let event_for = |id: u32, kind: EventKind| -> Event {
        let p = &points[id as usize];
        let x_lo = x_index(p.point.x() - width);
        let x_hi = x_index(p.point.x());
        let y = match kind {
            EventKind::Add => p.point.y() - height,
            EventKind::Remove => p.point.y(),
        };
        Event { y, kind, x_lo, x_hi, weight: p.weight }
    };
    let mut events: Vec<Event> = Vec::with_capacity(n * 2);
    let (mut ia, mut ib) = (0usize, 0usize);
    while ia < n || ib < n {
        let add_y =
            if ia < n { points[by_y[ia] as usize].point.y() - height } else { f64::INFINITY };
        let rem_y = if ib < n { points[by_y[ib] as usize].point.y() } else { f64::INFINITY };
        if add_y <= rem_y {
            events.push(event_for(by_y[ia], EventKind::Add));
            ia += 1;
        } else {
            events.push(event_for(by_y[ib], EventKind::Remove));
            ib += 1;
        }
    }

    let mut tree = MaxSegmentTree::new(xs.len());
    let mut best_value = 0.0f64;
    let mut best_anchor = Point2::xy(xs[0], events[0].y);
    let mut i = 0;
    let mut ticks = 0usize;
    while i < events.len() {
        // `i` advances by whole same-y groups, so it can skip the poll
        // stride; count outer iterations instead.
        if cancel::poll(ticks) {
            break;
        }
        ticks += 1;
        let y = events[i].y;
        // Apply every addition at this y, then evaluate, then apply removals.
        let mut j = i;
        while j < events.len() && events[j].y == y && events[j].kind == EventKind::Add {
            tree.add(events[j].x_lo, events[j].x_hi, events[j].weight);
            j += 1;
        }
        let current = tree.global_max();
        if current > best_value + 1e-15 {
            best_value = current;
            best_anchor = Point2::xy(xs[tree.argmax()], y);
        }
        while j < events.len() && events[j].y == y {
            debug_assert_eq!(events[j].kind, EventKind::Remove);
            tree.add(events[j].x_lo, events[j].x_hi, -events[j].weight);
            j += 1;
        }
        i = j;
    }

    RectPlacement {
        rect: Aabb::new(best_anchor, Point2::xy(best_anchor.x() + width, best_anchor.y() + height)),
        value: best_value,
    }
}

/// Brute-force reference: evaluates every candidate anchor `(p.x - a*width,
/// q.y - b*height)` pair of input coordinates.  `O(n^3)`; used by tests and by
/// the figure-style examples where `n` is tiny.
pub fn brute_force_rect(points: &[WeightedPoint<2>], width: f64, height: f64) -> RectPlacement {
    let mut best = RectPlacement {
        rect: Aabb::new(Point2::xy(0.0, 0.0), Point2::xy(width, height)),
        value: 0.0,
    };
    for px in points {
        for py in points {
            for (ax, ay) in [
                (px.point.x(), py.point.y()),
                (px.point.x() - width, py.point.y()),
                (px.point.x(), py.point.y() - height),
                (px.point.x() - width, py.point.y() - height),
            ] {
                let rect = Aabb::new(Point2::xy(ax, ay), Point2::xy(ax + width, ay + height));
                let value: f64 =
                    points.iter().filter(|p| rect.contains(&p.point)).map(|p| p.weight).sum();
                if value > best.value {
                    best = RectPlacement { rect, value };
                }
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::prelude::*;

    fn covered(points: &[WeightedPoint<2>], rect: &Rect) -> f64 {
        points.iter().filter(|p| rect.contains(&p.point)).map(|p| p.weight).sum()
    }

    #[test]
    fn figure_1a_style_instance() {
        // Six points that can be covered together, two stragglers.
        let pts: Vec<WeightedPoint<2>> = [
            (0.0, 0.0),
            (0.5, 0.3),
            (0.8, 0.9),
            (0.2, 0.7),
            (0.9, 0.1),
            (0.4, 0.5),
            (5.0, 5.0),
            (-4.0, 2.0),
        ]
        .iter()
        .map(|&(x, y)| WeightedPoint::unit(Point2::xy(x, y)))
        .collect();
        let res = max_rect_placement(&pts, 1.0, 1.0);
        assert_eq!(res.value, 6.0);
        assert_eq!(covered(&pts, &res.rect), 6.0);
    }

    #[test]
    fn weighted_instance_prefers_heavy_cluster() {
        let pts = vec![
            WeightedPoint::new(Point2::xy(0.0, 0.0), 1.0),
            WeightedPoint::new(Point2::xy(0.1, 0.1), 1.0),
            WeightedPoint::new(Point2::xy(10.0, 10.0), 5.0),
        ];
        let res = max_rect_placement(&pts, 2.0, 2.0);
        assert_eq!(res.value, 5.0);
        assert!(res.rect.contains(&Point2::xy(10.0, 10.0)));
    }

    #[test]
    fn empty_and_single_point() {
        assert_eq!(max_rect_placement(&[], 1.0, 1.0).value, 0.0);
        let one = vec![WeightedPoint::new(Point2::xy(3.0, -2.0), 2.5)];
        let res = max_rect_placement(&one, 0.5, 0.5);
        assert_eq!(res.value, 2.5);
        assert!(res.rect.contains(&Point2::xy(3.0, -2.0)));
    }

    #[test]
    fn degenerate_zero_size_rectangle() {
        let pts = vec![
            WeightedPoint::new(Point2::xy(1.0, 1.0), 1.0),
            WeightedPoint::new(Point2::xy(1.0, 1.0), 2.0),
            WeightedPoint::new(Point2::xy(2.0, 2.0), 1.5),
        ];
        let res = max_rect_placement(&pts, 0.0, 0.0);
        assert_eq!(res.value, 3.0);
    }

    #[test]
    fn presorted_form_is_byte_identical() {
        let mut rng = StdRng::seed_from_u64(19);
        let pts: Vec<WeightedPoint<2>> = (0..80)
            .map(|_| {
                WeightedPoint::new(
                    Point2::xy(rng.gen_range(0.0..10.0), rng.gen_range(0.0..10.0)),
                    rng.gen_range(0.0..4.0),
                )
            })
            .collect();
        let by_x = sorted_order_by_axis(&pts, 0);
        let by_y = sorted_order_by_axis(&pts, 1);
        for (w, h) in [(1.0, 1.0), (2.5, 0.5), (0.0, 3.0)] {
            let plain = max_rect_placement(&pts, w, h);
            let presorted = max_rect_placement_presorted(&pts, w, h, &by_x, &by_y);
            assert_eq!(plain.value.to_bits(), presorted.value.to_bits());
            assert_eq!(plain.rect, presorted.rect);
        }
    }

    #[test]
    fn matches_brute_force_on_random_instances() {
        let mut rng = StdRng::seed_from_u64(7);
        for round in 0..40 {
            let n = rng.gen_range(1..35);
            let pts: Vec<WeightedPoint<2>> = (0..n)
                .map(|_| {
                    WeightedPoint::new(
                        Point2::xy(rng.gen_range(0.0..10.0), rng.gen_range(0.0..10.0)),
                        rng.gen_range(0.0..4.0),
                    )
                })
                .collect();
            let w = rng.gen_range(0.5..4.0);
            let h = rng.gen_range(0.5..4.0);
            let fast = max_rect_placement(&pts, w, h);
            let slow = brute_force_rect(&pts, w, h);
            assert!(
                (fast.value - slow.value).abs() < 1e-9,
                "round {round}: fast {} vs brute {}",
                fast.value,
                slow.value
            );
            assert!((covered(&pts, &fast.rect) - fast.value).abs() < 1e-9);
        }
    }

    proptest! {
        #[test]
        fn value_bounded_by_total_weight(
            coords in proptest::collection::vec((0.0f64..20.0, 0.0f64..20.0, 0.0f64..3.0), 1..40),
            w in 0.5f64..5.0,
            h in 0.5f64..5.0,
        ) {
            let pts: Vec<WeightedPoint<2>> = coords
                .iter()
                .map(|&(x, y, wt)| WeightedPoint::new(Point2::xy(x, y), wt))
                .collect();
            let total: f64 = pts.iter().map(|p| p.weight).sum();
            let res = max_rect_placement(&pts, w, h);
            prop_assert!(res.value <= total + 1e-9);
            // The single heaviest point is always coverable.
            let heaviest = pts.iter().map(|p| p.weight).fold(0.0, f64::max);
            prop_assert!(res.value + 1e-9 >= heaviest);
            // Reported rectangle must cover the reported value.
            let check: f64 = pts.iter().filter(|p| res.rect.contains(&p.point)).map(|p| p.weight).sum();
            prop_assert!((check - res.value).abs() < 1e-9);
        }
    }
}
