//! Brute-force oracles in arbitrary (small) dimension.
//!
//! The exact algorithms in this crate are planar; in higher dimensions exact
//! MaxRS for balls costs `Ω(n^d)` (the paper conjectures matching lower
//! bounds), so tests of the `d`-dimensional sampling technique validate
//! against *lower bounds* on `opt` instead: the best depth over all input
//! point locations, and the best depth over midpoints of nearby pairs.  Both
//! are genuine placements, hence genuine lower bounds on the optimum, which is
//! all the `(1/2 − ε)` guarantee needs for a one-sided check.

use std::collections::HashSet;

use mrs_geom::{Ball, ColoredSite, Point, WeightedPoint};

/// Weighted depth at `q`: total weight of points within distance `radius`.
pub fn weighted_depth_at<const D: usize>(
    points: &[WeightedPoint<D>],
    radius: f64,
    q: &Point<D>,
) -> f64 {
    let query = Ball::new(*q, radius);
    points.iter().filter(|p| query.contains(&p.point)).map(|p| p.weight).sum()
}

/// Colored depth at `q`: number of distinct colors within distance `radius`.
pub fn colored_depth_at<const D: usize>(
    sites: &[ColoredSite<D>],
    radius: f64,
    q: &Point<D>,
) -> usize {
    let query = Ball::new(*q, radius);
    let mut colors = HashSet::new();
    for s in sites {
        if query.contains(&s.point) {
            colors.insert(s.color);
        }
    }
    colors.len()
}

/// Best weighted depth over a set of candidate centers.
pub fn best_weighted_over_candidates<const D: usize>(
    points: &[WeightedPoint<D>],
    radius: f64,
    candidates: &[Point<D>],
) -> f64 {
    candidates.iter().map(|c| weighted_depth_at(points, radius, c)).fold(0.0, f64::max)
}

/// Best colored depth over a set of candidate centers.
pub fn best_colored_over_candidates<const D: usize>(
    sites: &[ColoredSite<D>],
    radius: f64,
    candidates: &[Point<D>],
) -> usize {
    candidates.iter().map(|c| colored_depth_at(sites, radius, c)).max().unwrap_or(0)
}

/// A strong *lower bound* on the weighted MaxRS optimum in any dimension:
/// the best depth over all input locations and over midpoints of pairs within
/// distance `2·radius`.  `O(n²)` candidates.
pub fn weighted_opt_lower_bound<const D: usize>(points: &[WeightedPoint<D>], radius: f64) -> f64 {
    let mut candidates: Vec<Point<D>> = points.iter().map(|p| p.point).collect();
    for i in 0..points.len() {
        for j in (i + 1)..points.len() {
            let a = points[i].point;
            let b = points[j].point;
            if a.dist(&b) <= 2.0 * radius {
                candidates.push(a.lerp(&b, 0.5));
            }
        }
    }
    best_weighted_over_candidates(points, radius, &candidates)
}

/// A strong lower bound on the colored MaxRS optimum in any dimension,
/// analogous to [`weighted_opt_lower_bound`].
pub fn colored_opt_lower_bound<const D: usize>(sites: &[ColoredSite<D>], radius: f64) -> usize {
    let mut candidates: Vec<Point<D>> = sites.iter().map(|s| s.point).collect();
    for i in 0..sites.len() {
        for j in (i + 1)..sites.len() {
            let a = sites[i].point;
            let b = sites[j].point;
            if a.dist(&b) <= 2.0 * radius {
                candidates.push(a.lerp(&b, 0.5));
            }
        }
    }
    best_colored_over_candidates(sites, radius, &candidates)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrs_geom::Point2;

    #[test]
    fn depth_queries_match_hand_counts() {
        let points = vec![
            WeightedPoint::new(Point2::xy(0.0, 0.0), 1.0),
            WeightedPoint::new(Point2::xy(0.5, 0.0), 2.0),
            WeightedPoint::new(Point2::xy(3.0, 0.0), 4.0),
        ];
        assert_eq!(weighted_depth_at(&points, 1.0, &Point2::xy(0.25, 0.0)), 3.0);
        assert_eq!(weighted_depth_at(&points, 1.0, &Point2::xy(3.0, 0.0)), 4.0);

        let sites = vec![
            ColoredSite::new(Point2::xy(0.0, 0.0), 0),
            ColoredSite::new(Point2::xy(0.2, 0.0), 0),
            ColoredSite::new(Point2::xy(0.4, 0.0), 1),
        ];
        assert_eq!(colored_depth_at(&sites, 1.0, &Point2::xy(0.0, 0.0)), 2);
    }

    #[test]
    fn lower_bounds_are_at_least_single_point_depth() {
        let points = vec![
            WeightedPoint::unit(Point2::xy(0.0, 0.0)),
            WeightedPoint::unit(Point2::xy(1.5, 0.0)),
        ];
        // Neither input point sees the other within radius 1, but the midpoint
        // sees both — the pair-midpoint candidates catch that.
        let lb = weighted_opt_lower_bound(&points, 1.0);
        assert_eq!(lb, 2.0);
    }

    #[test]
    fn works_in_higher_dimensions() {
        let points = vec![
            WeightedPoint::unit(Point::new([0.0, 0.0, 0.0, 0.0])),
            WeightedPoint::unit(Point::new([0.5, 0.5, 0.5, 0.5])),
            WeightedPoint::unit(Point::new([5.0, 5.0, 5.0, 5.0])),
        ];
        let lb = weighted_opt_lower_bound(&points, 1.0);
        assert_eq!(lb, 2.0);

        let sites = vec![
            ColoredSite::new(Point::new([0.0, 0.0, 0.0]), 0),
            ColoredSite::new(Point::new([0.3, 0.0, 0.0]), 1),
            ColoredSite::new(Point::new([0.0, 0.3, 0.0]), 2),
        ];
        assert_eq!(colored_opt_lower_bound(&sites, 1.0), 3);
    }

    #[test]
    fn empty_inputs_give_zero() {
        assert_eq!(weighted_opt_lower_bound::<3>(&[], 1.0), 0.0);
        assert_eq!(colored_opt_lower_bound::<3>(&[], 1.0), 0);
    }
}
