//! Exact MaxRS on the real line: place an interval of a fixed length to
//! maximize the total weight of covered points.
//!
//! This is the 1-D exact baseline the batched problem of Section 5 calls `m`
//! times, and — via the guard-point construction of Section 5.4 — the oracle
//! the hardness reduction drives.  Unlike the higher-dimensional baselines it
//! must accept *negative* weights, because the reduction plants negative
//! "guard" points.

use mrs_geom::Interval;

/// A weighted point on the real line.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinePoint {
    /// Coordinate of the point.
    pub x: f64,
    /// Weight of the point (may be negative).
    pub weight: f64,
}

impl LinePoint {
    /// Creates a weighted point on the line.
    pub const fn new(x: f64, weight: f64) -> Self {
        Self { x, weight }
    }
}

/// Result of a 1-D MaxRS query.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct IntervalPlacement {
    /// The chosen interval.
    pub interval: Interval,
    /// Total weight of the points covered by it.
    pub value: f64,
}

/// Points pre-sorted by coordinate, with prefix sums, so that many interval
/// lengths can be answered against the same point set (the batched setting).
#[derive(Clone, Debug)]
pub struct SortedLine {
    xs: Vec<f64>,
    prefix: Vec<f64>,
}

impl SortedLine {
    /// Builds the sorted representation in `O(n log n)`.
    pub fn new(points: &[LinePoint]) -> Self {
        let mut sorted: Vec<LinePoint> = points.to_vec();
        sorted.sort_by(|a, b| a.x.partial_cmp(&b.x).expect("point coordinates must be comparable"));
        let xs: Vec<f64> = sorted.iter().map(|p| p.x).collect();
        let mut prefix = Vec::with_capacity(sorted.len() + 1);
        prefix.push(0.0);
        let mut acc = 0.0;
        for p in &sorted {
            acc += p.weight;
            prefix.push(acc);
        }
        Self { xs, prefix }
    }

    /// Builds the representation from points **already sorted** by
    /// coordinate, in `O(n)` — the incremental path of a versioned dataset,
    /// which produces the sorted sequence by merging a base order with a
    /// small sorted delta instead of re-sorting.  The result is identical to
    /// [`Self::new`] on any input ordering that sorts (stably) to `sorted`.
    ///
    /// # Panics
    /// Debug-asserts the input is sorted by `x`.
    pub fn from_sorted(sorted: &[LinePoint]) -> Self {
        debug_assert!(
            sorted.windows(2).all(|w| w[0].x <= w[1].x),
            "from_sorted input must be sorted by coordinate"
        );
        let xs: Vec<f64> = sorted.iter().map(|p| p.x).collect();
        let mut prefix = Vec::with_capacity(sorted.len() + 1);
        prefix.push(0.0);
        let mut acc = 0.0;
        for p in sorted {
            acc += p.weight;
            prefix.push(acc);
        }
        Self { xs, prefix }
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.xs.len()
    }

    /// Returns `true` if there are no points.
    pub fn is_empty(&self) -> bool {
        self.xs.is_empty()
    }

    /// The sorted coordinates.
    pub fn xs(&self) -> &[f64] {
        &self.xs
    }

    /// Prefix sums of the sorted weights: `prefix()[i]` is the total weight
    /// of the first `i` points, so `len() + 1` entries starting at `0.0`.
    /// Lets batched callers (Theorem 1.3) reuse one sorted build.
    pub fn prefix(&self) -> &[f64] {
        &self.prefix
    }

    /// Index of the first point with coordinate `>= x` (within tolerance).
    fn lower_bound(&self, x: f64) -> usize {
        self.xs.partition_point(|&v| v < x - 1e-12)
    }

    /// Index one past the last point with coordinate `<= x` (within tolerance).
    fn upper_bound(&self, x: f64) -> usize {
        self.xs.partition_point(|&v| v <= x + 1e-12)
    }

    /// Total weight of points with coordinates in the closed interval
    /// `[lo, hi]`.
    pub fn weight_in(&self, lo: f64, hi: f64) -> f64 {
        if lo > hi {
            return 0.0;
        }
        let a = self.lower_bound(lo);
        let b = self.upper_bound(hi);
        self.prefix[b] - self.prefix[a]
    }

    /// Exact MaxRS for a closed interval of length `len`, in `O(n)` on the
    /// sorted line.
    ///
    /// The covered point set only changes when an interval endpoint crosses a
    /// point, so it suffices to evaluate placements whose left endpoint is at
    /// a point or whose right endpoint is at a point.  With negative weights
    /// both candidate families are required.  Each family's endpoints ascend
    /// with the sorted coordinates, so four monotone pointers replace the
    /// per-candidate binary searches (same tolerances, same candidate order,
    /// identical results).
    ///
    /// # Panics
    /// Panics if `len` is negative or not finite.
    pub fn max_interval(&self, len: f64) -> IntervalPlacement {
        assert!(len.is_finite() && len >= 0.0, "interval length must be non-negative");
        if self.is_empty() {
            return IntervalPlacement { interval: Interval::from_start(0.0, len), value: 0.0 };
        }
        let n = self.xs.len();
        let mut best = IntervalPlacement {
            // The empty placement (covering nothing) is always available; put
            // it far to the left of every point.
            interval: Interval::from_start(self.xs[0] - 2.0 * len - 2.0, len),
            value: 0.0,
        };
        // Family A: left endpoint on a point (`start = x`); family B: right
        // endpoint on a point (`start = x - len`).  `a_* = lower_bound(start)`
        // and `b_* = upper_bound(start + len)`, advanced monotonically.
        let (mut a_left, mut b_left) = (0usize, 0usize);
        let (mut a_right, mut b_right) = (0usize, 0usize);
        let consider = |start: f64, a: &mut usize, b: &mut usize, best: &mut IntervalPlacement| {
            while *a < n && self.xs[*a] < start - 1e-12 {
                *a += 1;
            }
            while *b < n && self.xs[*b] <= start + len + 1e-12 {
                *b += 1;
            }
            let value = self.prefix[*b] - self.prefix[*a];
            if value > best.value + 1e-15 {
                *best = IntervalPlacement { interval: Interval::from_start(start, len), value };
            }
        };
        for i in 0..n {
            let x = self.xs[i];
            consider(x, &mut a_left, &mut b_left, &mut best); // left endpoint on a point
            consider(x - len, &mut a_right, &mut b_right, &mut best); // right endpoint on a point
        }
        best
    }
}

/// Convenience wrapper: exact 1-D MaxRS over an unsorted point list.
pub fn max_interval_placement(points: &[LinePoint], len: f64) -> IntervalPlacement {
    SortedLine::new(points).max_interval(len)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrs_geom::interval::covered_weight;
    use proptest::prelude::*;
    use rand::prelude::*;

    fn brute(points: &[LinePoint], len: f64) -> f64 {
        // Evaluate every candidate placement with either endpoint at a point,
        // plus the empty placement.
        let xs: Vec<f64> = points.iter().map(|p| p.x).collect();
        let ws: Vec<f64> = points.iter().map(|p| p.weight).collect();
        let mut best = 0.0f64;
        for &x in &xs {
            for start in [x, x - len] {
                let v = covered_weight(&xs, &ws, &Interval::from_start(start, len));
                best = best.max(v);
            }
        }
        best
    }

    #[test]
    fn simple_cluster() {
        let pts = vec![
            LinePoint::new(0.0, 1.0),
            LinePoint::new(0.5, 2.0),
            LinePoint::new(0.9, 1.0),
            LinePoint::new(5.0, 3.0),
        ];
        let res = max_interval_placement(&pts, 1.0);
        assert_eq!(res.value, 4.0);
        assert!(res.interval.contains(0.0) && res.interval.contains(0.9));
    }

    #[test]
    fn prefers_isolated_heavy_point() {
        let pts =
            vec![LinePoint::new(0.0, 1.0), LinePoint::new(0.5, 1.0), LinePoint::new(100.0, 10.0)];
        let res = max_interval_placement(&pts, 1.0);
        assert_eq!(res.value, 10.0);
        assert!(res.interval.contains(100.0));
    }

    #[test]
    fn negative_weights_can_yield_empty_placement() {
        let pts = vec![LinePoint::new(0.0, -5.0), LinePoint::new(1.0, -2.0)];
        let res = max_interval_placement(&pts, 10.0);
        assert_eq!(res.value, 0.0);
    }

    #[test]
    fn guard_point_style_instance() {
        // A positive point glued to a negative guard just left of it, as in the
        // reduction of Section 5.4: the best interval picks up the positive
        // point but not its guard.
        let pts = vec![
            LinePoint::new(0.0, 4.0),
            LinePoint::new(-0.5, -4.0),
            LinePoint::new(3.0, 7.0),
            LinePoint::new(3.5, -7.0),
        ];
        let res = max_interval_placement(&pts, 3.0);
        assert_eq!(res.value, 11.0);
        assert!(res.interval.contains(0.0) && res.interval.contains(3.0));
        assert!(!res.interval.contains(-0.5) && !res.interval.contains(3.5));
    }

    #[test]
    fn zero_length_interval_picks_heaviest_stack() {
        let pts =
            vec![LinePoint::new(1.0, 2.0), LinePoint::new(1.0, 3.0), LinePoint::new(2.0, 4.0)];
        let res = max_interval_placement(&pts, 0.0);
        assert_eq!(res.value, 5.0);
    }

    #[test]
    fn empty_input() {
        let res = max_interval_placement(&[], 2.0);
        assert_eq!(res.value, 0.0);
    }

    #[test]
    fn randomized_against_brute_force() {
        let mut rng = StdRng::seed_from_u64(41);
        for _ in 0..50 {
            let n = rng.gen_range(1..40);
            let pts: Vec<LinePoint> = (0..n)
                .map(|_| LinePoint::new(rng.gen_range(-10.0..10.0), rng.gen_range(-3.0..5.0)))
                .collect();
            let len = rng.gen_range(0.0..8.0);
            let fast = max_interval_placement(&pts, len);
            let want = brute(&pts, len);
            assert!((fast.value - want).abs() < 1e-9, "len={len} fast={} want={want}", fast.value);
            // The reported interval must actually cover the reported value.
            let xs: Vec<f64> = pts.iter().map(|p| p.x).collect();
            let ws: Vec<f64> = pts.iter().map(|p| p.weight).collect();
            let check = covered_weight(&xs, &ws, &fast.interval);
            assert!((check - fast.value).abs() < 1e-9);
        }
    }

    proptest! {
        #[test]
        fn value_is_never_below_single_best_point(
            coords in proptest::collection::vec(-50.0f64..50.0, 1..30),
            len in 0.1f64..10.0,
        ) {
            let pts: Vec<LinePoint> =
                coords.iter().map(|&x| LinePoint::new(x, 1.0)).collect();
            let res = max_interval_placement(&pts, len);
            prop_assert!(res.value >= 1.0 - 1e-12);
            prop_assert!(res.value <= pts.len() as f64 + 1e-12);
        }

        #[test]
        fn longer_intervals_never_cover_less_with_positive_weights(
            coords in proptest::collection::vec(-20.0f64..20.0, 1..25),
        ) {
            let pts: Vec<LinePoint> =
                coords.iter().map(|&x| LinePoint::new(x, 1.0)).collect();
            let short = max_interval_placement(&pts, 1.0).value;
            let long = max_interval_placement(&pts, 5.0).value;
            prop_assert!(long + 1e-12 >= short);
        }
    }
}
