//! The "straightforward" exact algorithm for colored disk MaxRS in the plane.
//!
//! Section 1.5 of the paper notes there is an easy `O(n² log n)`-style exact
//! algorithm for colored MaxRS with a disk; this module provides it: the
//! maximum colored depth of a closed-disk arrangement is attained at a
//! boundary–boundary intersection vertex or at a disk's center, so it suffices
//! to enumerate those `O(n²)` candidates and evaluate the distinct-color count
//! at each with a neighbourhood query.  It is the comparator that Theorem 4.6
//! (output-sensitive) and Theorem 1.6 (color sampling) are benchmarked
//! against, and the test oracle for both.

use std::collections::HashSet;

use mrs_geom::{Ball, ColoredSite, HashGrid, Point2};

use crate::input::ColoredPlacement;

/// Number of distinct colors among sites within distance `radius` of `q`,
/// answered with the prebuilt center index.
pub fn colored_depth_with_index(
    sites: &[ColoredSite<2>],
    index: &HashGrid<2>,
    radius: f64,
    q: &Point2,
) -> usize {
    let mut colors = HashSet::new();
    index.for_each_within(q, radius, |j| {
        colors.insert(sites[j].color);
    });
    colors.len()
}

/// Number of distinct colors among sites within distance `radius` of `q`
/// (brute force over all sites).
pub fn colored_depth_at(sites: &[ColoredSite<2>], radius: f64, q: &Point2) -> usize {
    let query = Ball::new(*q, radius);
    let mut colors = HashSet::new();
    for s in sites {
        if query.contains(&s.point) {
            colors.insert(s.color);
        }
    }
    colors.len()
}

/// Exact colored disk MaxRS by candidate enumeration.
///
/// Candidates are every site location plus every intersection point between
/// the boundaries of two dual disks; for a closed-disk arrangement the
/// maximum colored depth is attained at one of them.  Worst-case
/// `O(n² · local)` where `local` is the number of disks overlapping a
/// candidate.
///
/// # Panics
/// Panics if `radius` is not strictly positive.
pub fn exact_colored_disk(sites: &[ColoredSite<2>], radius: f64) -> ColoredPlacement<2> {
    assert!(radius.is_finite() && radius > 0.0, "query radius must be positive");
    if sites.is_empty() {
        return ColoredPlacement::empty();
    }
    let centers: Vec<Point2> = sites.iter().map(|s| s.point).collect();
    let index = HashGrid::build(radius.max(1e-9), &centers);

    let mut best = ColoredPlacement { center: sites[0].point, distinct: 0 };
    let consider = |q: Point2, best: &mut ColoredPlacement<2>| {
        let depth = colored_depth_with_index(sites, &index, radius * (1.0 + 1e-12), &q);
        if depth > best.distinct {
            *best = ColoredPlacement { center: q, distinct: depth };
        }
    };

    for s in sites {
        consider(s.point, &mut best);
    }
    let two_r = 2.0 * radius;
    for (i, si) in sites.iter().enumerate() {
        let a = Ball::new(si.point, radius);
        index.for_each_within(&si.point, two_r, |j| {
            if j <= i {
                return;
            }
            let b = Ball::new(sites[j].point, radius);
            if let Some((p, q)) = a.boundary_intersections(&b) {
                consider(p, &mut best);
                consider(q, &mut best);
            }
        });
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;

    fn site(x: f64, y: f64, color: usize) -> ColoredSite<2> {
        ColoredSite::new(Point2::xy(x, y), color)
    }

    #[test]
    fn figure_1b_style_instance() {
        // Three colors can be covered by one unit disk; a fourth color sits far
        // away; duplicates of an already-covered color must not inflate the
        // count.
        let sites = vec![
            site(0.0, 0.0, 0),
            site(0.3, 0.2, 0),
            site(0.5, 0.0, 1),
            site(0.1, 0.6, 2),
            site(10.0, 10.0, 3),
        ];
        let res = exact_colored_disk(&sites, 1.0);
        assert_eq!(res.distinct, 3);
        assert_eq!(colored_depth_at(&sites, 1.0, &res.center), 3);
    }

    #[test]
    fn all_same_color_yields_one() {
        let sites = vec![site(0.0, 0.0, 7), site(0.1, 0.0, 7), site(0.2, 0.0, 7)];
        let res = exact_colored_disk(&sites, 1.0);
        assert_eq!(res.distinct, 1);
    }

    #[test]
    fn far_apart_colors_cannot_be_combined() {
        let sites = vec![site(0.0, 0.0, 0), site(100.0, 0.0, 1), site(200.0, 0.0, 2)];
        let res = exact_colored_disk(&sites, 1.0);
        assert_eq!(res.distinct, 1);
    }

    #[test]
    fn needs_an_intersection_vertex() {
        // Two colors whose dual disks overlap only in a lens away from both
        // centers: the optimum is at a boundary intersection, not at a site.
        let sites = vec![site(0.0, 0.0, 0), site(1.9, 0.0, 1)];
        let res = exact_colored_disk(&sites, 1.0);
        assert_eq!(res.distinct, 2);
        // Neither site alone sees both colors.
        assert_eq!(colored_depth_at(&sites, 1.0, &sites[0].point), 1);
        assert_eq!(colored_depth_at(&sites, 1.0, &sites[1].point), 1);
    }

    #[test]
    fn empty_input() {
        assert_eq!(exact_colored_disk(&[], 1.0).distinct, 0);
    }

    #[test]
    fn index_and_brute_depth_agree() {
        let mut rng = StdRng::seed_from_u64(13);
        let sites: Vec<ColoredSite<2>> = (0..200)
            .map(|_| {
                site(rng.gen_range(0.0..8.0), rng.gen_range(0.0..8.0), rng.gen_range(0..10usize))
            })
            .collect();
        let centers: Vec<Point2> = sites.iter().map(|s| s.point).collect();
        let index = HashGrid::build(1.0, &centers);
        for _ in 0..40 {
            let q = Point2::xy(rng.gen_range(0.0..8.0), rng.gen_range(0.0..8.0));
            assert_eq!(
                colored_depth_with_index(&sites, &index, 1.0, &q),
                colored_depth_at(&sites, 1.0, &q)
            );
        }
    }

    #[test]
    fn reported_center_achieves_reported_count() {
        let mut rng = StdRng::seed_from_u64(14);
        for _ in 0..20 {
            let n = rng.gen_range(1..40);
            let m = rng.gen_range(1..8usize);
            let sites: Vec<ColoredSite<2>> = (0..n)
                .map(|_| {
                    site(rng.gen_range(0.0..5.0), rng.gen_range(0.0..5.0), rng.gen_range(0..m))
                })
                .collect();
            let radius = rng.gen_range(0.4..1.5);
            let res = exact_colored_disk(&sites, radius);
            assert_eq!(colored_depth_at(&sites, radius * (1.0 + 1e-9), &res.center), res.distinct);
            assert!(res.distinct >= 1);
            assert!(res.distinct <= m);
        }
    }
}
