//! Technique 2 — output-sensitivity and color sampling (Section 4 of the
//! paper).
//!
//! The technique targets the colored disk MaxRS problem in the plane and works
//! in two phases.  The first phase is an exact algorithm whose cost scales
//! with the answer: per-color disk unions reduce the colored problem to an
//! uncolored depth problem over the regions `U_1, …, U_m` ([`union_exact`],
//! Lemma 4.2), and a shifted unit grid with the corner-discarding rule of
//! Lemma 4.3 localizes the computation so that at most `4·opt` colors survive
//! per cell ([`output_sensitive`], Theorem 4.6).  The second phase speeds the
//! exact algorithm up by random sampling on *colors*
//! ([`color_sampling`], Theorem 1.6), giving a `(1 − ε)`-approximation in
//! expected `O(ε^{-2} n log n)` time.

pub mod color_sampling;
pub mod output_sensitive;
pub mod union_exact;

pub use color_sampling::{
    approx_colored_disk_sampling, approx_colored_disk_sampling_with_details, ColorSamplingBranch,
    ColorSamplingResult,
};
pub use output_sensitive::{
    output_sensitive_colored_disk, output_sensitive_colored_disk_with_stats, OutputSensitiveStats,
};
pub use union_exact::{
    exact_colored_disk_by_union, max_colored_depth_union, max_colored_depth_union_with,
    DepthResult, UnionScratch,
};
