//! The `(1 − ε)`-approximation for colored disk MaxRS via random sampling on
//! colors (Theorem 1.6 / Section 4.4).
//!
//! The algorithm first estimates `opt` with the Technique 1 colored
//! `(1/2 − ε)`-approximation at `ε = 1/4`, giving `opt' ∈ [opt/4, opt]` with
//! high probability.  If `opt'` is below the `c₁ ε^{-2} log n` threshold the
//! output-sensitive exact algorithm is cheap enough to run directly; otherwise
//! each *color* is kept independently with probability
//! `λ = c₁ log n / (ε² opt')`, the exact algorithm runs on the kept disks
//! only, and the returned point's true colored depth (with respect to the full
//! input) is reported.  Lemma 4.8's concentration argument shows the returned
//! point is `(1 − ε)`-optimal with high probability, and Lemma 4.7 bounds the
//! expected running time by `O(ε^{-2} n log n)`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use mrs_geom::ColoredSite;

use crate::config::{ColorSamplingConfig, SamplingConfig};
use crate::input::{ColoredBallInstance, ColoredPlacement};
use crate::technique1::colored_ball::approx_colored_ball;
use crate::technique2::output_sensitive::output_sensitive_colored_disk;

/// Which branch the algorithm took, reported for the experiments.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ColorSamplingBranch {
    /// `opt'` was below the threshold; the exact algorithm ran on the full
    /// input.
    ExactOnFullInput,
    /// Colors were subsampled; the exact algorithm ran on the sample.
    SampledColors {
        /// Number of colors kept by the subsample.
        kept_colors: usize,
        /// Number of disks kept by the subsample.
        kept_disks: usize,
    },
}

/// Result of the color-sampling algorithm together with diagnostics.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ColorSamplingResult {
    /// The `(1 − ε)`-approximate placement.
    pub placement: ColoredPlacement<2>,
    /// The Technique 1 estimate `opt'` used to set the sampling rate.
    pub opt_estimate: usize,
    /// The branch taken.
    pub branch: ColorSamplingBranch,
}

/// Computes a `(1 − ε)`-approximate placement for colored MaxRS with a disk in
/// the plane (Theorem 1.6).
///
/// # Example
/// ```
/// use mrs_core::config::ColorSamplingConfig;
/// use mrs_core::input::ColoredBallInstance;
/// use mrs_core::technique2::approx_colored_disk_sampling;
/// use mrs_geom::{ColoredSite, Point2};
///
/// let sites = vec![
///     ColoredSite::new(Point2::xy(0.0, 0.0), 0),
///     ColoredSite::new(Point2::xy(0.2, 0.1), 1),
///     ColoredSite::new(Point2::xy(7.0, 7.0), 2),
/// ];
/// let instance = ColoredBallInstance::new(sites, 1.0);
/// let placement = approx_colored_disk_sampling(&instance, ColorSamplingConfig::new(0.25));
/// assert_eq!(placement.distinct, 2);
/// ```
///
pub fn approx_colored_disk_sampling(
    instance: &ColoredBallInstance<2>,
    config: ColorSamplingConfig,
) -> ColoredPlacement<2> {
    approx_colored_disk_sampling_with_details(instance, config).placement
}

/// Like [`approx_colored_disk_sampling`] but also reports the estimator value
/// and which branch ran.
pub fn approx_colored_disk_sampling_with_details(
    instance: &ColoredBallInstance<2>,
    config: ColorSamplingConfig,
) -> ColorSamplingResult {
    let n = instance.len();
    if n == 0 {
        return ColorSamplingResult {
            placement: ColoredPlacement::empty(),
            opt_estimate: 0,
            branch: ColorSamplingBranch::ExactOnFullInput,
        };
    }

    // Phase 0: estimate opt with Technique 1 at ε = 1/4 (Theorem 1.5).
    let estimator_cfg = SamplingConfig { eps: 0.25, ..config.estimator };
    let estimate = approx_colored_ball(instance, estimator_cfg);
    let opt_estimate = estimate.distinct.max(1);

    // Cheap case: opt' is small, the output-sensitive exact algorithm is
    // already near-linear (Theorem 4.6 costs O(n log n + n·opt)).
    if (opt_estimate as f64) <= config.threshold(n) {
        let placement = output_sensitive_colored_disk(&instance.sites, instance.radius);
        return ColorSamplingResult {
            placement,
            opt_estimate,
            branch: ColorSamplingBranch::ExactOnFullInput,
        };
    }

    // Interesting case: sample colors independently with probability λ.
    let lambda = config.sampling_probability(n, opt_estimate as f64);
    let mut rng = StdRng::seed_from_u64(config.seed);
    let num_colors = instance.sites.iter().map(|s| s.color).max().unwrap_or(0) + 1;
    let kept: Vec<bool> = (0..num_colors).map(|_| rng.gen_bool(lambda)).collect();
    let sample: Vec<ColoredSite<2>> =
        instance.sites.iter().copied().filter(|s| kept[s.color]).collect();
    let kept_colors = kept.iter().filter(|&&k| k).count();

    // If the subsample came out empty (tiny λ and unlucky draw), fall back to
    // the estimator's own placement — it is still a certified placement.
    if sample.is_empty() {
        return ColorSamplingResult {
            placement: ColoredPlacement {
                center: estimate.center,
                distinct: instance.distinct_at(&estimate.center),
            },
            opt_estimate,
            branch: ColorSamplingBranch::SampledColors { kept_colors: 0, kept_disks: 0 },
        };
    }

    let on_sample = output_sensitive_colored_disk(&sample, instance.radius);
    // Report the true colored depth of the chosen point with respect to the
    // full input; by Lemma 4.8 it is at least (1 − ε)·opt with high
    // probability.
    let distinct = instance.distinct_at(&on_sample.center);
    ColorSamplingResult {
        placement: ColoredPlacement { center: on_sample.center, distinct },
        opt_estimate,
        branch: ColorSamplingBranch::SampledColors { kept_colors, kept_disks: sample.len() },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::colored_disk2d::exact_colored_disk;
    use mrs_geom::Point2;

    fn site(x: f64, y: f64, color: usize) -> ColoredSite<2> {
        ColoredSite::new(Point2::xy(x, y), color)
    }

    #[test]
    fn empty_instance() {
        let inst = ColoredBallInstance::<2>::new(vec![], 1.0);
        let res = approx_colored_disk_sampling(&inst, ColorSamplingConfig::new(0.25));
        assert_eq!(res.distinct, 0);
    }

    #[test]
    fn small_opt_takes_the_exact_branch_and_is_exact() {
        // opt = 3 < threshold, so the answer is exact.
        let sites = vec![
            site(0.0, 0.0, 0),
            site(0.2, 0.0, 1),
            site(0.0, 0.2, 2),
            site(20.0, 20.0, 3),
            site(40.0, 0.0, 4),
        ];
        let inst = ColoredBallInstance::new(sites.clone(), 1.0);
        let details =
            approx_colored_disk_sampling_with_details(&inst, ColorSamplingConfig::new(0.25));
        assert_eq!(details.branch, ColorSamplingBranch::ExactOnFullInput);
        assert_eq!(details.placement.distinct, exact_colored_disk(&sites, 1.0).distinct);
    }

    #[test]
    fn large_opt_takes_the_sampling_branch_and_stays_near_optimal() {
        // 120 colors, all of whose disks overlap around the origin, so
        // opt = 120 far exceeds the (reduced-c₁) threshold and the sampling
        // branch must run.  A (1 − ε) guarantee with ε = 0.25 demands at
        // least 90.
        let mut rng = StdRng::seed_from_u64(1);
        let mut sites = Vec::new();
        for color in 0..120usize {
            for _ in 0..2 {
                sites.push(site(rng.gen_range(0.0..0.5), rng.gen_range(0.0..0.5), color));
            }
        }
        // Noise far away.
        for color in 0..40usize {
            sites.push(site(rng.gen_range(30.0..60.0), rng.gen_range(30.0..60.0), color));
        }
        let inst = ColoredBallInstance::new(sites.clone(), 1.0);
        let mut config = ColorSamplingConfig::new(0.25).with_seed(7);
        // Lower c₁ so the threshold (c₁ ε⁻² ln n ≈ 45) sits below opt' and the
        // interesting branch is exercised at this test size.
        config.c1 = 0.5;
        let details = approx_colored_disk_sampling_with_details(&inst, config);
        match details.branch {
            ColorSamplingBranch::SampledColors { kept_colors, kept_disks } => {
                assert!(kept_colors > 0);
                assert!(kept_disks >= kept_colors);
                assert!(kept_disks < sites.len(), "sampling must actually subsample");
            }
            other => panic!("expected the sampling branch, got {other:?}"),
        }
        let exact = exact_colored_disk(&sites, 1.0);
        assert_eq!(exact.distinct, 120);
        assert!(
            details.placement.distinct as f64 >= 0.75 * exact.distinct as f64,
            "(1 − ε) guarantee violated: {} vs {}",
            details.placement.distinct,
            exact.distinct
        );
    }

    #[test]
    fn reported_count_is_a_true_placement_value() {
        let mut rng = StdRng::seed_from_u64(5);
        let sites: Vec<ColoredSite<2>> = (0..150)
            .map(|_| {
                site(rng.gen_range(0.0..3.0), rng.gen_range(0.0..3.0), rng.gen_range(0..50usize))
            })
            .collect();
        let inst = ColoredBallInstance::new(sites, 1.0);
        let res = approx_colored_disk_sampling(&inst, ColorSamplingConfig::new(0.2).with_seed(3));
        assert_eq!(inst.distinct_at(&res.center), res.distinct);
        assert!(res.distinct <= inst.distinct_colors());
    }

    #[test]
    fn epsilon_controls_quality_monotonically_on_average() {
        // A smoke check that a tighter ε does not do worse on a fixed seed.
        let mut rng = StdRng::seed_from_u64(11);
        let mut sites = Vec::new();
        for color in 0..80usize {
            sites.push(site(rng.gen_range(0.0..0.8), rng.gen_range(0.0..0.8), color));
        }
        let inst = ColoredBallInstance::new(sites, 1.0);
        let loose = approx_colored_disk_sampling(&inst, ColorSamplingConfig::new(0.5).with_seed(2));
        let tight = approx_colored_disk_sampling(&inst, ColorSamplingConfig::new(0.1).with_seed(2));
        assert!(tight.distinct >= loose.distinct.saturating_sub(8));
        assert!(tight.distinct <= 80);
    }
}
