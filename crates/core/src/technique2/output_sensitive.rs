//! The output-sensitive exact algorithm for colored disk MaxRS (Theorem 4.6).
//!
//! Running the union-boundary algorithm (Lemma 4.2) on the whole input costs
//! time proportional to the total number of boundary crossings, which can be
//! quadratic.  Theorem 4.6 brings this down to `O(n log n + n·opt)` expected
//! time by localizing: a family of shifted unit grids (Lemma 2.1 with `s = 1`,
//! `Δ = 0.25`) is laid over the plane, in each cell every unit disk that does
//! not contain a corner of the cell is discarded (Lemma 4.3 shows such a disk
//! cannot contain the optimum when the optimum is `0.25`-near that cell), and
//! the exact algorithm runs on what remains — at most `4·opt` colors per cell,
//! so at most `O(n_C · opt)` crossings per cell (Lemmas 4.4/4.5).

use std::collections::HashMap;

use mrs_geom::grid::CellCoord;
use mrs_geom::{Ball, ColoredSite, Point2, ShiftedGrids};

use crate::input::ColoredPlacement;
use crate::technique2::union_exact::max_colored_depth_union;

/// Statistics from an output-sensitive run, reported for the experiments.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct OutputSensitiveStats {
    /// Number of shifted grids processed.
    pub grids: usize,
    /// Number of non-empty cells across all grids.
    pub cells: usize,
    /// Total number of (disk, cell) incidences that survived the corner test.
    pub surviving_disks: usize,
    /// Total number of boundary–boundary crossings examined across all cells
    /// (the output-sensitive `k`).
    pub boundary_intersections: usize,
}

/// Exact maximum colored depth for *unit* disks (dual setting) in
/// `O(n log n + n·opt)` expected time.
///
/// # Panics
/// Panics if `disks` and `colors` have different lengths or any disk is not of
/// unit radius (the corner-discarding argument of Lemma 4.3 requires unit
/// disks and the `s = 1` grid).
pub fn max_colored_depth_output_sensitive(
    disks: &[Ball<2>],
    colors: &[usize],
) -> (Point2, usize, OutputSensitiveStats) {
    assert_eq!(disks.len(), colors.len(), "one color per disk is required");
    for d in disks {
        assert!(
            (d.radius - 1.0).abs() < 1e-9,
            "the output-sensitive algorithm operates on unit disks (got radius {})",
            d.radius
        );
    }
    let mut stats = OutputSensitiveStats::default();
    if disks.is_empty() {
        return (Point2::xy(0.0, 0.0), 0, stats);
    }

    // Lemma 2.1 family with s = 1 and Δ = 0.25.
    let grids = ShiftedGrids::<2>::full(1.0, 0.25);
    stats.grids = grids.len();

    let mut best_point = disks[0].center;
    let mut best_depth = 0usize;

    for grid in grids.grids() {
        // Bucket disks by the cells they intersect.
        let mut cells: HashMap<CellCoord<2>, Vec<usize>> = HashMap::new();
        for (i, disk) in disks.iter().enumerate() {
            for cell in grid.cells_intersecting_ball(disk) {
                cells.entry(cell).or_default().push(i);
            }
        }
        stats.cells += cells.len();

        for (cell, members) in &cells {
            let cell_box = grid.cell_aabb(cell);
            let corners = cell_box.corners();
            // Lemma 4.3(1): only disks containing a corner of the cell can
            // contain an optimum that is 0.25-near this cell.
            let surviving: Vec<usize> = members
                .iter()
                .copied()
                .filter(|&i| corners.iter().any(|c| disks[i].contains(c)))
                .collect();
            if surviving.is_empty() {
                continue;
            }
            stats.surviving_disks += surviving.len();
            let sub_disks: Vec<Ball<2>> = surviving.iter().map(|&i| disks[i]).collect();
            let sub_colors: Vec<usize> = surviving.iter().map(|&i| colors[i]).collect();
            let result = max_colored_depth_union(&sub_disks, &sub_colors);
            stats.boundary_intersections += result.boundary_intersections;
            if result.depth > best_depth {
                best_depth = result.depth;
                best_point = result.point;
            }
        }
    }
    (best_point, best_depth, stats)
}

/// Exact colored disk MaxRS in the primal setting via the output-sensitive
/// algorithm of Theorem 4.6.
///
/// # Example
/// ```
/// use mrs_core::technique2::output_sensitive_colored_disk;
/// use mrs_geom::{ColoredSite, Point2};
///
/// let sites = vec![
///     ColoredSite::new(Point2::xy(0.0, 0.0), 0),
///     ColoredSite::new(Point2::xy(0.4, 0.0), 1),
///     ColoredSite::new(Point2::xy(0.4, 0.3), 1), // duplicate color
///     ColoredSite::new(Point2::xy(9.0, 9.0), 2),
/// ];
/// let best = output_sensitive_colored_disk(&sites, 1.0);
/// assert_eq!(best.distinct, 2);
/// ```
///
pub fn output_sensitive_colored_disk(sites: &[ColoredSite<2>], radius: f64) -> ColoredPlacement<2> {
    output_sensitive_colored_disk_with_stats(sites, radius).0
}

/// Like [`output_sensitive_colored_disk`] but also reports run statistics.
pub fn output_sensitive_colored_disk_with_stats(
    sites: &[ColoredSite<2>],
    radius: f64,
) -> (ColoredPlacement<2>, OutputSensitiveStats) {
    assert!(radius.is_finite() && radius > 0.0, "query radius must be positive");
    if sites.is_empty() {
        return (ColoredPlacement::empty(), OutputSensitiveStats::default());
    }
    let inv = 1.0 / radius;
    let disks: Vec<Ball<2>> = sites.iter().map(|s| Ball::unit(s.point.scale(inv))).collect();
    let colors: Vec<usize> = sites.iter().map(|s| s.color).collect();
    let (point, depth, stats) = max_colored_depth_output_sensitive(&disks, &colors);
    (ColoredPlacement { center: point.scale(radius), distinct: depth }, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::colored_disk2d::{colored_depth_at, exact_colored_disk};
    use rand::prelude::*;

    fn site(x: f64, y: f64, color: usize) -> ColoredSite<2> {
        ColoredSite::new(Point2::xy(x, y), color)
    }

    #[test]
    fn empty_input() {
        let (res, stats) = output_sensitive_colored_disk_with_stats(&[], 1.0);
        assert_eq!(res.distinct, 0);
        assert_eq!(stats.cells, 0);
    }

    #[test]
    fn single_site() {
        let res = output_sensitive_colored_disk(&[site(3.0, 4.0, 2)], 1.0);
        assert_eq!(res.distinct, 1);
    }

    #[test]
    fn three_colors_in_a_cluster() {
        let sites = vec![
            site(0.0, 0.0, 0),
            site(0.3, 0.2, 0),
            site(0.5, 0.0, 1),
            site(0.1, 0.6, 2),
            site(10.0, 10.0, 3),
        ];
        let res = output_sensitive_colored_disk(&sites, 1.0);
        assert_eq!(res.distinct, 3);
        assert_eq!(colored_depth_at(&sites, 1.0, &res.center), 3);
    }

    #[test]
    fn matches_candidate_enumeration_oracle_on_random_instances() {
        let mut rng = StdRng::seed_from_u64(101);
        for round in 0..20 {
            let n = rng.gen_range(2..40);
            let m = rng.gen_range(1..6usize);
            let sites: Vec<ColoredSite<2>> = (0..n)
                .map(|_| {
                    site(rng.gen_range(0.0..4.0), rng.gen_range(0.0..4.0), rng.gen_range(0..m))
                })
                .collect();
            let radius = rng.gen_range(0.5..1.5);
            let fast = output_sensitive_colored_disk(&sites, radius);
            let oracle = exact_colored_disk(&sites, radius);
            assert_eq!(
                fast.distinct, oracle.distinct,
                "round {round}: output-sensitive {} vs oracle {}",
                fast.distinct, oracle.distinct
            );
        }
    }

    #[test]
    fn stats_reflect_localization() {
        // Two far-apart clusters: the surviving-disk incidences stay small per
        // cell and the boundary crossing count stays near-linear.
        let mut rng = StdRng::seed_from_u64(7);
        let mut sites = Vec::new();
        for i in 0..40 {
            let base = if i % 2 == 0 { 0.0 } else { 30.0 };
            sites.push(site(base + rng.gen_range(0.0..1.5), base + rng.gen_range(0.0..1.5), i % 8));
        }
        let (res, stats) = output_sensitive_colored_disk_with_stats(&sites, 1.0);
        assert!(res.distinct >= 4);
        assert_eq!(stats.grids, 36, "s=1, Δ=0.25 family in the plane has 6² grids");
        assert!(stats.cells > 0);
        assert!(stats.surviving_disks > 0);
    }

    #[test]
    fn opt_one_instances_are_cheap_in_crossings() {
        // Pairwise-disjoint color classes far apart: opt = 1, so the
        // output-sensitive crossing count must be zero.
        let sites: Vec<ColoredSite<2>> =
            (0..30).map(|i| site(10.0 * i as f64, 0.0, i % 10)).collect();
        let (res, stats) = output_sensitive_colored_disk_with_stats(&sites, 1.0);
        assert_eq!(res.distinct, 1);
        assert_eq!(stats.boundary_intersections, 0);
    }
}
