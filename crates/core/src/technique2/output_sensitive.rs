//! The output-sensitive exact algorithm for colored disk MaxRS (Theorem 4.6).
//!
//! Running the union-boundary algorithm (Lemma 4.2) on the whole input costs
//! time proportional to the total number of boundary crossings, which can be
//! quadratic.  Theorem 4.6 brings this down to `O(n log n + n·opt)` expected
//! time by localizing: a family of shifted unit grids (Lemma 2.1 with `s = 1`,
//! `Δ = 0.25`) is laid over the plane, in each cell every unit disk that does
//! not contain a corner of the cell is discarded (Lemma 4.3 shows such a disk
//! cannot contain the optimum when the optimum is `0.25`-near that cell), and
//! the exact algorithm runs on what remains — at most `4·opt` colors per cell,
//! so at most `O(n_C · opt)` crossings per cell (Lemmas 4.4/4.5).
//!
//! ## Hot-path layout
//!
//! The localization runs the union sweep once per non-empty cell — thousands
//! of small invocations per query — so the per-grid cell bucketing is a
//! sort-based CSR pass over one reused `(cell, disk)` incidence buffer (no
//! hash map, no per-cell vectors), and every sweep invocation shares one
//! [`UnionScratch`].  The deterministic cell order also makes the reported
//! optimum point reproducible run to run, which the hash-map bucketing was
//! not.

use mrs_geom::grid::{CellCoord, Grid};
use mrs_geom::{Ball, ColoredSite, GridQueryStats, Point2, ShiftedGrids};

use crate::engine::cancel;
use crate::input::ColoredPlacement;
use crate::technique2::union_exact::{max_colored_depth_union_with, UnionScratch};

/// Statistics from an output-sensitive run, reported for the experiments.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct OutputSensitiveStats {
    /// Number of shifted grids processed.
    pub grids: usize,
    /// Number of non-empty cells across all grids.
    pub cells: usize,
    /// Total number of (disk, cell) incidences that survived the corner test.
    pub surviving_disks: usize,
    /// Cells skipped because their distinct surviving-color count could not
    /// strictly beat the best depth already found (the cell's depth is at
    /// most its distinct color count, so the skip is behavior-identical).
    pub cells_pruned: usize,
    /// Cells skipped because their exact surviving-disk subset was already
    /// swept in an earlier cell (the 36 shifted grids revisit the same dense
    /// neighbourhoods; identical subsets give identical sweeps).
    pub cells_deduped: usize,
    /// Total number of boundary–boundary crossings examined across all cells
    /// (the output-sensitive `k`).
    pub boundary_intersections: usize,
    /// Neighbour-grid work accumulated over every per-cell union sweep.
    pub grid_queries: GridQueryStats,
}

/// Bit layout of a packed incidence: one `u128` holds `(cell y - bias y)` in
/// the top 48 bits, `(cell x - bias x)` in the middle 48, and the disk id in
/// the low 32.  Sorting the raw integers is then exactly "row-major cell,
/// then ascending disk id" — one scalar compare, 16-byte elements, no
/// comparator — which is what makes the per-grid CSR bucketing sort cheap.
/// The bias is the instance's minimum cell, so the deltas are non-negative;
/// spans beyond 48 bits per axis (coordinate spreads past ~10^14 cells,
/// where `f64` cell addressing is already threadbare) take the full-width
/// cold path instead.
const INC_ID_BITS: u32 = 32;
/// Bits per biased cell axis in a packed incidence.
const INC_AXIS_BITS: u32 = 48;
/// Mask of one packed axis field.
const INC_AXIS_MASK: u128 = (1 << INC_AXIS_BITS) - 1;

/// Packs a biased cell address and disk id into one sortable integer.
#[inline]
fn pack_incidence(dx: u64, dy: u64, id: u32) -> u128 {
    ((dy as u128) << (INC_AXIS_BITS + INC_ID_BITS)) | ((dx as u128) << INC_ID_BITS) | id as u128
}

/// Recovers the cell address from a packed incidence key (`key >> INC_ID_BITS`).
#[inline]
fn unpack_cell(cell_key: u128, bias: &CellCoord<2>) -> CellCoord<2> {
    [bias[0] + ((cell_key & INC_AXIS_MASK) as i64), bias[1] + ((cell_key >> INC_AXIS_BITS) as i64)]
}

/// Planar specialization of [`Grid::for_each_cell_intersecting_ball`]: walks
/// the integer bounding box of the disk row by row, hoisting the clamped
/// y-distance out of each row and pushing packed `(cell, id)` incidences
/// directly.  Cell boundaries and the intersection tolerance match
/// `Ball::intersects_aabb` term for term, so the incidence set is identical
/// to the generic enumerator's.  `pack` receives the biased non-negative
/// cell deltas, so the same walk feeds the `u64` and `u128` key tiers.
#[inline]
fn push_disk_incidences<K>(
    grid: &Grid<2>,
    disk: &Ball<2>,
    id: u32,
    bias: &CellCoord<2>,
    pack: impl Fn(u64, u64, u32) -> K,
    out: &mut Vec<K>,
) {
    let (cx, cy) = (disk.center.x(), disk.center.y());
    let r = disk.radius;
    let lim = r * r * (1.0 + 1e-12) + 1e-12;
    let lo = grid.cell_of(&Point2::xy(cx - r, cy - r));
    let hi = grid.cell_of(&Point2::xy(cx + r, cy + r));
    for gy in lo[1]..=hi[1] {
        let y0 = grid.offset.y() + gy as f64 * grid.side;
        let y1 = y0 + grid.side;
        let dy = if cy < y0 {
            y0 - cy
        } else if cy > y1 {
            cy - y1
        } else {
            0.0
        };
        let dy_sq = dy * dy;
        let by = (gy - bias[1]) as u64;
        for gx in lo[0]..=hi[0] {
            let x0 = grid.offset.x() + gx as f64 * grid.side;
            let x1 = x0 + grid.side;
            let dx = if cx < x0 {
                x0 - cx
            } else if cx > x1 {
                cx - x1
            } else {
                0.0
            };
            if dx * dx + dy_sq <= lim {
                out.push(pack((gx - bias[0]) as u64, by, id));
            }
        }
    }
}

/// Groups a cell-major sorted incidence buffer into per-cell runs and sweeps
/// them longest first.  A cell's colored depth is bounded by its incidence
/// count, so once the best depth reaches the longest remaining run the
/// entire tail of the grid is prunable in one step — without corner tests.
/// The order is fully specified (length descending, then buffer position),
/// so runs stay reproducible and kernel-mode independent.
#[allow(clippy::too_many_arguments)]
fn sweep_sorted_incidences<K: Copy>(
    incidences: &[K],
    runs: &mut Vec<(u32, u32)>,
    same_cell: impl Fn(K, K) -> bool,
    cell_of: impl Fn(K) -> CellCoord<2>,
    id_of: impl Fn(K) -> u32 + Copy,
    grid: &Grid<2>,
    disks: &[Ball<2>],
    colors: &[usize],
    st: &mut LocalizeState,
) {
    runs.clear();
    let mut start = 0;
    while start < incidences.len() {
        let mut end = start + 1;
        while end < incidences.len() && same_cell(incidences[start], incidences[end]) {
            end += 1;
        }
        runs.push((start as u32, end as u32));
        start = end;
    }
    runs.sort_unstable_by_key(|&(s, e)| (std::cmp::Reverse(e - s), s));
    for (k, &(s, e)) in runs.iter().enumerate() {
        if cancel::poll(k) {
            break;
        }
        if (e - s) as usize <= st.best_depth {
            let skipped = runs.len() - k;
            st.stats.cells += skipped;
            st.stats.cells_pruned += skipped;
            break;
        }
        let cell = cell_of(incidences[s as usize]);
        let ids = incidences[s as usize..e as usize].iter().map(move |&key| id_of(key));
        sweep_cell(grid, &cell, ids, disks, colors, st);
    }
}

/// Mutable state threaded through every localized cell: the reusable sweep
/// buffers, the pruning tables, and the best placement so far.
struct LocalizeState {
    surviving: Vec<u32>,
    sub_disks: Vec<Ball<2>>,
    sub_colors: Vec<usize>,
    scratch: UnionScratch,
    color_stamp: Vec<u64>,
    color_generation: u64,
    seen_subsets: std::collections::HashSet<Box<[u32]>>,
    stats: OutputSensitiveStats,
    best_point: Point2,
    best_depth: usize,
}

/// Processes one localized cell: corner-filters the incident disks, applies
/// the two behavior-identical prunes, and runs the union sweep on whatever
/// survives.
fn sweep_cell(
    grid: &Grid<2>,
    cell: &CellCoord<2>,
    ids: impl Iterator<Item = u32>,
    disks: &[Ball<2>],
    colors: &[usize],
    st: &mut LocalizeState,
) {
    st.stats.cells += 1;
    let cell_box = grid.cell_aabb(cell);
    // Lemma 4.3(1): only disks containing a corner of the cell can contain
    // an optimum that is 0.25-near this cell.  The four corner tests share
    // the per-axis center offsets, so evaluate them branch-free (one OR of
    // four squared-distance compares, same tolerance as [`Ball::contains`])
    // instead of chasing the allocating `corners()` path.
    let (x0, y0) = (cell_box.lo.x(), cell_box.lo.y());
    let (x1, y1) = (cell_box.hi.x(), cell_box.hi.y());
    st.surviving.clear();
    st.surviving.extend(ids.filter(|&i| {
        let d = &disks[i as usize];
        let r = d.radius * (1.0 + 1e-12) + 1e-12;
        let r_sq = r * r;
        let (dx0, dx1) = (d.center.x() - x0, d.center.x() - x1);
        let (dy0, dy1) = (d.center.y() - y0, d.center.y() - y1);
        let (dx0, dx1) = (dx0 * dx0, dx1 * dx1);
        let (dy0, dy1) = (dy0 * dy0, dy1 * dy1);
        (dx0 + dy0 <= r_sq) | (dx1 + dy0 <= r_sq) | (dx0 + dy1 <= r_sq) | (dx1 + dy1 <= r_sq)
    }));
    if st.surviving.is_empty() {
        return;
    }
    st.stats.surviving_disks += st.surviving.len();
    // Prune 1: a cell's colored depth is at most its number of distinct
    // surviving colors; if that bound cannot *strictly* beat the best depth
    // so far, the sweep could never improve it.
    st.color_generation += 1;
    let mut distinct_bound = 0usize;
    for &i in &st.surviving {
        let c = colors[i as usize];
        // Branch-free stamp: unconditionally re-stamp and add the 0/1
        // novelty flag, so the loop carries no mispredictable per-color
        // branch.
        let is_new = usize::from(st.color_stamp[c] != st.color_generation);
        st.color_stamp[c] = st.color_generation;
        distinct_bound += is_new;
    }
    if distinct_bound <= st.best_depth {
        st.stats.cells_pruned += 1;
        return;
    }
    // Prune 2: the shifted family revisits the same dense neighbourhoods; an
    // exactly-identical surviving subset (ids are sorted ascending)
    // reproduces an earlier sweep verbatim.  The membership probe borrows
    // the slice; only genuinely new subsets pay the boxed-copy insertion.
    if st.seen_subsets.contains(st.surviving.as_slice()) {
        st.stats.cells_deduped += 1;
        return;
    }
    st.seen_subsets.insert(st.surviving.as_slice().into());
    st.sub_disks.clear();
    st.sub_disks.extend(st.surviving.iter().map(|&i| disks[i as usize]));
    st.sub_colors.clear();
    st.sub_colors.extend(st.surviving.iter().map(|&i| colors[i as usize]));
    let result = max_colored_depth_union_with(&st.sub_disks, &st.sub_colors, &mut st.scratch);
    st.stats.boundary_intersections += result.boundary_intersections;
    st.stats.grid_queries.merge(result.grid_stats);
    if result.depth > st.best_depth {
        st.best_depth = result.depth;
        st.best_point = result.point;
    }
}

/// Exact maximum colored depth for *unit* disks (dual setting) in
/// `O(n log n + n·opt)` expected time.
///
/// # Panics
/// Panics if `disks` and `colors` have different lengths or any disk is not of
/// unit radius (the corner-discarding argument of Lemma 4.3 requires unit
/// disks and the `s = 1` grid).
pub fn max_colored_depth_output_sensitive(
    disks: &[Ball<2>],
    colors: &[usize],
) -> (Point2, usize, OutputSensitiveStats) {
    assert_eq!(disks.len(), colors.len(), "one color per disk is required");
    for d in disks {
        assert!(
            (d.radius - 1.0).abs() < 1e-9,
            "the output-sensitive algorithm operates on unit disks (got radius {})",
            d.radius
        );
    }
    let mut stats = OutputSensitiveStats::default();
    if disks.is_empty() {
        return (Point2::xy(0.0, 0.0), 0, stats);
    }

    // Lemma 2.1 family with s = 1 and Δ = 0.25.
    let grids = ShiftedGrids::<2>::full(1.0, 0.25);
    stats.grids = grids.len();

    // Both prunes inside `sweep_cell` are *behavior-identical*: a cell whose
    // distinct surviving-color count cannot strictly exceed `best_depth`
    // could never update it (a cell's depth is bounded by its color count),
    // and a cell whose exact surviving subset was already swept would
    // reproduce the earlier result, which already had its chance to win.
    let num_colors = colors.iter().copied().max().unwrap_or(0) + 1;
    let mut st = LocalizeState {
        surviving: Vec::new(),
        sub_disks: Vec::new(),
        sub_colors: Vec::new(),
        scratch: UnionScratch::default(),
        color_stamp: vec![0; num_colors],
        color_generation: 0,
        seen_subsets: std::collections::HashSet::new(),
        stats,
        best_point: disks[0].center,
        best_depth: 0,
    };

    // Instance bounding box (over the disks, not just the centers): `cell_of`
    // is monotone per axis, so these corners bound every cell address any
    // grid of the family can produce — the bias of the packed incidences.
    let mut bb_lo = Point2::xy(f64::INFINITY, f64::INFINITY);
    let mut bb_hi = Point2::xy(f64::NEG_INFINITY, f64::NEG_INFINITY);
    for d in disks {
        bb_lo = bb_lo.component_min(&Point2::xy(d.center.x() - d.radius, d.center.y() - d.radius));
        bb_hi = bb_hi.component_max(&Point2::xy(d.center.x() + d.radius, d.center.y() + d.radius));
    }

    // Reused across every grid of the family.
    let mut inc64: Vec<u64> = Vec::new();
    let mut incidences: Vec<u128> = Vec::new();
    let mut runs: Vec<(u32, u32)> = Vec::new();

    for grid in grids.grids() {
        // Coarse check once per shifted grid (the family has 36 members);
        // the fine-grained polling lives in `sweep_sorted_incidences`.
        if cancel::should_stop() {
            break;
        }
        let bias = grid.cell_of(&bb_lo);
        let top = grid.cell_of(&bb_hi);
        let span_x = (top[0].wrapping_sub(bias[0])) as u64;
        let span_y = (top[1].wrapping_sub(bias[1])) as u64;
        // Bucket disks by the cells they intersect: collect packed
        // (cell, disk) incidences into one flat buffer and sort it
        // CSR-style.  The id sits in the low bits of the key, so the plain
        // integer sort keeps ascending disk id within each cell.  Three key
        // tiers trade width for sort speed: `u64` (`dy:16 | dx:16 | id:32`)
        // covers spans up to 2^16 cells per axis — virtually every real
        // instance — and sorts about twice as fast as the `u128` mid tier;
        // full-width `(cell, id)` tuples are the cold fallback.
        if span_x < (1 << 16) && span_y < (1 << 16) {
            inc64.clear();
            for (i, disk) in disks.iter().enumerate() {
                push_disk_incidences(
                    grid,
                    disk,
                    i as u32,
                    &bias,
                    |dx, dy, id| (dy << 48) | (dx << 32) | id as u64,
                    &mut inc64,
                );
            }
            inc64.sort_unstable();
            sweep_sorted_incidences(
                &inc64,
                &mut runs,
                |a, b| (a >> 32) == (b >> 32),
                |key| [bias[0] + ((key >> 32) & 0xffff) as i64, bias[1] + (key >> 48) as i64],
                |key| key as u32,
                grid,
                disks,
                colors,
                &mut st,
            );
        } else if span_x < (1 << INC_AXIS_BITS) && span_y < (1 << INC_AXIS_BITS) {
            incidences.clear();
            for (i, disk) in disks.iter().enumerate() {
                push_disk_incidences(grid, disk, i as u32, &bias, pack_incidence, &mut incidences);
            }
            incidences.sort_unstable();
            sweep_sorted_incidences(
                &incidences,
                &mut runs,
                |a, b| (a >> INC_ID_BITS) == (b >> INC_ID_BITS),
                |key| unpack_cell(key >> INC_ID_BITS, &bias),
                |key| key as u32,
                grid,
                disks,
                colors,
                &mut st,
            );
        } else {
            // Cold path for coordinate spreads past ~10^14 cells: the same
            // bucketing with full-width `(cell, id)` tuples via the generic
            // enumerator, sorted on the fully-specified `(row, column, id)`
            // key.
            let mut wide: Vec<(CellCoord<2>, u32)> = Vec::new();
            for (i, disk) in disks.iter().enumerate() {
                grid.for_each_cell_intersecting_ball(disk, |cell| wide.push((cell, i as u32)));
            }
            wide.sort_unstable_by_key(|&(cell, id)| (cell[1], cell[0], id));
            sweep_sorted_incidences(
                &wide,
                &mut runs,
                |a, b| a.0 == b.0,
                |key| key.0,
                |key| key.1,
                grid,
                disks,
                colors,
                &mut st,
            );
        }
    }
    (st.best_point, st.best_depth, st.stats)
}

/// Exact colored disk MaxRS in the primal setting via the output-sensitive
/// algorithm of Theorem 4.6.
///
/// # Example
/// ```
/// use mrs_core::technique2::output_sensitive_colored_disk;
/// use mrs_geom::{ColoredSite, Point2};
///
/// let sites = vec![
///     ColoredSite::new(Point2::xy(0.0, 0.0), 0),
///     ColoredSite::new(Point2::xy(0.4, 0.0), 1),
///     ColoredSite::new(Point2::xy(0.4, 0.3), 1), // duplicate color
///     ColoredSite::new(Point2::xy(9.0, 9.0), 2),
/// ];
/// let best = output_sensitive_colored_disk(&sites, 1.0);
/// assert_eq!(best.distinct, 2);
/// ```
///
pub fn output_sensitive_colored_disk(sites: &[ColoredSite<2>], radius: f64) -> ColoredPlacement<2> {
    output_sensitive_colored_disk_with_stats(sites, radius).0
}

/// Like [`output_sensitive_colored_disk`] but also reports run statistics.
pub fn output_sensitive_colored_disk_with_stats(
    sites: &[ColoredSite<2>],
    radius: f64,
) -> (ColoredPlacement<2>, OutputSensitiveStats) {
    assert!(radius.is_finite() && radius > 0.0, "query radius must be positive");
    if sites.is_empty() {
        return (ColoredPlacement::empty(), OutputSensitiveStats::default());
    }
    let inv = 1.0 / radius;
    let disks: Vec<Ball<2>> = sites.iter().map(|s| Ball::unit(s.point.scale(inv))).collect();
    let colors: Vec<usize> = sites.iter().map(|s| s.color).collect();
    let (point, depth, stats) = max_colored_depth_output_sensitive(&disks, &colors);
    (ColoredPlacement { center: point.scale(radius), distinct: depth }, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::colored_disk2d::{colored_depth_at, exact_colored_disk};
    use rand::prelude::*;

    fn site(x: f64, y: f64, color: usize) -> ColoredSite<2> {
        ColoredSite::new(Point2::xy(x, y), color)
    }

    #[test]
    fn empty_input() {
        let (res, stats) = output_sensitive_colored_disk_with_stats(&[], 1.0);
        assert_eq!(res.distinct, 0);
        assert_eq!(stats.cells, 0);
    }

    #[test]
    fn single_site() {
        let res = output_sensitive_colored_disk(&[site(3.0, 4.0, 2)], 1.0);
        assert_eq!(res.distinct, 1);
    }

    #[test]
    fn three_colors_in_a_cluster() {
        let sites = vec![
            site(0.0, 0.0, 0),
            site(0.3, 0.2, 0),
            site(0.5, 0.0, 1),
            site(0.1, 0.6, 2),
            site(10.0, 10.0, 3),
        ];
        let res = output_sensitive_colored_disk(&sites, 1.0);
        assert_eq!(res.distinct, 3);
        assert_eq!(colored_depth_at(&sites, 1.0, &res.center), 3);
    }

    #[test]
    fn matches_candidate_enumeration_oracle_on_random_instances() {
        let mut rng = StdRng::seed_from_u64(101);
        for round in 0..20 {
            let n = rng.gen_range(2..40);
            let m = rng.gen_range(1..6usize);
            let sites: Vec<ColoredSite<2>> = (0..n)
                .map(|_| {
                    site(rng.gen_range(0.0..4.0), rng.gen_range(0.0..4.0), rng.gen_range(0..m))
                })
                .collect();
            let radius = rng.gen_range(0.5..1.5);
            let fast = output_sensitive_colored_disk(&sites, radius);
            let oracle = exact_colored_disk(&sites, radius);
            assert_eq!(
                fast.distinct, oracle.distinct,
                "round {round}: output-sensitive {} vs oracle {}",
                fast.distinct, oracle.distinct
            );
        }
    }

    #[test]
    fn deterministic_across_runs() {
        // The sort-based bucketing visits cells in a fixed order, so repeated
        // runs report the exact same optimum point (the hash-map bucketing
        // did not guarantee this under ties).
        let mut rng = StdRng::seed_from_u64(23);
        let sites: Vec<ColoredSite<2>> = (0..50)
            .map(|_| site(rng.gen_range(0.0..3.0), rng.gen_range(0.0..3.0), rng.gen_range(0..6)))
            .collect();
        let first = output_sensitive_colored_disk(&sites, 1.0);
        for _ in 0..3 {
            let again = output_sensitive_colored_disk(&sites, 1.0);
            assert_eq!(first.center, again.center);
            assert_eq!(first.distinct, again.distinct);
        }
    }

    #[test]
    fn stats_reflect_localization() {
        // Two far-apart clusters: the surviving-disk incidences stay small per
        // cell and the boundary crossing count stays near-linear.
        let mut rng = StdRng::seed_from_u64(7);
        let mut sites = Vec::new();
        for i in 0..40 {
            let base = if i % 2 == 0 { 0.0 } else { 30.0 };
            sites.push(site(base + rng.gen_range(0.0..1.5), base + rng.gen_range(0.0..1.5), i % 8));
        }
        let (res, stats) = output_sensitive_colored_disk_with_stats(&sites, 1.0);
        assert!(res.distinct >= 4);
        assert_eq!(stats.grids, 36, "s=1, Δ=0.25 family in the plane has 6² grids");
        assert!(stats.cells > 0);
        assert!(stats.surviving_disks > 0);
        assert!(stats.grid_queries.candidates > 0, "sweep work is counted");
    }

    #[test]
    fn opt_one_instances_are_cheap_in_crossings() {
        // Pairwise-disjoint color classes far apart: opt = 1, so the
        // output-sensitive crossing count must be zero.
        let sites: Vec<ColoredSite<2>> =
            (0..30).map(|i| site(10.0 * i as f64, 0.0, i % 10)).collect();
        let (res, stats) = output_sensitive_colored_disk_with_stats(&sites, 1.0);
        assert_eq!(res.distinct, 1);
        assert_eq!(stats.boundary_intersections, 0);
    }
}
