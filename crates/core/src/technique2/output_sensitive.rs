//! The output-sensitive exact algorithm for colored disk MaxRS (Theorem 4.6).
//!
//! Running the union-boundary algorithm (Lemma 4.2) on the whole input costs
//! time proportional to the total number of boundary crossings, which can be
//! quadratic.  Theorem 4.6 brings this down to `O(n log n + n·opt)` expected
//! time by localizing: a family of shifted unit grids (Lemma 2.1 with `s = 1`,
//! `Δ = 0.25`) is laid over the plane, in each cell every unit disk that does
//! not contain a corner of the cell is discarded (Lemma 4.3 shows such a disk
//! cannot contain the optimum when the optimum is `0.25`-near that cell), and
//! the exact algorithm runs on what remains — at most `4·opt` colors per cell,
//! so at most `O(n_C · opt)` crossings per cell (Lemmas 4.4/4.5).
//!
//! ## Hot-path layout
//!
//! The localization runs the union sweep once per non-empty cell — thousands
//! of small invocations per query — so the per-grid cell bucketing is a
//! sort-based CSR pass over one reused `(cell, disk)` incidence buffer (no
//! hash map, no per-cell vectors), and every sweep invocation shares one
//! [`UnionScratch`].  The deterministic cell order also makes the reported
//! optimum point reproducible run to run, which the hash-map bucketing was
//! not.

use mrs_geom::grid::CellCoord;
use mrs_geom::{Ball, ColoredSite, GridQueryStats, Point2, ShiftedGrids};

use crate::input::ColoredPlacement;
use crate::technique2::union_exact::{max_colored_depth_union_with, UnionScratch};

/// Statistics from an output-sensitive run, reported for the experiments.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct OutputSensitiveStats {
    /// Number of shifted grids processed.
    pub grids: usize,
    /// Number of non-empty cells across all grids.
    pub cells: usize,
    /// Total number of (disk, cell) incidences that survived the corner test.
    pub surviving_disks: usize,
    /// Cells skipped because their distinct surviving-color count could not
    /// strictly beat the best depth already found (the cell's depth is at
    /// most its distinct color count, so the skip is behavior-identical).
    pub cells_pruned: usize,
    /// Cells skipped because their exact surviving-disk subset was already
    /// swept in an earlier cell (the 36 shifted grids revisit the same dense
    /// neighbourhoods; identical subsets give identical sweeps).
    pub cells_deduped: usize,
    /// Total number of boundary–boundary crossings examined across all cells
    /// (the output-sensitive `k`).
    pub boundary_intersections: usize,
    /// Neighbour-grid work accumulated over every per-cell union sweep.
    pub grid_queries: GridQueryStats,
}

/// Row-major cell comparison (axis 1 most significant), matching the CSR
/// grid's ordering so bucketed runs come out in a deterministic order.
#[inline]
fn cmp_cells(a: &CellCoord<2>, b: &CellCoord<2>) -> std::cmp::Ordering {
    a[1].cmp(&b[1]).then(a[0].cmp(&b[0]))
}

/// Exact maximum colored depth for *unit* disks (dual setting) in
/// `O(n log n + n·opt)` expected time.
///
/// # Panics
/// Panics if `disks` and `colors` have different lengths or any disk is not of
/// unit radius (the corner-discarding argument of Lemma 4.3 requires unit
/// disks and the `s = 1` grid).
pub fn max_colored_depth_output_sensitive(
    disks: &[Ball<2>],
    colors: &[usize],
) -> (Point2, usize, OutputSensitiveStats) {
    assert_eq!(disks.len(), colors.len(), "one color per disk is required");
    for d in disks {
        assert!(
            (d.radius - 1.0).abs() < 1e-9,
            "the output-sensitive algorithm operates on unit disks (got radius {})",
            d.radius
        );
    }
    let mut stats = OutputSensitiveStats::default();
    if disks.is_empty() {
        return (Point2::xy(0.0, 0.0), 0, stats);
    }

    // Lemma 2.1 family with s = 1 and Δ = 0.25.
    let grids = ShiftedGrids::<2>::full(1.0, 0.25);
    stats.grids = grids.len();

    let mut best_point = disks[0].center;
    let mut best_depth = 0usize;

    // Buffers reused across every grid and cell of the family.
    let mut incidences: Vec<(CellCoord<2>, u32)> = Vec::new();
    let mut surviving: Vec<u32> = Vec::new();
    let mut sub_disks: Vec<Ball<2>> = Vec::new();
    let mut sub_colors: Vec<usize> = Vec::new();
    let mut scratch = UnionScratch::default();
    // Pruning state.  Both prunes are *behavior-identical*: a cell whose
    // distinct surviving-color count cannot strictly exceed `best_depth`
    // could never update it (a cell's depth is bounded by its color count),
    // and a cell whose exact surviving subset was already swept would
    // reproduce the earlier result, which already had its chance to win.
    let num_colors = colors.iter().copied().max().unwrap_or(0) + 1;
    let mut color_stamp: Vec<u64> = vec![0; num_colors];
    let mut color_generation = 0u64;
    let mut seen_subsets: std::collections::HashSet<Box<[u32]>> = std::collections::HashSet::new();

    for grid in grids.grids() {
        // Bucket disks by the cells they intersect: collect (cell, disk)
        // incidences into one flat buffer and sort it CSR-style.  Ties keep
        // ascending disk id, so each cell's members arrive in input order.
        incidences.clear();
        for (i, disk) in disks.iter().enumerate() {
            grid.for_each_cell_intersecting_ball(disk, |cell| {
                incidences.push((cell, i as u32));
            });
        }
        incidences.sort_unstable_by(|a, b| cmp_cells(&a.0, &b.0).then(a.1.cmp(&b.1)));

        let mut start = 0;
        while start < incidences.len() {
            let cell = incidences[start].0;
            let mut end = start;
            while end < incidences.len() && incidences[end].0 == cell {
                end += 1;
            }
            stats.cells += 1;
            let cell_box = grid.cell_aabb(&cell);
            let corners = cell_box.corners();
            // Lemma 4.3(1): only disks containing a corner of the cell can
            // contain an optimum that is 0.25-near this cell.
            surviving.clear();
            surviving.extend(
                incidences[start..end]
                    .iter()
                    .map(|&(_, i)| i)
                    .filter(|&i| corners.iter().any(|c| disks[i as usize].contains(c))),
            );
            start = end;
            if surviving.is_empty() {
                continue;
            }
            stats.surviving_disks += surviving.len();
            // Prune 1: a cell's colored depth is at most its number of
            // distinct surviving colors; if that bound cannot *strictly*
            // beat the best depth so far, the sweep could never improve it.
            color_generation += 1;
            let mut distinct_bound = 0usize;
            for &i in &surviving {
                let c = colors[i as usize];
                if color_stamp[c] != color_generation {
                    color_stamp[c] = color_generation;
                    distinct_bound += 1;
                }
            }
            if distinct_bound <= best_depth {
                stats.cells_pruned += 1;
                continue;
            }
            // Prune 2: the shifted family revisits the same dense
            // neighbourhoods; an exactly-identical surviving subset (ids are
            // sorted ascending) reproduces an earlier sweep verbatim.  The
            // membership probe borrows the slice; only genuinely new subsets
            // pay the boxed-copy insertion.
            if seen_subsets.contains(surviving.as_slice()) {
                stats.cells_deduped += 1;
                continue;
            }
            seen_subsets.insert(surviving.as_slice().into());
            sub_disks.clear();
            sub_disks.extend(surviving.iter().map(|&i| disks[i as usize]));
            sub_colors.clear();
            sub_colors.extend(surviving.iter().map(|&i| colors[i as usize]));
            let result = max_colored_depth_union_with(&sub_disks, &sub_colors, &mut scratch);
            stats.boundary_intersections += result.boundary_intersections;
            stats.grid_queries.merge(result.grid_stats);
            if result.depth > best_depth {
                best_depth = result.depth;
                best_point = result.point;
            }
        }
    }
    (best_point, best_depth, stats)
}

/// Exact colored disk MaxRS in the primal setting via the output-sensitive
/// algorithm of Theorem 4.6.
///
/// # Example
/// ```
/// use mrs_core::technique2::output_sensitive_colored_disk;
/// use mrs_geom::{ColoredSite, Point2};
///
/// let sites = vec![
///     ColoredSite::new(Point2::xy(0.0, 0.0), 0),
///     ColoredSite::new(Point2::xy(0.4, 0.0), 1),
///     ColoredSite::new(Point2::xy(0.4, 0.3), 1), // duplicate color
///     ColoredSite::new(Point2::xy(9.0, 9.0), 2),
/// ];
/// let best = output_sensitive_colored_disk(&sites, 1.0);
/// assert_eq!(best.distinct, 2);
/// ```
///
pub fn output_sensitive_colored_disk(sites: &[ColoredSite<2>], radius: f64) -> ColoredPlacement<2> {
    output_sensitive_colored_disk_with_stats(sites, radius).0
}

/// Like [`output_sensitive_colored_disk`] but also reports run statistics.
pub fn output_sensitive_colored_disk_with_stats(
    sites: &[ColoredSite<2>],
    radius: f64,
) -> (ColoredPlacement<2>, OutputSensitiveStats) {
    assert!(radius.is_finite() && radius > 0.0, "query radius must be positive");
    if sites.is_empty() {
        return (ColoredPlacement::empty(), OutputSensitiveStats::default());
    }
    let inv = 1.0 / radius;
    let disks: Vec<Ball<2>> = sites.iter().map(|s| Ball::unit(s.point.scale(inv))).collect();
    let colors: Vec<usize> = sites.iter().map(|s| s.color).collect();
    let (point, depth, stats) = max_colored_depth_output_sensitive(&disks, &colors);
    (ColoredPlacement { center: point.scale(radius), distinct: depth }, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::colored_disk2d::{colored_depth_at, exact_colored_disk};
    use rand::prelude::*;

    fn site(x: f64, y: f64, color: usize) -> ColoredSite<2> {
        ColoredSite::new(Point2::xy(x, y), color)
    }

    #[test]
    fn empty_input() {
        let (res, stats) = output_sensitive_colored_disk_with_stats(&[], 1.0);
        assert_eq!(res.distinct, 0);
        assert_eq!(stats.cells, 0);
    }

    #[test]
    fn single_site() {
        let res = output_sensitive_colored_disk(&[site(3.0, 4.0, 2)], 1.0);
        assert_eq!(res.distinct, 1);
    }

    #[test]
    fn three_colors_in_a_cluster() {
        let sites = vec![
            site(0.0, 0.0, 0),
            site(0.3, 0.2, 0),
            site(0.5, 0.0, 1),
            site(0.1, 0.6, 2),
            site(10.0, 10.0, 3),
        ];
        let res = output_sensitive_colored_disk(&sites, 1.0);
        assert_eq!(res.distinct, 3);
        assert_eq!(colored_depth_at(&sites, 1.0, &res.center), 3);
    }

    #[test]
    fn matches_candidate_enumeration_oracle_on_random_instances() {
        let mut rng = StdRng::seed_from_u64(101);
        for round in 0..20 {
            let n = rng.gen_range(2..40);
            let m = rng.gen_range(1..6usize);
            let sites: Vec<ColoredSite<2>> = (0..n)
                .map(|_| {
                    site(rng.gen_range(0.0..4.0), rng.gen_range(0.0..4.0), rng.gen_range(0..m))
                })
                .collect();
            let radius = rng.gen_range(0.5..1.5);
            let fast = output_sensitive_colored_disk(&sites, radius);
            let oracle = exact_colored_disk(&sites, radius);
            assert_eq!(
                fast.distinct, oracle.distinct,
                "round {round}: output-sensitive {} vs oracle {}",
                fast.distinct, oracle.distinct
            );
        }
    }

    #[test]
    fn deterministic_across_runs() {
        // The sort-based bucketing visits cells in a fixed order, so repeated
        // runs report the exact same optimum point (the hash-map bucketing
        // did not guarantee this under ties).
        let mut rng = StdRng::seed_from_u64(23);
        let sites: Vec<ColoredSite<2>> = (0..50)
            .map(|_| site(rng.gen_range(0.0..3.0), rng.gen_range(0.0..3.0), rng.gen_range(0..6)))
            .collect();
        let first = output_sensitive_colored_disk(&sites, 1.0);
        for _ in 0..3 {
            let again = output_sensitive_colored_disk(&sites, 1.0);
            assert_eq!(first.center, again.center);
            assert_eq!(first.distinct, again.distinct);
        }
    }

    #[test]
    fn stats_reflect_localization() {
        // Two far-apart clusters: the surviving-disk incidences stay small per
        // cell and the boundary crossing count stays near-linear.
        let mut rng = StdRng::seed_from_u64(7);
        let mut sites = Vec::new();
        for i in 0..40 {
            let base = if i % 2 == 0 { 0.0 } else { 30.0 };
            sites.push(site(base + rng.gen_range(0.0..1.5), base + rng.gen_range(0.0..1.5), i % 8));
        }
        let (res, stats) = output_sensitive_colored_disk_with_stats(&sites, 1.0);
        assert!(res.distinct >= 4);
        assert_eq!(stats.grids, 36, "s=1, Δ=0.25 family in the plane has 6² grids");
        assert!(stats.cells > 0);
        assert!(stats.surviving_disks > 0);
        assert!(stats.grid_queries.candidates > 0, "sweep work is counted");
    }

    #[test]
    fn opt_one_instances_are_cheap_in_crossings() {
        // Pairwise-disjoint color classes far apart: opt = 1, so the
        // output-sensitive crossing count must be zero.
        let sites: Vec<ColoredSite<2>> =
            (0..30).map(|i| site(10.0 * i as f64, 0.0, i % 10)).collect();
        let (res, stats) = output_sensitive_colored_disk_with_stats(&sites, 1.0);
        assert_eq!(res.distinct, 1);
        assert_eq!(stats.boundary_intersections, 0);
    }
}
