//! The exact union-boundary algorithm for colored disk MaxRS (Lemma 4.2).
//!
//! The colored problem is first transformed into an uncolored one: for each
//! color `c` the disks of that color are replaced by their union `U_c`, and
//! the goal becomes finding a point contained in the maximum number of the
//! regions `U_1, …, U_m`.  The maximum-depth face of that region arrangement
//! always has, on its closure, a point of some exposed boundary arc, so it
//! suffices to sweep every exposed arc: compute the colored depth once at the
//! arc's start, then walk its crossings with *other colors'* exposed arcs in
//! angular order, incrementing or decrementing the depth as the arc enters or
//! leaves the other color's union.  The total cost is
//! `O(n log n + Σ_arc local + k log k)` where `k` is the number of
//! boundary–boundary crossings — the same output-sensitive shape as the
//! trapezoidal-map formulation of the paper (see DESIGN.md, "Substitutions").

use mrs_geom::arcs::normalize_angle;
use mrs_geom::union_disks::{union_boundary_arcs, ExposedArc};
use mrs_geom::{Ball, ColoredSite, HashGrid, Point2};

use crate::input::ColoredPlacement;

/// An exposed arc of one color's union boundary, referencing the *global* disk
/// index that carries it (the disk's color is recovered from the global color
/// table when needed).
#[derive(Clone, Copy, Debug)]
struct ColoredArc {
    disk: usize,
    start: f64,
    end: f64,
}

impl ColoredArc {
    fn contains_angle(&self, theta: f64) -> bool {
        ExposedArc { disk: self.disk, start: self.start, end: self.end }.contains_angle(theta)
    }
}

/// Reusable distinct-color counter: a stamp array avoids clearing a hash set
/// for every evaluation.
struct ColorCounter {
    stamp: Vec<u64>,
    generation: u64,
}

impl ColorCounter {
    fn new(num_colors: usize) -> Self {
        Self { stamp: vec![0; num_colors], generation: 0 }
    }

    fn count<F: FnMut(&mut dyn FnMut(usize))>(&mut self, mut for_each_color: F) -> usize {
        self.generation += 1;
        let generation = self.generation;
        let mut distinct = 0;
        for_each_color(&mut |color| {
            if self.stamp[color] != generation {
                self.stamp[color] = generation;
                distinct += 1;
            }
        });
        distinct
    }
}

/// A crossing between the swept arc and another color's union boundary.
#[derive(Clone, Copy, Debug)]
struct CrossingEvent {
    /// Angle on the swept disk, in `[0, 2π)`.
    theta: f64,
    /// `+1` if the swept arc enters the other color's union here, `-1` if it
    /// leaves it.
    delta: i32,
}

/// Result of the dual-space exact computation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DepthResult {
    /// A point of maximum colored depth (dual coordinates).
    pub point: Point2,
    /// The maximum colored depth.
    pub depth: usize,
    /// Number of boundary–boundary crossings processed (the `k` of
    /// Lemma 4.2 / Lemma 4.5), reported for the experiments.
    pub boundary_intersections: usize,
}

/// Exact maximum colored depth for a set of disks with colors in `0..m`
/// (dual setting).  Disks may have arbitrary positive radii, although the
/// paper's setting (and the output-sensitive wrapper) uses unit disks.
///
/// # Panics
/// Panics if `disks` and `colors` have different lengths.
pub fn max_colored_depth_union(disks: &[Ball<2>], colors: &[usize]) -> DepthResult {
    assert_eq!(disks.len(), colors.len(), "one color per disk is required");
    if disks.is_empty() {
        return DepthResult { point: Point2::xy(0.0, 0.0), depth: 0, boundary_intersections: 0 };
    }
    let num_colors = colors.iter().copied().max().unwrap_or(0) + 1;
    let max_radius = disks.iter().map(|d| d.radius).fold(0.0f64, f64::max);

    // Per-color union boundaries, re-indexed to global disk ids.
    let mut by_color: Vec<Vec<usize>> = vec![Vec::new(); num_colors];
    for (i, &c) in colors.iter().enumerate() {
        by_color[c].push(i);
    }
    let mut arcs_by_disk: Vec<Vec<ColoredArc>> = vec![Vec::new(); disks.len()];
    for members in by_color.iter() {
        if members.is_empty() {
            continue;
        }
        let subset: Vec<Ball<2>> = members.iter().map(|&i| disks[i]).collect();
        for arc in union_boundary_arcs(&subset) {
            let global = members[arc.disk];
            arcs_by_disk[global].push(ColoredArc { disk: global, start: arc.start, end: arc.end });
        }
    }

    // Global neighbour index over disk centers, used for crossing generation
    // and for the per-arc initial depth evaluation.
    let centers: Vec<Point2> = disks.iter().map(|d| d.center).collect();
    let index = HashGrid::build((2.0 * max_radius).max(1e-6), &centers);
    let mut counter = ColorCounter::new(num_colors);

    // Colored depth at an arbitrary point (full neighbourhood query).
    let depth_at = |p: &Point2, counter: &mut ColorCounter| -> usize {
        counter.count(|visit| {
            index.for_each_within(p, max_radius * (1.0 + 1e-12), |j| {
                if disks[j].contains(p) {
                    visit(colors[j]);
                }
            });
        })
    };

    let mut best_point = disks[0].center;
    let mut best_depth = 0usize;
    let mut boundary_intersections = 0usize;

    // Sweep every disk that carries at least one exposed arc.
    let mut events_by_arc: Vec<Vec<CrossingEvent>> = Vec::new();
    for i in 0..disks.len() {
        if arcs_by_disk[i].is_empty() {
            continue;
        }
        let di = &disks[i];
        events_by_arc.clear();
        events_by_arc.resize(arcs_by_disk[i].len(), Vec::new());

        // Crossings of ∂D_i with exposed arcs of *other colors*.  Rather than
        // classifying intersection points by a derivative sign (fragile near
        // tangencies), use the covered angular interval directly: ∂D_i enters
        // disk j at the interval's start angle and leaves it at its end angle.
        index.for_each_within(&di.center, di.radius + max_radius, |j| {
            if j == i || arcs_by_disk[j].is_empty() || colors[i] == colors[j] {
                return;
            }
            let dj = &disks[j];
            let mut push_event = |theta_i: f64, delta: i32| {
                // The crossing only changes membership in the other color's
                // union if the crossing point lies on that union's boundary
                // (i.e. on one of disk j's exposed arcs).
                let p = di.center.polar_offset(di.radius, theta_i);
                let theta_j = dj.center.angle_to(&p);
                if !arcs_by_disk[j].iter().any(|a| a.contains_angle(theta_j)) {
                    return;
                }
                for (arc_idx, arc) in arcs_by_disk[i].iter().enumerate() {
                    if arc.contains_angle(theta_i) {
                        events_by_arc[arc_idx].push(CrossingEvent { theta: theta_i, delta });
                    }
                }
            };
            let d = di.center.dist(&dj.center);
            if (d - (di.radius + dj.radius)).abs() <= 1e-9 {
                // External tangency: a single touch point where the depth rises
                // by one for a moment; emit an enter/leave pair at that angle.
                let theta = normalize_angle(di.center.angle_to(&dj.center));
                push_event(theta, 1);
                push_event(theta, -1);
                return;
            }
            let Some(interval) = mrs_geom::arcs::boundary_covered_by(di, dj) else {
                return;
            };
            if interval.width >= mrs_geom::TAU - 1e-12 {
                // Disk j covers all of ∂D_i: constant membership, no events.
                return;
            }
            push_event(normalize_angle(interval.start), 1);
            push_event(normalize_angle(interval.start + interval.width), -1);
        });

        for (arc_idx, arc) in arcs_by_disk[i].iter().enumerate() {
            let events = &mut events_by_arc[arc_idx];
            boundary_intersections += events.len();
            let start_point = di.center.polar_offset(di.radius, arc.start);
            let closed_at_start = depth_at(&start_point, &mut counter);
            if closed_at_start > best_depth {
                best_depth = closed_at_start;
                best_point = start_point;
            }
            if events.is_empty() {
                continue;
            }
            // Clamp event angles into the arc range and sort; at equal angles
            // apply "enter" before "leave" so the closed depth at the crossing
            // itself is observed.
            for e in events.iter_mut() {
                if e.theta < arc.start {
                    e.theta = arc.start;
                }
                if e.theta > arc.end {
                    e.theta = arc.end;
                }
            }
            events
                .sort_by(|a, b| a.theta.partial_cmp(&b.theta).unwrap().then(b.delta.cmp(&a.delta)));
            // Unions entered exactly at the start angle are already included in
            // the closed depth of the start point; discount them so applying
            // their "+1" events does not double-count.
            let entered_at_start =
                events.iter().filter(|e| e.delta > 0 && e.theta <= arc.start + 1e-9).count();
            let mut running = closed_at_start as i64 - entered_at_start as i64;
            for e in events.iter() {
                running += e.delta as i64;
                if running > 0 && running as usize > best_depth {
                    best_depth = running as usize;
                    best_point = di.center.polar_offset(di.radius, e.theta);
                }
            }
        }
    }

    // Degenerate fallback (e.g. every disk swallowed in ties): disk centers are
    // always safe candidates.
    if best_depth == 0 {
        for d in disks {
            let depth = depth_at(&d.center, &mut counter);
            if depth > best_depth {
                best_depth = depth;
                best_point = d.center;
            }
        }
    }

    DepthResult { point: best_point, depth: best_depth, boundary_intersections }
}

/// Exact colored disk MaxRS in the primal setting via the union-boundary
/// algorithm: returns where to center a disk of radius `radius` to cover the
/// maximum number of distinct colors.
pub fn exact_colored_disk_by_union(sites: &[ColoredSite<2>], radius: f64) -> ColoredPlacement<2> {
    assert!(radius.is_finite() && radius > 0.0, "query radius must be positive");
    if sites.is_empty() {
        return ColoredPlacement::empty();
    }
    let inv = 1.0 / radius;
    let disks: Vec<Ball<2>> = sites.iter().map(|s| Ball::unit(s.point.scale(inv))).collect();
    let colors: Vec<usize> = sites.iter().map(|s| s.color).collect();
    let result = max_colored_depth_union(&disks, &colors);
    ColoredPlacement { center: result.point.scale(radius), distinct: result.depth }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::colored_disk2d::{colored_depth_at, exact_colored_disk};
    use rand::prelude::*;

    fn site(x: f64, y: f64, color: usize) -> ColoredSite<2> {
        ColoredSite::new(Point2::xy(x, y), color)
    }

    #[test]
    fn empty_input() {
        assert_eq!(max_colored_depth_union(&[], &[]).depth, 0);
        assert_eq!(exact_colored_disk_by_union(&[], 1.0).distinct, 0);
    }

    #[test]
    fn single_disk() {
        let res = max_colored_depth_union(&[Ball::unit(Point2::xy(0.0, 0.0))], &[0]);
        assert_eq!(res.depth, 1);
    }

    #[test]
    fn two_disks_of_different_colors() {
        let disks = vec![Ball::unit(Point2::xy(0.0, 0.0)), Ball::unit(Point2::xy(1.2, 0.0))];
        let res = max_colored_depth_union(&disks, &[0, 1]);
        assert_eq!(res.depth, 2);
        // The reported point must genuinely lie in both disks.
        assert!(disks[0].contains(&res.point) && disks[1].contains(&res.point));
    }

    #[test]
    fn three_colors_in_a_cluster() {
        let sites = vec![
            site(0.0, 0.0, 0),
            site(0.3, 0.2, 0),
            site(0.5, 0.0, 1),
            site(0.1, 0.6, 2),
            site(10.0, 10.0, 3),
        ];
        let res = exact_colored_disk_by_union(&sites, 1.0);
        assert_eq!(res.distinct, 3);
        assert_eq!(colored_depth_at(&sites, 1.0, &res.center), 3);
    }

    #[test]
    fn duplicate_colors_collapse_via_union() {
        // Many disks of the same color stacked on top of each other plus one
        // disk of a second color: depth is 2, not 1 + duplicates.
        let sites = vec![
            site(0.0, 0.0, 0),
            site(0.01, 0.0, 0),
            site(0.02, 0.0, 0),
            site(0.03, 0.0, 0),
            site(0.5, 0.0, 1),
        ];
        let res = exact_colored_disk_by_union(&sites, 1.0);
        assert_eq!(res.distinct, 2);
    }

    #[test]
    fn deep_overlap_of_many_colors_in_one_spot() {
        // Every color has several disks piled into one tiny cluster, so the
        // optimum equals the number of colors and the sweep must track the
        // incremental depth correctly through many same-angle-ish crossings.
        let mut rng = StdRng::seed_from_u64(55);
        let mut sites = Vec::new();
        for color in 0..30usize {
            for _ in 0..4 {
                sites.push(site(rng.gen_range(0.0..0.6), rng.gen_range(0.0..0.6), color));
            }
        }
        let res = exact_colored_disk_by_union(&sites, 1.0);
        assert_eq!(res.distinct, 30);
    }

    #[test]
    fn matches_candidate_enumeration_oracle_on_random_instances() {
        let mut rng = StdRng::seed_from_u64(99);
        for round in 0..40 {
            let n = rng.gen_range(2..45);
            let m = rng.gen_range(1..7usize);
            let sites: Vec<ColoredSite<2>> = (0..n)
                .map(|_| {
                    site(rng.gen_range(0.0..5.0), rng.gen_range(0.0..5.0), rng.gen_range(0..m))
                })
                .collect();
            let union = exact_colored_disk_by_union(&sites, 1.0);
            let oracle = exact_colored_disk(&sites, 1.0);
            assert_eq!(
                union.distinct, oracle.distinct,
                "round {round}: union {} vs oracle {}",
                union.distinct, oracle.distinct
            );
            assert_eq!(colored_depth_at(&sites, 1.0 + 1e-9, &union.center), union.distinct);
        }
    }

    #[test]
    fn matches_oracle_on_dense_instances() {
        let mut rng = StdRng::seed_from_u64(7);
        for round in 0..10 {
            let m = rng.gen_range(2..10usize);
            let sites: Vec<ColoredSite<2>> = (0..60)
                .map(|_| {
                    site(rng.gen_range(0.0..1.5), rng.gen_range(0.0..1.5), rng.gen_range(0..m))
                })
                .collect();
            let union = exact_colored_disk_by_union(&sites, 1.0);
            let oracle = exact_colored_disk(&sites, 1.0);
            assert_eq!(union.distinct, oracle.distinct, "round {round}");
        }
    }

    #[test]
    fn non_unit_radius_is_scaled_correctly() {
        let sites = vec![site(0.0, 0.0, 0), site(3.0, 0.0, 1), site(6.0, 0.0, 2)];
        // Radius 1 covers a single site; radius 3 covers all three (centered on
        // the middle site).
        assert_eq!(exact_colored_disk_by_union(&sites, 1.0).distinct, 1);
        assert_eq!(exact_colored_disk_by_union(&sites, 3.0).distinct, 3);
    }

    #[test]
    fn reports_boundary_intersection_counts() {
        let mut rng = StdRng::seed_from_u64(3);
        let disks: Vec<Ball<2>> = (0..60)
            .map(|_| Ball::unit(Point2::xy(rng.gen_range(0.0..6.0), rng.gen_range(0.0..6.0))))
            .collect();
        let colors: Vec<usize> = (0..60).map(|i| i % 5).collect();
        let res = max_colored_depth_union(&disks, &colors);
        assert!(res.depth >= 1);
        // Lemma 4.5-style sanity: the crossing count stays well below the
        // trivial O(n²) bound for a spread-out instance.
        assert!(res.boundary_intersections < 60 * 60);
    }
}
