//! The exact union-boundary algorithm for colored disk MaxRS (Lemma 4.2).
//!
//! The colored problem is first transformed into an uncolored one: for each
//! color `c` the disks of that color are replaced by their union `U_c`, and
//! the goal becomes finding a point contained in the maximum number of the
//! regions `U_1, …, U_m`.  The maximum-depth face of that region arrangement
//! always has, on its closure, a point of some exposed boundary arc, so it
//! suffices to sweep every exposed arc: compute the colored depth once at the
//! arc's start, then walk its crossings with *other colors'* exposed arcs in
//! angular order, incrementing or decrementing the depth as the arc enters or
//! leaves the other color's union.  The total cost is
//! `O(n log n + Σ_arc local + k log k)` where `k` is the number of
//! boundary–boundary crossings — the same output-sensitive shape as the
//! trapezoidal-map formulation of the paper (see DESIGN.md, "Substitutions").
//!
//! ## Hot-path layout
//!
//! The output-sensitive wrapper (Theorem 4.6) calls this routine once per
//! non-empty grid cell — thousands of small invocations per query — so every
//! buffer the sweep needs lives in a caller-owned [`UnionScratch`] that is
//! reused across calls: the exposed-arc pools, the per-arc crossing-event
//! pools, and the color-stamp array of the depth counter.  Exposed arcs are
//! computed against one *global* CSR center index (filtering neighbours by
//! color) instead of building a per-color `HashGrid` per call.

use mrs_geom::arcs::{boundary_covered_by, complement_on_circle, normalize_angle, AngularInterval};
use mrs_geom::union_disks::ExposedArc;
use mrs_geom::{Ball, ColoredSite, GridQueryStats, HashGrid, Point2, TAU};

use crate::engine::cancel;
use crate::input::ColoredPlacement;

/// An exposed arc of one color's union boundary, referencing the *global* disk
/// index that carries it (the disk's color is recovered from the global color
/// table when needed).
#[derive(Clone, Copy, Debug)]
struct ColoredArc {
    disk: usize,
    start: f64,
    end: f64,
}

impl ColoredArc {
    fn contains_angle(&self, theta: f64) -> bool {
        ExposedArc { disk: self.disk, start: self.start, end: self.end }.contains_angle(theta)
    }
}

/// A crossing between the swept arc and another color's union boundary.
#[derive(Clone, Copy, Debug)]
struct CrossingEvent {
    /// Angle on the swept disk, in `[0, 2π)`.
    theta: f64,
    /// `+1` if the swept arc enters the other color's union here, `-1` if it
    /// leaves it.
    delta: i32,
}

/// Reusable buffers of the union sweep.  Create one per thread, pass it to
/// every [`max_colored_depth_union_with`] call; capacities then stabilize at
/// the densest instance and the sweep stops allocating.
#[derive(Debug, Default)]
pub struct UnionScratch {
    /// Exposed arcs per global disk id (outer vec pooled, inner vecs keep
    /// their capacity across calls).
    arcs_by_disk: Vec<Vec<ColoredArc>>,
    /// Prefix offsets of the global arc numbering: disk `i`'s arcs occupy
    /// `arc_starts[i]..arc_starts[i + 1]` of `events_by_arc`.
    arc_starts: Vec<u32>,
    /// Crossing events per *global* arc id (pooled across calls).
    events_by_arc: Vec<Vec<CrossingEvent>>,
    /// Same-color covering intervals of the currently processed disk.
    covering: Vec<AngularInterval>,
    /// Disk centers, rebuilt per call (the CSR grid borrows them only during
    /// `build`).
    centers: Vec<Point2>,
    /// Color stamp array of the distinct-color counter.
    stamp: Vec<u64>,
    generation: u64,
}

impl UnionScratch {
    /// Counts distinct colors over the visitation closure using the stamp
    /// array (no per-call set allocation).
    fn count_distinct<F: FnMut(&mut dyn FnMut(usize))>(&mut self, mut for_each_color: F) -> usize {
        self.generation += 1;
        let generation = self.generation;
        let stamp = &mut self.stamp;
        let mut distinct = 0;
        // Branch-free stamp update: unconditional store, counted via the
        // comparison bit (the hot depth queries call this per candidate).
        for_each_color(&mut |color| {
            let is_new = usize::from(stamp[color] != generation);
            stamp[color] = generation;
            distinct += is_new;
        });
        distinct
    }

    /// Clears the first `n` arc pools (keeping capacity) and grows the pool
    /// list to `n` entries.
    fn reset_arc_pools(&mut self, n: usize) {
        for pool in self.arcs_by_disk.iter_mut().take(n) {
            pool.clear();
        }
        if self.arcs_by_disk.len() < n {
            self.arcs_by_disk.resize_with(n, Vec::new);
        }
    }
}

/// Result of the dual-space exact computation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DepthResult {
    /// A point of maximum colored depth (dual coordinates).
    pub point: Point2,
    /// The maximum colored depth.
    pub depth: usize,
    /// Number of boundary–boundary crossings processed (the `k` of
    /// Lemma 4.2 / Lemma 4.5), reported for the experiments.
    pub boundary_intersections: usize,
    /// Grid-query work counters accumulated over the sweep.
    pub grid_stats: GridQueryStats,
}

/// Exact maximum colored depth for a set of disks with colors in `0..m`
/// (dual setting).  Disks may have arbitrary positive radii, although the
/// paper's setting (and the output-sensitive wrapper) uses unit disks.
///
/// Convenience wrapper over [`max_colored_depth_union_with`] with a fresh
/// scratch; batch callers keep one scratch per thread instead.
///
/// # Panics
/// Panics if `disks` and `colors` have different lengths.
pub fn max_colored_depth_union(disks: &[Ball<2>], colors: &[usize]) -> DepthResult {
    let mut scratch = UnionScratch::default();
    max_colored_depth_union_with(disks, colors, &mut scratch)
}

/// The allocation-free form of [`max_colored_depth_union`]: every buffer the
/// sweep needs lives in the caller-owned scratch.
///
/// # Panics
/// Panics if `disks` and `colors` have different lengths.
pub fn max_colored_depth_union_with(
    disks: &[Ball<2>],
    colors: &[usize],
    scratch: &mut UnionScratch,
) -> DepthResult {
    assert_eq!(disks.len(), colors.len(), "one color per disk is required");
    let mut grid_stats = GridQueryStats::default();
    if disks.is_empty() {
        return DepthResult {
            point: Point2::xy(0.0, 0.0),
            depth: 0,
            boundary_intersections: 0,
            grid_stats,
        };
    }
    let num_colors = colors.iter().copied().max().unwrap_or(0) + 1;
    if scratch.stamp.len() < num_colors {
        scratch.stamp.resize(num_colors, 0);
    }
    let max_radius = disks.iter().map(|d| d.radius).fold(0.0f64, f64::max);

    // One global CSR index over every disk center; per-color neighbourhoods
    // come from filtering by color, so no per-color grid is ever built.
    scratch.centers.clear();
    scratch.centers.extend(disks.iter().map(|d| d.center));
    let index = HashGrid::build((2.0 * max_radius).max(1e-6), &scratch.centers);

    // Exposed arcs of each color's union, re-indexed by the global disk id:
    // subtract the angular intervals covered by same-color neighbours from
    // each disk's full circle; what remains is on that color's `∂U`.
    scratch.reset_arc_pools(disks.len());
    for (i, disk) in disks.iter().enumerate() {
        if cancel::poll(i) {
            break;
        }
        scratch.covering.clear();
        let covering = &mut scratch.covering;
        let mut swallowed = false;
        grid_stats.merge(index.for_each_within(&disk.center, disk.radius + max_radius, |j| {
            if j == i || colors[j] != colors[i] || swallowed {
                return;
            }
            match boundary_covered_by(disk, &disks[j]) {
                Some(iv) if iv.width >= TAU - 1e-12 => {
                    // Another same-color disk contains this one entirely; but
                    // two coincident disks would both vanish, so keep the one
                    // with the smaller index in that exact-tie case.
                    let other = &disks[j];
                    let coincident = (other.radius - disk.radius).abs() < 1e-12
                        && other.center.dist(&disk.center) < 1e-12;
                    if !coincident || j < i {
                        swallowed = true;
                    }
                }
                Some(iv) => covering.push(iv),
                None => {}
            }
        }));
        if swallowed {
            continue;
        }
        for (start, end) in complement_on_circle(&scratch.covering) {
            if end - start > 1e-12 {
                scratch.arcs_by_disk[i].push(ColoredArc { disk: i, start, end });
            }
        }
    }

    // Crossing events, one pass per *unordered* pair: the two intersection
    // points of ∂D_i and ∂D_j are shared by both sweeps, so the pair's
    // geometry (one center angle, the acos half-widths) is computed once and
    // the four crossing angles fall out analytically — where the old
    // per-swept-disk formulation paid `atan2 + acos` per direction plus a
    // `sin/cos + atan2` round trip per event endpoint to recover the angle
    // on the other circle.  Rather than classifying intersection points by a
    // derivative sign (fragile near tangencies), the covered angular
    // interval is used directly: ∂D_i enters disk j at the interval's start
    // angle and leaves it at its end angle.
    scratch.arc_starts.clear();
    scratch.arc_starts.push(0);
    let mut total_arcs = 0u32;
    for arcs in scratch.arcs_by_disk.iter().take(disks.len()) {
        total_arcs += arcs.len() as u32;
        scratch.arc_starts.push(total_arcs);
    }
    for pool in scratch.events_by_arc.iter_mut().take(total_arcs as usize) {
        pool.clear();
    }
    if scratch.events_by_arc.len() < total_arcs as usize {
        scratch.events_by_arc.resize_with(total_arcs as usize, Vec::new);
    }
    {
        let arcs_by_disk = &scratch.arcs_by_disk;
        let arc_starts = &scratch.arc_starts;
        let events_by_arc = &mut scratch.events_by_arc;
        for i in 0..disks.len() {
            if cancel::poll(i) {
                break;
            }
            if arcs_by_disk[i].is_empty() {
                continue;
            }
            let di = &disks[i];
            grid_stats.merge(index.for_each_within(&di.center, di.radius + max_radius, |j| {
                // Each unordered pair once, from its lower index (any pair
                // with overlapping boundaries is within either disk's query
                // radius, so enumerating from the lower side misses none).
                if j <= i || arcs_by_disk[j].is_empty() || colors[i] == colors[j] {
                    return;
                }
                pair_crossing_events(disks, i, j, arcs_by_disk, arc_starts, events_by_arc);
            }));
        }
    }

    let mut best_point = disks[0].center;
    let mut best_depth = 0usize;
    let mut boundary_intersections = 0usize;

    // Sweep every arc: closed depth at the arc start, then walk the sorted
    // crossings, tracking the running depth.
    for i in 0..disks.len() {
        if cancel::poll(i) {
            break;
        }
        if scratch.arcs_by_disk[i].is_empty() {
            continue;
        }
        let di = &disks[i];
        let first_arc = scratch.arc_starts[i] as usize;
        for arc_idx in 0..scratch.arcs_by_disk[i].len() {
            let arc = scratch.arcs_by_disk[i][arc_idx];
            boundary_intersections += scratch.events_by_arc[first_arc + arc_idx].len();
            let start_point = di.center.polar_offset(di.radius, arc.start);
            let closed_at_start =
                depth_at(disks, colors, &index, max_radius, &start_point, scratch, &mut grid_stats);
            if closed_at_start > best_depth {
                best_depth = closed_at_start;
                best_point = start_point;
            }
            let events = &mut scratch.events_by_arc[first_arc + arc_idx];
            if events.is_empty() {
                continue;
            }
            // Clamp event angles into the arc range and sort; at equal angles
            // apply "enter" before "leave" so the closed depth at the crossing
            // itself is observed.
            for e in events.iter_mut() {
                if e.theta < arc.start {
                    e.theta = arc.start;
                }
                if e.theta > arc.end {
                    e.theta = arc.end;
                }
            }
            events.sort_unstable_by(|a, b| {
                a.theta.partial_cmp(&b.theta).unwrap().then(b.delta.cmp(&a.delta))
            });
            // Unions entered exactly at the start angle are already included in
            // the closed depth of the start point; discount them so applying
            // their "+1" events does not double-count.
            let entered_at_start =
                events.iter().filter(|e| e.delta > 0 && e.theta <= arc.start + 1e-9).count();
            let num_events = events.len();
            let mut running = closed_at_start as i64 - entered_at_start as i64;
            for k in 0..num_events {
                let e = scratch.events_by_arc[first_arc + arc_idx][k];
                running += e.delta as i64;
                if running > 0 && running as usize > best_depth {
                    // The incremental counter can over-credit a crossing whose
                    // floating-point position drifted off one of the counted
                    // disks (boundary-exact inputs hit this), so a candidate
                    // only wins with its *recounted* closed depth — the
                    // reported point then always survives re-certification.
                    let p = di.center.polar_offset(di.radius, e.theta);
                    let depth =
                        depth_at(disks, colors, &index, max_radius, &p, scratch, &mut grid_stats);
                    if depth > best_depth {
                        best_depth = depth;
                        best_point = p;
                    }
                }
            }
        }
    }

    // Degenerate fallback (e.g. every disk swallowed in ties): disk centers are
    // always safe candidates.
    if best_depth == 0 {
        for d in disks {
            let depth =
                depth_at(disks, colors, &index, max_radius, &d.center, scratch, &mut grid_stats);
            if depth > best_depth {
                best_depth = depth;
                best_point = d.center;
            }
        }
    }

    DepthResult { point: best_point, depth: best_depth, boundary_intersections, grid_stats }
}

/// The angle of the vector `-v` given `atan2(v) = theta` in `(-π, π]` — one
/// add instead of a second `atan2`.
#[inline]
pub(crate) fn opposite_angle(theta: f64) -> f64 {
    if theta > 0.0 {
        theta - std::f64::consts::PI
    } else {
        theta + std::f64::consts::PI
    }
}

/// The half-width of the angular interval of `∂(center_a, ra)` covered by
/// the disk `(center_b, rb)` at center distance `d` (law of cosines).
#[inline]
fn half_cover_angle(d: f64, ra: f64, rb: f64) -> f64 {
    let cos_half = (d * d + ra * ra - rb * rb) / (2.0 * d * ra);
    cos_half.clamp(-1.0, 1.0).acos()
}

#[inline]
fn contains_any(arcs: &[ColoredArc], theta: f64) -> bool {
    arcs.iter().any(|a| a.contains_angle(theta))
}

/// Emits the crossing events of the unordered pair `(i, j)` — different
/// colors, both with exposed arcs — to both disks' per-arc event pools.
///
/// The two intersection points of the boundaries are shared: the point at
/// angle `c_i - h_i` on circle `i` is the point at `c_j + h_j` on circle `j`
/// and vice versa (`c` the center angles, `h` the covered half-widths), so
/// one `atan2` and the acos half-widths determine all four crossing angles.
/// A crossing only changes membership in the other color's union if it lies
/// on that union's *exposed* boundary, so each event is gated on the
/// crossing angle landing on one of the other disk's arcs.
fn pair_crossing_events(
    disks: &[Ball<2>],
    i: usize,
    j: usize,
    arcs_by_disk: &[Vec<ColoredArc>],
    arc_starts: &[u32],
    events_by_arc: &mut [Vec<CrossingEvent>],
) {
    let di = &disks[i];
    let dj = &disks[j];
    let d = di.center.dist(&dj.center);
    let mut push = |s: usize, theta: f64, delta: i32| {
        for (arc_idx, arc) in arcs_by_disk[s].iter().enumerate() {
            if arc.contains_angle(theta) {
                events_by_arc[arc_starts[s] as usize + arc_idx]
                    .push(CrossingEvent { theta, delta });
            }
        }
    };
    if (d - (di.radius + dj.radius)).abs() <= 1e-9 {
        // External tangency: a single touch point where the depth rises by
        // one for a moment; emit an enter/leave pair at that angle on each
        // side whose touch point lies on the other side's exposed boundary.
        let c_i = di.center.angle_to(&dj.center);
        let theta_i = normalize_angle(c_i);
        let theta_j = normalize_angle(opposite_angle(c_i));
        if contains_any(&arcs_by_disk[j], theta_j) {
            push(i, theta_i, 1);
            push(i, theta_i, -1);
        }
        if contains_any(&arcs_by_disk[i], theta_i) {
            push(j, theta_j, 1);
            push(j, theta_j, -1);
        }
        return;
    }
    if d >= di.radius + dj.radius || d + di.radius <= dj.radius || d + dj.radius <= di.radius {
        // Disjoint (the query radius over-approximates) or nested: either
        // way one boundary never properly crosses the other, no events.
        return;
    }
    let c_i = di.center.angle_to(&dj.center);
    let c_j = opposite_angle(c_i);
    let h_i = half_cover_angle(d, di.radius, dj.radius);
    let h_j = if di.radius == dj.radius { h_i } else { half_cover_angle(d, dj.radius, di.radius) };
    // Entering angle and leaving angle of the covered interval on each
    // circle; `enter` on one circle is the same point as `leave` on the
    // other.
    let i_enter = normalize_angle(c_i - h_i);
    let i_leave = normalize_angle(c_i + h_i);
    let j_enter = normalize_angle(c_j - h_j);
    let j_leave = normalize_angle(c_j + h_j);
    // Degenerate grazing (half ≈ 0) or full cover (half ≈ π) yields no
    // membership change — mirrors the old per-direction interval filter.
    if h_i > 1e-12 && 2.0 * h_i < TAU - 1e-12 {
        if contains_any(&arcs_by_disk[j], j_leave) {
            push(i, i_enter, 1);
        }
        if contains_any(&arcs_by_disk[j], j_enter) {
            push(i, i_leave, -1);
        }
    }
    if h_j > 1e-12 && 2.0 * h_j < TAU - 1e-12 {
        if contains_any(&arcs_by_disk[i], i_leave) {
            push(j, j_enter, 1);
        }
        if contains_any(&arcs_by_disk[i], i_enter) {
            push(j, j_leave, -1);
        }
    }
}

/// Colored depth at an arbitrary point (full neighbourhood query through the
/// global index, distinct colors counted with the scratch's stamp array).
fn depth_at(
    disks: &[Ball<2>],
    colors: &[usize],
    index: &HashGrid<2>,
    max_radius: f64,
    p: &Point2,
    scratch: &mut UnionScratch,
    grid_stats: &mut GridQueryStats,
) -> usize {
    let mut local = GridQueryStats::default();
    let depth = scratch.count_distinct(|visit| {
        local = index.for_each_within(p, max_radius * (1.0 + 1e-12), |j| {
            if disks[j].contains(p) {
                visit(colors[j]);
            }
        });
    });
    grid_stats.merge(local);
    depth
}

/// Exact colored disk MaxRS in the primal setting via the union-boundary
/// algorithm: returns where to center a disk of radius `radius` to cover the
/// maximum number of distinct colors.
pub fn exact_colored_disk_by_union(sites: &[ColoredSite<2>], radius: f64) -> ColoredPlacement<2> {
    assert!(radius.is_finite() && radius > 0.0, "query radius must be positive");
    if sites.is_empty() {
        return ColoredPlacement::empty();
    }
    let inv = 1.0 / radius;
    let disks: Vec<Ball<2>> = sites.iter().map(|s| Ball::unit(s.point.scale(inv))).collect();
    let colors: Vec<usize> = sites.iter().map(|s| s.color).collect();
    let result = max_colored_depth_union(&disks, &colors);
    ColoredPlacement { center: result.point.scale(radius), distinct: result.depth }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::colored_disk2d::{colored_depth_at, exact_colored_disk};
    use rand::prelude::*;

    fn site(x: f64, y: f64, color: usize) -> ColoredSite<2> {
        ColoredSite::new(Point2::xy(x, y), color)
    }

    #[test]
    fn empty_input() {
        assert_eq!(max_colored_depth_union(&[], &[]).depth, 0);
        assert_eq!(exact_colored_disk_by_union(&[], 1.0).distinct, 0);
    }

    #[test]
    fn single_disk() {
        let res = max_colored_depth_union(&[Ball::unit(Point2::xy(0.0, 0.0))], &[0]);
        assert_eq!(res.depth, 1);
    }

    #[test]
    fn two_disks_of_different_colors() {
        let disks = vec![Ball::unit(Point2::xy(0.0, 0.0)), Ball::unit(Point2::xy(1.2, 0.0))];
        let res = max_colored_depth_union(&disks, &[0, 1]);
        assert_eq!(res.depth, 2);
        // The reported point must genuinely lie in both disks.
        assert!(disks[0].contains(&res.point) && disks[1].contains(&res.point));
        // The sweep went through the grid, so work was counted.
        assert!(res.grid_stats.candidates > 0);
    }

    #[test]
    fn three_colors_in_a_cluster() {
        let sites = vec![
            site(0.0, 0.0, 0),
            site(0.3, 0.2, 0),
            site(0.5, 0.0, 1),
            site(0.1, 0.6, 2),
            site(10.0, 10.0, 3),
        ];
        let res = exact_colored_disk_by_union(&sites, 1.0);
        assert_eq!(res.distinct, 3);
        assert_eq!(colored_depth_at(&sites, 1.0, &res.center), 3);
    }

    #[test]
    fn duplicate_colors_collapse_via_union() {
        // Many disks of the same color stacked on top of each other plus one
        // disk of a second color: depth is 2, not 1 + duplicates.
        let sites = vec![
            site(0.0, 0.0, 0),
            site(0.01, 0.0, 0),
            site(0.02, 0.0, 0),
            site(0.03, 0.0, 0),
            site(0.5, 0.0, 1),
        ];
        let res = exact_colored_disk_by_union(&sites, 1.0);
        assert_eq!(res.distinct, 2);
    }

    #[test]
    fn deep_overlap_of_many_colors_in_one_spot() {
        // Every color has several disks piled into one tiny cluster, so the
        // optimum equals the number of colors and the sweep must track the
        // incremental depth correctly through many same-angle-ish crossings.
        let mut rng = StdRng::seed_from_u64(55);
        let mut sites = Vec::new();
        for color in 0..30usize {
            for _ in 0..4 {
                sites.push(site(rng.gen_range(0.0..0.6), rng.gen_range(0.0..0.6), color));
            }
        }
        let res = exact_colored_disk_by_union(&sites, 1.0);
        assert_eq!(res.distinct, 30);
    }

    #[test]
    fn scratch_reuse_across_calls_is_stable() {
        // The same scratch must serve instances of different sizes and color
        // counts without contaminating later calls.
        let mut rng = StdRng::seed_from_u64(17);
        let mut scratch = UnionScratch::default();
        for round in 0..25 {
            let n = rng.gen_range(1..40);
            let m = rng.gen_range(1..8usize);
            let disks: Vec<Ball<2>> = (0..n)
                .map(|_| Ball::unit(Point2::xy(rng.gen_range(0.0..4.0), rng.gen_range(0.0..4.0))))
                .collect();
            let colors: Vec<usize> = (0..n).map(|_| rng.gen_range(0..m)).collect();
            let pooled = max_colored_depth_union_with(&disks, &colors, &mut scratch);
            let fresh = max_colored_depth_union(&disks, &colors);
            assert_eq!(pooled.depth, fresh.depth, "round {round}");
            assert_eq!(pooled.point, fresh.point, "round {round}");
        }
    }

    #[test]
    fn matches_candidate_enumeration_oracle_on_random_instances() {
        let mut rng = StdRng::seed_from_u64(99);
        for round in 0..40 {
            let n = rng.gen_range(2..45);
            let m = rng.gen_range(1..7usize);
            let sites: Vec<ColoredSite<2>> = (0..n)
                .map(|_| {
                    site(rng.gen_range(0.0..5.0), rng.gen_range(0.0..5.0), rng.gen_range(0..m))
                })
                .collect();
            let union = exact_colored_disk_by_union(&sites, 1.0);
            let oracle = exact_colored_disk(&sites, 1.0);
            assert_eq!(
                union.distinct, oracle.distinct,
                "round {round}: union {} vs oracle {}",
                union.distinct, oracle.distinct
            );
            assert_eq!(colored_depth_at(&sites, 1.0 + 1e-9, &union.center), union.distinct);
        }
    }

    #[test]
    fn matches_oracle_on_dense_instances() {
        let mut rng = StdRng::seed_from_u64(7);
        for round in 0..10 {
            let m = rng.gen_range(2..10usize);
            let sites: Vec<ColoredSite<2>> = (0..60)
                .map(|_| {
                    site(rng.gen_range(0.0..1.5), rng.gen_range(0.0..1.5), rng.gen_range(0..m))
                })
                .collect();
            let union = exact_colored_disk_by_union(&sites, 1.0);
            let oracle = exact_colored_disk(&sites, 1.0);
            assert_eq!(union.distinct, oracle.distinct, "round {round}");
        }
    }

    #[test]
    fn non_unit_radius_is_scaled_correctly() {
        let sites = vec![site(0.0, 0.0, 0), site(3.0, 0.0, 1), site(6.0, 0.0, 2)];
        // Radius 1 covers a single site; radius 3 covers all three (centered on
        // the middle site).
        assert_eq!(exact_colored_disk_by_union(&sites, 1.0).distinct, 1);
        assert_eq!(exact_colored_disk_by_union(&sites, 3.0).distinct, 3);
    }

    #[test]
    fn reports_boundary_intersection_counts() {
        let mut rng = StdRng::seed_from_u64(3);
        let disks: Vec<Ball<2>> = (0..60)
            .map(|_| Ball::unit(Point2::xy(rng.gen_range(0.0..6.0), rng.gen_range(0.0..6.0))))
            .collect();
        let colors: Vec<usize> = (0..60).map(|i| i % 5).collect();
        let res = max_colored_depth_union(&disks, &colors);
        assert!(res.depth >= 1);
        // Lemma 4.5-style sanity: the crossing count stays well below the
        // trivial O(n²) bound for a spread-out instance.
        assert!(res.boundary_intersections < 60 * 60);
    }
}
