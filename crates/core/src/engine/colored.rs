//! Built-in [`ColoredSolver`] implementations wrapping the colored MaxRS
//! entry points: candidate enumeration, the Lemma 4.2 union-boundary
//! algorithm, the output-sensitive algorithm of Theorem 4.6, the Technique 1
//! colored sampler (Theorem 1.5), the color-sampling `(1 − ε)` scheme
//! (Theorem 1.6), and the exact colored rectangle sweep.

use std::time::Instant;

use super::convert::{repack_colored_placement, repack_point, repack_sites};
use super::descriptor::{
    BatchCapability, DimSupport, GuaranteeClass, ProblemKind, ShapeClass, SolverDescriptor,
};
use super::index::SharedIndex;
use super::instance::{ColoredInstance, RangeShape};
use super::report::{Guarantee, SolveStats, SolverReport};
use super::weighted::{require_ball, require_box, require_dim};
use super::{ColoredSolver, EngineResult};
use crate::config::{ColorSamplingConfig, SamplingConfig};
use crate::exact::{exact_colored_disk, exact_colored_rect};
use crate::input::{ball_distinct_colors, ColoredPlacement};
use crate::technique1::approx_colored_ball;
use crate::technique2::{
    approx_colored_disk_sampling_with_details, exact_colored_disk_by_union,
    output_sensitive_colored_disk_with_stats, ColorSamplingBranch,
};

/// Exact colored disk MaxRS by straightforward candidate enumeration.
#[derive(Clone, Copy, Debug, Default)]
pub struct ExactColoredDiskEnumSolver;

impl ExactColoredDiskEnumSolver {
    /// Capability record.
    pub const DESCRIPTOR: SolverDescriptor = SolverDescriptor {
        name: "exact-colored-disk-enum",
        problem: ProblemKind::Colored,
        shape: ShapeClass::Ball,
        dims: DimSupport::Fixed(2),
        guarantee: GuaranteeClass::Exact,
        dynamic: false,
        batch: BatchCapability::Independent,
        negative_weights: true,
        reference: "candidate enumeration baseline",
    };
}

impl<const D: usize> ColoredSolver<D> for ExactColoredDiskEnumSolver {
    fn descriptor(&self) -> &SolverDescriptor {
        &Self::DESCRIPTOR
    }

    fn solve(
        &self,
        instance: &ColoredInstance<D>,
    ) -> EngineResult<SolverReport<ColoredPlacement<D>>> {
        let name = Self::DESCRIPTOR.name;
        require_dim::<D>(name, 2)?;
        let radius = require_ball(name, instance.shape())?;
        let start = Instant::now();
        let sites = repack_sites::<D, 2>(instance.sites());
        let best = exact_colored_disk(&sites, radius);
        Ok(SolverReport {
            solver: name,
            placement: repack_colored_placement(&best),
            guarantee: Guarantee::Exact,
            stats: SolveStats { elapsed: start.elapsed(), ..SolveStats::default() },
        })
    }
}

/// Exact colored disk MaxRS via per-color union boundaries (Lemma 4.2).
#[derive(Clone, Copy, Debug, Default)]
pub struct ExactColoredDiskUnionSolver;

impl ExactColoredDiskUnionSolver {
    /// Capability record.
    pub const DESCRIPTOR: SolverDescriptor = SolverDescriptor {
        name: "exact-colored-disk-union",
        problem: ProblemKind::Colored,
        shape: ShapeClass::Ball,
        dims: DimSupport::Fixed(2),
        guarantee: GuaranteeClass::Exact,
        dynamic: false,
        batch: BatchCapability::Independent,
        negative_weights: true,
        reference: "Lemma 4.2",
    };
}

impl<const D: usize> ColoredSolver<D> for ExactColoredDiskUnionSolver {
    fn descriptor(&self) -> &SolverDescriptor {
        &Self::DESCRIPTOR
    }

    fn solve(
        &self,
        instance: &ColoredInstance<D>,
    ) -> EngineResult<SolverReport<ColoredPlacement<D>>> {
        let name = Self::DESCRIPTOR.name;
        require_dim::<D>(name, 2)?;
        let radius = require_ball(name, instance.shape())?;
        let start = Instant::now();
        let sites = repack_sites::<D, 2>(instance.sites());
        let best = exact_colored_disk_by_union(&sites, radius);
        Ok(SolverReport {
            solver: name,
            placement: repack_colored_placement(&best),
            guarantee: Guarantee::Exact,
            stats: SolveStats { elapsed: start.elapsed(), ..SolveStats::default() },
        })
    }
}

/// Exact output-sensitive colored disk MaxRS (Theorem 4.6): cost scales with
/// the answer, not with `n²`.
#[derive(Clone, Copy, Debug, Default)]
pub struct OutputSensitiveColoredDiskSolver;

impl OutputSensitiveColoredDiskSolver {
    /// Capability record.
    pub const DESCRIPTOR: SolverDescriptor = SolverDescriptor {
        name: "output-sensitive-colored-disk",
        problem: ProblemKind::Colored,
        shape: ShapeClass::Ball,
        dims: DimSupport::Fixed(2),
        guarantee: GuaranteeClass::Exact,
        dynamic: false,
        batch: BatchCapability::Independent,
        negative_weights: true,
        reference: "Theorem 4.6",
    };
}

impl<const D: usize> ColoredSolver<D> for OutputSensitiveColoredDiskSolver {
    fn descriptor(&self) -> &SolverDescriptor {
        &Self::DESCRIPTOR
    }

    fn solve(
        &self,
        instance: &ColoredInstance<D>,
    ) -> EngineResult<SolverReport<ColoredPlacement<D>>> {
        let name = Self::DESCRIPTOR.name;
        require_dim::<D>(name, 2)?;
        let radius = require_ball(name, instance.shape())?;
        let start = Instant::now();
        let sites = repack_sites::<D, 2>(instance.sites());
        let (best, stats) = output_sensitive_colored_disk_with_stats(&sites, radius);
        Ok(SolverReport {
            solver: name,
            placement: repack_colored_placement(&best),
            guarantee: Guarantee::Exact,
            stats: SolveStats {
                elapsed: start.elapsed(),
                grids: Some(stats.grids),
                cells: Some(stats.cells),
                samples: None,
                candidates: Some(stats.boundary_intersections),
                candidates_examined: Some(stats.grid_queries.candidates),
                grid_cells_visited: Some(stats.grid_queries.cells),
                sieve_rejected: Some(stats.grid_queries.sieve_rejected),
                ..SolveStats::default()
            },
        })
    }
}

/// `(1/2 − ε)`-approximate colored `d`-ball MaxRS via point sampling
/// (Theorem 1.5).
#[derive(Clone, Copy, Debug)]
pub struct ColoredBallSolver {
    config: SamplingConfig,
}

impl ColoredBallSolver {
    /// Capability record.
    pub const DESCRIPTOR: SolverDescriptor = SolverDescriptor {
        name: "approx-colored-ball",
        problem: ProblemKind::Colored,
        shape: ShapeClass::Ball,
        dims: DimSupport::Any,
        guarantee: GuaranteeClass::HalfMinusEps,
        dynamic: false,
        batch: BatchCapability::IndexShared,
        negative_weights: true,
        reference: "Theorem 1.5",
    };

    /// A solver running with the given sampling configuration.
    pub fn new(config: SamplingConfig) -> Self {
        Self { config }
    }

    /// The sampling configuration the solver runs with.
    pub fn config(&self) -> &SamplingConfig {
        &self.config
    }
}

impl Default for ColoredBallSolver {
    fn default() -> Self {
        Self::new(SamplingConfig::default())
    }
}

impl<const D: usize> ColoredSolver<D> for ColoredBallSolver {
    fn descriptor(&self) -> &SolverDescriptor {
        &Self::DESCRIPTOR
    }

    fn solve(
        &self,
        instance: &ColoredInstance<D>,
    ) -> EngineResult<SolverReport<ColoredPlacement<D>>> {
        let name = Self::DESCRIPTOR.name;
        require_ball(name, instance.shape())?;
        let ball = instance.as_ball_instance().expect("checked: shape is a ball");
        let start = Instant::now();
        let placement = approx_colored_ball(&ball, self.config);
        Ok(SolverReport {
            solver: name,
            placement,
            guarantee: Guarantee::HalfMinusEps { eps: self.config.eps },
            stats: SolveStats { elapsed: start.elapsed(), ..SolveStats::default() },
        })
    }

    /// The index-shared batch path: the colored Technique 1 sample set
    /// (dual balls inserted grouped by color, Section 3.2) is built once per
    /// distinct radius in the shared index; each query reads it through the
    /// non-mutating `peek_best` and certifies the chosen center with an
    /// exact distinct-color recount — the same center and count a fresh
    /// per-query build reports.
    fn solve_all(
        &self,
        base: &ColoredInstance<D>,
        shapes: &[RangeShape<D>],
        index: &SharedIndex<D>,
        _threads: usize,
    ) -> Vec<EngineResult<SolverReport<ColoredPlacement<D>>>> {
        let name = Self::DESCRIPTOR.name;
        shapes
            .iter()
            .map(|shape| {
                let radius = require_ball(name, shape)?;
                let start = Instant::now();
                let placement = if base.is_empty() {
                    ColoredPlacement::empty()
                } else {
                    let set = index.colored_sample_set(radius, &self.config);
                    match set.peek_best() {
                        None => ColoredPlacement::empty(),
                        Some((scaled_center, _)) => {
                            let center = scaled_center.scale(radius);
                            let distinct = ball_distinct_colors(base.sites(), &center, radius);
                            ColoredPlacement { center, distinct }
                        }
                    }
                };
                Ok(SolverReport {
                    solver: name,
                    placement,
                    guarantee: Guarantee::HalfMinusEps { eps: self.config.eps },
                    stats: SolveStats { elapsed: start.elapsed(), ..SolveStats::default() },
                })
            })
            .collect()
    }
}

/// `(1 − ε)`-approximate colored disk MaxRS by color sampling (Theorem 1.6).
#[derive(Clone, Copy, Debug)]
pub struct ColoredDiskSamplingSolver {
    config: ColorSamplingConfig,
}

impl ColoredDiskSamplingSolver {
    /// Capability record.
    pub const DESCRIPTOR: SolverDescriptor = SolverDescriptor {
        name: "approx-colored-disk-sampling",
        problem: ProblemKind::Colored,
        shape: ShapeClass::Ball,
        dims: DimSupport::Fixed(2),
        guarantee: GuaranteeClass::OneMinusEps,
        dynamic: false,
        batch: BatchCapability::Independent,
        negative_weights: true,
        reference: "Theorem 1.6",
    };

    /// A solver running with the given color-sampling configuration.
    pub fn new(config: ColorSamplingConfig) -> Self {
        Self { config }
    }

    /// The color-sampling configuration the solver runs with.
    pub fn config(&self) -> &ColorSamplingConfig {
        &self.config
    }
}

impl Default for ColoredDiskSamplingSolver {
    fn default() -> Self {
        Self::new(ColorSamplingConfig::default())
    }
}

impl<const D: usize> ColoredSolver<D> for ColoredDiskSamplingSolver {
    fn descriptor(&self) -> &SolverDescriptor {
        &Self::DESCRIPTOR
    }

    fn solve(
        &self,
        instance: &ColoredInstance<D>,
    ) -> EngineResult<SolverReport<ColoredPlacement<D>>> {
        let name = Self::DESCRIPTOR.name;
        require_dim::<D>(name, 2)?;
        let radius = require_ball(name, instance.shape())?;
        let start = Instant::now();
        let ball2 =
            crate::input::ColoredBallInstance::new(repack_sites::<D, 2>(instance.sites()), radius);
        let details = approx_colored_disk_sampling_with_details(&ball2, self.config);
        let kept = match details.branch {
            ColorSamplingBranch::ExactOnFullInput => None,
            ColorSamplingBranch::SampledColors { kept_colors, .. } => Some(kept_colors),
        };
        Ok(SolverReport {
            solver: name,
            placement: repack_colored_placement(&details.placement),
            guarantee: Guarantee::OneMinusEps { eps: self.config.eps },
            stats: SolveStats {
                elapsed: start.elapsed(),
                samples: kept,
                candidates: Some(details.opt_estimate),
                ..SolveStats::default()
            },
        })
    }
}

/// Exact colored rectangle MaxRS (the [ZGH+22]-style prior-work setting).
#[derive(Clone, Copy, Debug, Default)]
pub struct ExactColoredRectSolver;

impl ExactColoredRectSolver {
    /// Capability record.
    pub const DESCRIPTOR: SolverDescriptor = SolverDescriptor {
        name: "exact-colored-rect-2d",
        problem: ProblemKind::Colored,
        shape: ShapeClass::AxisBox,
        dims: DimSupport::Fixed(2),
        guarantee: GuaranteeClass::Exact,
        dynamic: false,
        batch: BatchCapability::Independent,
        negative_weights: true,
        reference: "[ZGH+22]-style sweep",
    };
}

impl<const D: usize> ColoredSolver<D> for ExactColoredRectSolver {
    fn descriptor(&self) -> &SolverDescriptor {
        &Self::DESCRIPTOR
    }

    fn solve(
        &self,
        instance: &ColoredInstance<D>,
    ) -> EngineResult<SolverReport<ColoredPlacement<D>>> {
        let name = Self::DESCRIPTOR.name;
        require_dim::<D>(name, 2)?;
        let extents = require_box(name, instance.shape())?;
        let start = Instant::now();
        let sites = repack_sites::<D, 2>(instance.sites());
        let best = exact_colored_rect(&sites, extents[0], extents[1]);
        let center2 = best.rect.lo.lerp(&best.rect.hi, 0.5);
        Ok(SolverReport {
            solver: name,
            placement: ColoredPlacement { center: repack_point(&center2), distinct: best.distinct },
            guarantee: Guarantee::Exact,
            stats: SolveStats { elapsed: start.elapsed(), ..SolveStats::default() },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineError;
    use mrs_geom::{ColoredSite, Point2};

    fn herd() -> ColoredInstance<2> {
        ColoredInstance::ball(
            vec![
                ColoredSite::new(Point2::xy(0.0, 0.0), 0),
                ColoredSite::new(Point2::xy(0.3, 0.2), 0),
                ColoredSite::new(Point2::xy(0.5, 0.0), 1),
                ColoredSite::new(Point2::xy(0.1, 0.6), 2),
                ColoredSite::new(Point2::xy(5.0, 5.0), 3),
            ],
            1.0,
        )
    }

    #[test]
    fn exact_colored_solvers_agree() {
        let instance = herd();
        let enumerated = ExactColoredDiskEnumSolver.solve(&instance).unwrap();
        let union = ExactColoredDiskUnionSolver.solve(&instance).unwrap();
        let output_sensitive = OutputSensitiveColoredDiskSolver.solve(&instance).unwrap();
        assert_eq!(enumerated.placement.distinct, 3);
        assert_eq!(union.placement.distinct, 3);
        assert_eq!(output_sensitive.placement.distinct, 3);
        assert!(output_sensitive.stats.grids.is_some());
    }

    #[test]
    fn approximate_colored_solvers_respect_guarantees() {
        let instance = herd();
        let exact = 3.0;
        for report in [
            ColoredBallSolver::default().solve(&instance).unwrap(),
            ColoredDiskSamplingSolver::default().solve(&instance).unwrap(),
        ] {
            assert!(
                report.placement.distinct as f64 >= report.guarantee.ratio() * exact,
                "{}: {} < {} * {}",
                report.solver,
                report.placement.distinct,
                report.guarantee.ratio(),
                exact
            );
            assert_eq!(
                instance.distinct_at(&report.placement.center),
                report.placement.distinct,
                "{} must certify its reported count",
                report.solver
            );
        }
    }

    #[test]
    fn colored_rect_dispatch() {
        let sites = vec![
            ColoredSite::new(Point2::xy(0.0, 0.0), 0),
            ColoredSite::new(Point2::xy(0.6, 0.4), 1),
            ColoredSite::new(Point2::xy(5.0, 5.0), 2),
        ];
        let instance = ColoredInstance::axis_box(sites, [1.0, 1.0]);
        let report = ExactColoredRectSolver.solve(&instance).unwrap();
        assert_eq!(report.placement.distinct, 2);
        assert_eq!(instance.distinct_at(&report.placement.center), 2);
    }

    #[test]
    fn colored_mismatches_are_typed_errors() {
        let ball = herd();
        assert!(matches!(
            ExactColoredRectSolver.solve(&ball),
            Err(EngineError::UnsupportedShape { .. })
        ));
        let boxed = ColoredInstance::<2>::axis_box(vec![], [1.0, 1.0]);
        assert!(matches!(
            OutputSensitiveColoredDiskSolver.solve(&boxed),
            Err(EngineError::UnsupportedShape { .. })
        ));
    }
}
