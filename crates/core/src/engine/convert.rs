//! Bridging between the engine's `const D` generics and the planar / 1-D
//! exact algorithms.
//!
//! A solver like the Chazelle–Lee disk sweep only exists for `D = 2`, but the
//! registry hands out solvers under any `const D`.  The wrappers check the
//! runtime dimension first and then *repack* coordinates between `Point<D>`
//! and `Point<2>` — a plain coordinate copy that is exact whenever the two
//! dimensions agree (which the preceding check guarantees).  This keeps the
//! whole engine safe Rust with no specialization and no transmutes, at the
//! cost of one copy of the input per dispatched solve — negligible next to
//! the super-linear algorithms behind it.

use mrs_geom::{ColoredSite, Point, WeightedPoint};

use crate::input::{ColoredPlacement, Placement};

/// Copies the first `min(D, E)` coordinates of `p` into a `Point<E>`.
///
/// Exact when `D == E`; the callers in this module only use it after checking
/// that.
pub fn repack_point<const D: usize, const E: usize>(p: &Point<D>) -> Point<E> {
    debug_assert_eq!(D, E, "repacking between distinct dimensions loses coordinates");
    let mut q = Point::<E>::origin();
    let mut i = 0;
    while i < D && i < E {
        q[i] = p[i];
        i += 1;
    }
    q
}

/// Repacks a weighted placement across equal dimensions.
pub fn repack_placement<const D: usize, const E: usize>(p: &Placement<D>) -> Placement<E> {
    Placement { center: repack_point(&p.center), value: p.value }
}

/// Repacks a colored placement across equal dimensions.
pub fn repack_colored_placement<const D: usize, const E: usize>(
    p: &ColoredPlacement<D>,
) -> ColoredPlacement<E> {
    ColoredPlacement { center: repack_point(&p.center), distinct: p.distinct }
}

/// Repacks weighted points across equal dimensions.
pub(crate) fn repack_weighted<const D: usize, const E: usize>(
    points: &[WeightedPoint<D>],
) -> Vec<WeightedPoint<E>> {
    points.iter().map(|wp| WeightedPoint::new(repack_point(&wp.point), wp.weight)).collect()
}

/// Repacks colored sites across equal dimensions.
pub(crate) fn repack_sites<const D: usize, const E: usize>(
    sites: &[ColoredSite<D>],
) -> Vec<ColoredSite<E>> {
    sites.iter().map(|s| ColoredSite::new(repack_point(&s.point), s.color)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrs_geom::Point2;

    #[test]
    fn same_dimension_repack_is_identity() {
        let p = Point2::xy(1.5, -2.5);
        let q: Point<2> = repack_point(&p);
        assert_eq!(p, q);

        let placement = Placement::<2> { center: p, value: 7.0 };
        assert_eq!(repack_placement::<2, 2>(&placement), placement);

        let colored = ColoredPlacement::<2> { center: p, distinct: 3 };
        assert_eq!(repack_colored_placement::<2, 2>(&colored), colored);

        let pts = vec![WeightedPoint::new(p, 2.0)];
        assert_eq!(repack_weighted::<2, 2>(&pts), pts);

        let sites = vec![ColoredSite::new(p, 9)];
        assert_eq!(repack_sites::<2, 2>(&sites), sites);
    }
}
