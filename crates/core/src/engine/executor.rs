//! The batch executor: plan a [`BatchRequest`], build each shared spatial
//! index exactly once, and fan the queries out across a worker pool.
//!
//! ## Execution plan
//!
//! 1. **Plan** — queries are grouped by `(problem kind, solver name)` and
//!    every distinct solver is resolved from the [`Registry`] once.  Queries
//!    naming an unknown solver fail individually with
//!    [`EngineError::UnknownSolver`]; they never sink the batch.
//! 2. **Index** — a [`SharedIndex`] is created over the request's points and
//!    sites.  Its structures (the sorted event list + Fenwick tree of the
//!    1-D line, one hash grid per distinct query radius) are built lazily,
//!    each exactly once, and shared by every query in the batch.
//! 3. **Fan out** — solver groups whose descriptor declares
//!    [`BatchCapability::IndexShared`] become one task (the solver amortizes
//!    its build across the group via `solve_all`); independent solvers
//!    contribute one task per query.  Tasks run on `std::thread::scope`
//!    workers; no dependencies are spawned and nothing outlives the call.
//! 4. **Certify** — optionally, every successful answer is re-evaluated
//!    against the shared index (Fenwick range sum for 1-D intervals, hash
//!    grid for `d`-balls, a direct scan for boxes) and counted in
//!    [`BatchStats::certified`].  Solvers report *certified* values, so a
//!    mismatch means a contract violation and is tallied separately.
//!
//! [`BatchCapability::IndexShared`]: super::BatchCapability::IndexShared

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

use mrs_geom::{ColoredSite, Fenwick, HashGrid, Point, WeightedPoint};

use super::batch::{BatchAnswer, BatchQuery, BatchReport, BatchRequest, BatchStats};
use super::instance::{ColoredInstance, RangeShape, WeightedInstance};
use super::registry::{Registry, SharedColoredSolver, SharedWeightedSolver};
use super::{EngineError, ProblemKind};
use crate::exact::interval1d::{LinePoint, SortedLine};

/// The 1-D view of the shared point set: the sorted event list the Section 5
/// batched solver builds from, plus a Fenwick tree over the sorted weights
/// for `O(log n)` closed-interval weight queries.
///
/// The Fenwick tree deliberately duplicates what `SortedLine`'s prefix array
/// can answer: it is the *update-capable* form of the same index, so a
/// future dynamic batch (insertions/deletions between queries) reuses this
/// structure instead of rebuilding the prefix array per update.
struct LineIndex {
    line: SortedLine,
    /// Per-point weights in sorted-x order (`fenwick.range_sum(i, i)` without
    /// the log factor), used to classify boundary points during
    /// certification.
    weights: Vec<f64>,
    fenwick: Fenwick,
}

/// Spatial indexes over one batch's points and sites, each built lazily and
/// exactly once, then shared by every query (and worker thread) of the batch.
///
/// * [`Self::sorted_line`] — the sorted event list of the first coordinate
///   (the structure behind the Theorem 1.3 batched solver);
/// * [`Self::interval_weight`] — Fenwick-tree range sums over the sorted
///   order, `O(log n)` per query;
/// * [`Self::ball_weight`] / [`Self::ball_distinct`] — hash-grid ball
///   queries, one grid per distinct radius, `O(local density)` per query.
pub struct SharedIndex<const D: usize> {
    points: Arc<[WeightedPoint<D>]>,
    sites: Arc<[ColoredSite<D>]>,
    line: OnceLock<LineIndex>,
    point_grids: Mutex<HashMap<u64, Arc<HashGrid<D>>>>,
    site_grids: Mutex<HashMap<u64, Arc<HashGrid<D>>>>,
    coord_scale: OnceLock<f64>,
    builds: AtomicUsize,
    build_time: Mutex<Duration>,
}

impl<const D: usize> SharedIndex<D> {
    /// An index over the given shared point and site sets.  Nothing is built
    /// until a query asks for a structure.
    pub fn new(points: Arc<[WeightedPoint<D>]>, sites: Arc<[ColoredSite<D>]>) -> Self {
        Self {
            points,
            sites,
            line: OnceLock::new(),
            point_grids: Mutex::new(HashMap::new()),
            site_grids: Mutex::new(HashMap::new()),
            coord_scale: OnceLock::new(),
            builds: AtomicUsize::new(0),
            build_time: Mutex::new(Duration::ZERO),
        }
    }

    /// Largest absolute coordinate across the indexed points and sites.
    /// Certification slack scales with this: the rounding carried by a
    /// reported center is relative to the coordinate magnitude, not to the
    /// query radius.
    pub fn coord_scale(&self) -> f64 {
        *self.coord_scale.get_or_init(|| {
            let mut scale = 0.0f64;
            for wp in self.points.iter() {
                for i in 0..D {
                    scale = scale.max(wp.point[i].abs());
                }
            }
            for s in self.sites.iter() {
                for i in 0..D {
                    scale = scale.max(s.point[i].abs());
                }
            }
            scale
        })
    }

    /// The weighted points the index was built over.
    pub fn points(&self) -> &[WeightedPoint<D>] {
        &self.points
    }

    /// The colored sites the index was built over.
    pub fn sites(&self) -> &[ColoredSite<D>] {
        &self.sites
    }

    /// Structures built so far (sorted line and Fenwick tree count once
    /// each; every distinct-radius hash grid counts once).
    pub fn builds(&self) -> usize {
        self.builds.load(Ordering::Relaxed)
    }

    /// Total wall-clock time spent building structures.
    pub fn build_time(&self) -> Duration {
        *self.build_time.lock().expect("build-time lock poisoned")
    }

    fn record_build(&self, structures: usize, elapsed: Duration) {
        self.builds.fetch_add(structures, Ordering::Relaxed);
        *self.build_time.lock().expect("build-time lock poisoned") += elapsed;
    }

    fn line_index(&self) -> &LineIndex {
        self.line.get_or_init(|| {
            let start = Instant::now();
            let line_points: Vec<LinePoint> =
                self.points.iter().map(|wp| LinePoint::new(wp.point[0], wp.weight)).collect();
            let line = SortedLine::new(&line_points);
            let weights: Vec<f64> = line.prefix().windows(2).map(|w| w[1] - w[0]).collect();
            let fenwick = Fenwick::from_values(&weights);
            self.record_build(2, start.elapsed());
            LineIndex { line, weights, fenwick }
        })
    }

    /// The shared sorted event list over the points' first coordinate — the
    /// build the Section 5 batched interval solver amortizes.  Built on
    /// first use, meaningful for `D = 1` workloads.
    pub fn sorted_line(&self) -> &SortedLine {
        &self.line_index().line
    }

    /// Total weight of points whose first coordinate lies in the closed
    /// interval `[lo, hi]`, in `O(log n)` via the shared Fenwick tree.
    pub fn interval_weight(&self, lo: f64, hi: f64) -> f64 {
        let index = self.line_index();
        let xs = index.line.xs();
        let a = xs.partition_point(|&v| v < lo - 1e-12);
        let b = xs.partition_point(|&v| v <= hi + 1e-12);
        if a >= b {
            0.0
        } else {
            index.fenwick.range_sum(a, b - 1)
        }
    }

    fn grid_for(
        &self,
        grids: &Mutex<HashMap<u64, Arc<HashGrid<D>>>>,
        radius: f64,
        coords: impl Fn() -> Vec<Point<D>>,
    ) -> Arc<HashGrid<D>> {
        let mut map = grids.lock().expect("grid lock poisoned");
        if let Some(grid) = map.get(&radius.to_bits()) {
            return Arc::clone(grid);
        }
        let start = Instant::now();
        let grid = Arc::new(HashGrid::build(radius, &coords()));
        self.record_build(1, start.elapsed());
        map.insert(radius.to_bits(), Arc::clone(&grid));
        grid
    }

    /// The hash grid over the weighted points at cell side `radius`, built
    /// once per distinct radius.
    pub fn point_grid(&self, radius: f64) -> Arc<HashGrid<D>> {
        self.grid_for(&self.point_grids, radius, || self.points.iter().map(|wp| wp.point).collect())
    }

    /// The hash grid over the colored sites at cell side `radius`, built
    /// once per distinct radius.
    pub fn site_grid(&self, radius: f64) -> Arc<HashGrid<D>> {
        self.grid_for(&self.site_grids, radius, || self.sites.iter().map(|s| s.point).collect())
    }

    /// Total weight inside the closed ball of the given radius at `center`,
    /// answered through the shared per-radius hash grid.
    pub fn ball_weight(&self, center: &Point<D>, radius: f64) -> f64 {
        let grid = self.point_grid(radius);
        let mut total = 0.0;
        grid.for_each_within(center, radius, |id| total += self.points[id].weight);
        total
    }

    /// Distinct colors inside the closed ball of the given radius at
    /// `center`, answered through the shared per-radius site grid.
    pub fn ball_distinct(&self, center: &Point<D>, radius: f64) -> usize {
        let grid = self.site_grid(radius);
        let mut colors: Vec<usize> = Vec::new();
        grid.for_each_within(center, radius, |id| colors.push(self.sites[id].color));
        colors.sort_unstable();
        colors.dedup();
        colors.len()
    }

    /// Lower/upper bounds on the weight in the closed interval `[lo, hi]`
    /// when endpoint comparisons may be off by `slack`: points deeper than
    /// `slack` inside count definitely, points within `slack` of an endpoint
    /// contribute their negative weight to the lower bound and their
    /// positive weight to the upper bound (correct under mixed-sign
    /// weights).  This is the certification primitive: a reported center
    /// carries rounding proportional to the coordinate magnitude, so exact
    /// boundary membership is not re-decidable.
    pub fn interval_weight_bounds(&self, lo: f64, hi: f64, slack: f64) -> (f64, f64) {
        let index = self.line_index();
        let xs = index.line.xs();
        let outer_a = xs.partition_point(|&v| v < lo - slack);
        let outer_b = xs.partition_point(|&v| v <= hi + slack);
        let inner_a = xs.partition_point(|&v| v < lo + slack).max(outer_a);
        let inner_b = xs.partition_point(|&v| v <= hi - slack).min(outer_b);
        let definite =
            if inner_a < inner_b { index.fenwick.range_sum(inner_a, inner_b - 1) } else { 0.0 };
        let mut lo_sum = definite;
        let mut hi_sum = definite;
        for i in (outer_a..inner_a).chain(inner_b.max(inner_a)..outer_b) {
            let w = index.weights[i];
            if w < 0.0 {
                lo_sum += w;
            } else {
                hi_sum += w;
            }
        }
        (lo_sum, hi_sum)
    }

    /// Lower/upper bounds on the weight inside the closed ball at `center`
    /// under endpoint slack, through the shared per-radius grid.  See
    /// [`Self::interval_weight_bounds`] for the contract.
    pub fn ball_weight_bounds(&self, center: &Point<D>, radius: f64, slack: f64) -> (f64, f64) {
        let grid = self.point_grid(radius);
        let r_in = (radius - slack).max(0.0);
        let mut definite = 0.0;
        let mut neg = 0.0;
        let mut pos = 0.0;
        grid.for_each_within(center, radius + slack, |id| {
            let wp = &self.points[id];
            if wp.point.dist_sq(center) <= r_in * r_in {
                definite += wp.weight;
            } else if wp.weight < 0.0 {
                neg += wp.weight;
            } else {
                pos += wp.weight;
            }
        });
        (definite + neg, definite + pos)
    }

    /// Lower/upper bounds on the distinct colors inside the closed ball at
    /// `center` under endpoint slack, through the shared per-radius site
    /// grid.
    pub fn ball_distinct_bounds(
        &self,
        center: &Point<D>,
        radius: f64,
        slack: f64,
    ) -> (usize, usize) {
        let grid = self.site_grid(radius);
        let r_in = (radius - slack).max(0.0);
        let mut definite: Vec<usize> = Vec::new();
        let mut boundary: Vec<usize> = Vec::new();
        grid.for_each_within(center, radius + slack, |id| {
            let s = &self.sites[id];
            if s.point.dist_sq(center) <= r_in * r_in {
                definite.push(s.color);
            } else {
                boundary.push(s.color);
            }
        });
        definite.sort_unstable();
        definite.dedup();
        let lo = definite.len();
        let mut all = definite;
        all.extend(boundary);
        all.sort_unstable();
        all.dedup();
        (lo, all.len())
    }
}

/// Configuration of a [`BatchExecutor`].
#[derive(Clone, Copy, Debug)]
pub struct ExecutorConfig {
    /// Worker threads to fan out over.  `None` picks the machine's available
    /// parallelism, capped at 8; `Some(1)` forces a serial run.
    pub threads: Option<usize>,
    /// Re-evaluate every successful answer against the shared index and
    /// count the outcome in [`BatchStats::certified`] /
    /// [`BatchStats::certify_failures`].
    pub certify: bool,
}

impl Default for ExecutorConfig {
    fn default() -> Self {
        Self { threads: None, certify: true }
    }
}

/// One schedulable unit of work: either a whole index-sharing solver group
/// or a single independent query.
enum Task<const D: usize> {
    WeightedGroup {
        solver: SharedWeightedSolver<D>,
        base: WeightedInstance<D>,
        indices: Vec<usize>,
        shapes: Vec<RangeShape<D>>,
    },
    WeightedOne {
        solver: SharedWeightedSolver<D>,
        instance: WeightedInstance<D>,
        index: usize,
    },
    ColoredGroup {
        solver: SharedColoredSolver<D>,
        base: ColoredInstance<D>,
        indices: Vec<usize>,
        shapes: Vec<RangeShape<D>>,
    },
    ColoredOne {
        solver: SharedColoredSolver<D>,
        instance: ColoredInstance<D>,
        index: usize,
    },
}

impl<const D: usize> Task<D> {
    fn run(&self, index: &SharedIndex<D>) -> Vec<(usize, BatchAnswer<D>)> {
        match self {
            Task::WeightedGroup { solver, base, indices, shapes } => {
                let results = solver.solve_all(base, shapes, index);
                indices
                    .iter()
                    .zip(results)
                    .map(|(&i, r)| {
                        (i, r.map(BatchAnswer::Weighted).unwrap_or_else(BatchAnswer::Failed))
                    })
                    .collect()
            }
            Task::WeightedOne { solver, instance, index: i } => {
                let answer = solver
                    .solve(instance)
                    .map(BatchAnswer::Weighted)
                    .unwrap_or_else(BatchAnswer::Failed);
                vec![(*i, answer)]
            }
            Task::ColoredGroup { solver, base, indices, shapes } => {
                let results = solver.solve_all(base, shapes, index);
                indices
                    .iter()
                    .zip(results)
                    .map(|(&i, r)| {
                        (i, r.map(BatchAnswer::Colored).unwrap_or_else(BatchAnswer::Failed))
                    })
                    .collect()
            }
            Task::ColoredOne { solver, instance, index: i } => {
                let answer = solver
                    .solve(instance)
                    .map(BatchAnswer::Colored)
                    .unwrap_or_else(BatchAnswer::Failed);
                vec![(*i, answer)]
            }
        }
    }
}

/// Executes [`BatchRequest`]s against a [`Registry`].  See the
/// [module docs](self) for the execution plan.
pub struct BatchExecutor<'r> {
    registry: &'r Registry,
    config: ExecutorConfig,
}

impl<'r> BatchExecutor<'r> {
    /// An executor over `registry` with the default configuration.
    pub fn new(registry: &'r Registry) -> Self {
        Self::with_config(registry, ExecutorConfig::default())
    }

    /// An executor with an explicit configuration.
    pub fn with_config(registry: &'r Registry, config: ExecutorConfig) -> Self {
        Self { registry, config }
    }

    /// Answers every query of the request.  Individual queries fail with a
    /// typed error in their [`BatchAnswer`]; the batch itself always returns.
    pub fn execute<const D: usize>(&self, request: &BatchRequest<D>) -> BatchReport<D> {
        let start = Instant::now();
        let mut answers: Vec<Option<BatchAnswer<D>>> = vec![None; request.len()];
        let index = SharedIndex::new(request.shared_points(), request.shared_sites());
        let tasks = self.plan(request, &mut answers);

        let threads = self
            .config
            .threads
            .unwrap_or_else(|| {
                std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4).min(8)
            })
            .clamp(1, tasks.len().max(1));

        if threads <= 1 {
            for task in &tasks {
                for (i, answer) in task.run(&index) {
                    answers[i] = Some(answer);
                }
            }
        } else {
            let next = AtomicUsize::new(0);
            let shared_answers = Mutex::new(&mut answers);
            std::thread::scope(|scope| {
                for _ in 0..threads {
                    scope.spawn(|| loop {
                        let t = next.fetch_add(1, Ordering::Relaxed);
                        let Some(task) = tasks.get(t) else { break };
                        let results = task.run(&index);
                        let mut answers = shared_answers.lock().expect("answer lock poisoned");
                        for (i, answer) in results {
                            answers[i] = Some(answer);
                        }
                    });
                }
            });
        }

        let answers: Vec<BatchAnswer<D>> = answers
            .into_iter()
            .map(|a| {
                a.unwrap_or(BatchAnswer::Failed(EngineError::UnknownSolver {
                    name: "<unscheduled>".into(),
                }))
            })
            .collect();

        let mut stats = BatchStats {
            queries: request.len(),
            failed: answers.iter().filter(|a| !a.is_ok()).count(),
            threads,
            solver_time: answers.iter().map(BatchAnswer::elapsed).sum(),
            ..BatchStats::default()
        };
        if self.config.certify {
            self.certify(request, &answers, &index, &mut stats);
        }
        stats.index_builds = index.builds();
        stats.index_build_time = index.build_time();
        stats.wall = start.elapsed();
        BatchReport { answers, stats }
    }

    /// Groups queries per `(problem, solver)`, resolves each solver once,
    /// fails unknown names in place, and emits one task per index-sharing
    /// group or per independent query.
    fn plan<const D: usize>(
        &self,
        request: &BatchRequest<D>,
        answers: &mut [Option<BatchAnswer<D>>],
    ) -> Vec<Task<D>> {
        struct Group<const D: usize> {
            kind: ProblemKind,
            name: String,
            indices: Vec<usize>,
            shapes: Vec<RangeShape<D>>,
        }
        let mut order: Vec<Group<D>> = Vec::new();
        let mut by_key: HashMap<(ProblemKind, String), usize> = HashMap::new();
        for (i, query) in request.queries().iter().enumerate() {
            let kind = match query {
                BatchQuery::Weighted { .. } => ProblemKind::Weighted,
                BatchQuery::Colored { .. } => ProblemKind::Colored,
            };
            let slot = *by_key.entry((kind, query.solver().to_string())).or_insert_with(|| {
                order.push(Group {
                    kind,
                    name: query.solver().to_string(),
                    indices: Vec::new(),
                    shapes: Vec::new(),
                });
                order.len() - 1
            });
            order[slot].indices.push(i);
            order[slot].shapes.push(*query.shape());
        }

        let mut tasks: Vec<Task<D>> = Vec::new();
        for group in order {
            match group.kind {
                ProblemKind::Weighted => match self.registry.weighted::<D>(&group.name) {
                    None => fail_group(answers, &group.indices, &group.name),
                    Some(solver) => {
                        let base =
                            WeightedInstance::from_shared(request.shared_points(), group.shapes[0]);
                        if solver.descriptor().batch.is_shared() {
                            tasks.push(Task::WeightedGroup {
                                solver,
                                base,
                                indices: group.indices,
                                shapes: group.shapes,
                            });
                        } else {
                            for (&i, shape) in group.indices.iter().zip(&group.shapes) {
                                tasks.push(Task::WeightedOne {
                                    solver: Arc::clone(&solver),
                                    instance: base.with_shape(*shape),
                                    index: i,
                                });
                            }
                        }
                    }
                },
                ProblemKind::Colored => match self.registry.colored::<D>(&group.name) {
                    None => fail_group(answers, &group.indices, &group.name),
                    Some(solver) => {
                        let base =
                            ColoredInstance::from_shared(request.shared_sites(), group.shapes[0]);
                        if solver.descriptor().batch.is_shared() {
                            tasks.push(Task::ColoredGroup {
                                solver,
                                base,
                                indices: group.indices,
                                shapes: group.shapes,
                            });
                        } else {
                            for (&i, shape) in group.indices.iter().zip(&group.shapes) {
                                tasks.push(Task::ColoredOne {
                                    solver: Arc::clone(&solver),
                                    instance: base.with_shape(*shape),
                                    index: i,
                                });
                            }
                        }
                    }
                },
            }
        }
        tasks
    }

    /// Re-evaluates every successful answer through the shared index and
    /// tallies agreement.  Solvers certify their reported values (the value
    /// is the true quality of the returned center), so disagreement counts
    /// as a `certify_failures` contract violation.
    fn certify<const D: usize>(
        &self,
        request: &BatchRequest<D>,
        answers: &[BatchAnswer<D>],
        index: &SharedIndex<D>,
        stats: &mut BatchStats,
    ) {
        // Boundary membership is only re-decidable up to the rounding the
        // reported center carries, which is relative to the coordinate
        // magnitude — not to the query radius.
        let slack = 1e-9 * (1.0 + index.coord_scale());
        for (query, answer) in request.queries().iter().zip(answers) {
            let ok = match answer {
                BatchAnswer::Failed(_) => continue,
                BatchAnswer::Weighted(report) => {
                    let center = &report.placement.center;
                    let (lo, hi) = match query.shape() {
                        RangeShape::Ball { radius } if D == 1 => index.interval_weight_bounds(
                            center[0] - radius,
                            center[0] + radius,
                            slack,
                        ),
                        RangeShape::Ball { radius } => {
                            index.ball_weight_bounds(center, *radius, slack)
                        }
                        RangeShape::AxisBox { extents } => {
                            box_weight_bounds(request.points(), center, extents, slack)
                        }
                    };
                    let want = report.placement.value;
                    let tol = 1e-6 * (1.0 + want.abs());
                    want >= lo - tol && want <= hi + tol
                }
                BatchAnswer::Colored(report) => {
                    let center = &report.placement.center;
                    let (lo, hi) = match query.shape() {
                        RangeShape::Ball { radius } => {
                            index.ball_distinct_bounds(center, *radius, slack)
                        }
                        RangeShape::AxisBox { extents } => {
                            box_distinct_bounds(request.sites(), center, extents, slack)
                        }
                    };
                    let want = report.placement.distinct;
                    want >= lo && want <= hi
                }
            };
            if ok {
                stats.certified += 1;
            } else {
                stats.certify_failures += 1;
            }
        }
    }
}

/// Classifies a point against a slack-widened box: `None` when definitely
/// outside, `Some(false)` when definitely inside, `Some(true)` when within
/// `slack` of the boundary.
fn box_membership<const D: usize>(
    point: &Point<D>,
    center: &Point<D>,
    extents: &[f64; D],
    slack: f64,
) -> Option<bool> {
    let mut boundary = false;
    for i in 0..D {
        let d = (point[i] - center[i]).abs();
        let half = extents[i] / 2.0;
        if d > half + slack {
            return None;
        }
        if d > half - slack {
            boundary = true;
        }
    }
    Some(boundary)
}

/// Lower/upper bounds on the weight inside a slack-widened box (direct scan;
/// box queries have no shared index).
fn box_weight_bounds<const D: usize>(
    points: &[WeightedPoint<D>],
    center: &Point<D>,
    extents: &[f64; D],
    slack: f64,
) -> (f64, f64) {
    let mut definite = 0.0;
    let mut neg = 0.0;
    let mut pos = 0.0;
    for wp in points {
        match box_membership(&wp.point, center, extents, slack) {
            None => {}
            Some(false) => definite += wp.weight,
            Some(true) => {
                if wp.weight < 0.0 {
                    neg += wp.weight;
                } else {
                    pos += wp.weight;
                }
            }
        }
    }
    (definite + neg, definite + pos)
}

/// Lower/upper bounds on the distinct colors inside a slack-widened box.
fn box_distinct_bounds<const D: usize>(
    sites: &[ColoredSite<D>],
    center: &Point<D>,
    extents: &[f64; D],
    slack: f64,
) -> (usize, usize) {
    let mut definite: Vec<usize> = Vec::new();
    let mut boundary: Vec<usize> = Vec::new();
    for s in sites {
        match box_membership(&s.point, center, extents, slack) {
            None => {}
            Some(false) => definite.push(s.color),
            Some(true) => boundary.push(s.color),
        }
    }
    definite.sort_unstable();
    definite.dedup();
    let lo = definite.len();
    let mut all = definite;
    all.extend(boundary);
    all.sort_unstable();
    all.dedup();
    (lo, all.len())
}

fn fail_group<const D: usize>(
    answers: &mut [Option<BatchAnswer<D>>],
    indices: &[usize],
    name: &str,
) {
    for &i in indices {
        answers[i] =
            Some(BatchAnswer::Failed(EngineError::UnknownSolver { name: name.to_string() }));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::registry;
    use mrs_geom::Point2;

    fn planar_points() -> Vec<WeightedPoint<2>> {
        vec![
            WeightedPoint::unit(Point2::xy(0.0, 0.0)),
            WeightedPoint::unit(Point2::xy(0.5, 0.0)),
            WeightedPoint::unit(Point2::xy(0.0, 0.5)),
            WeightedPoint::unit(Point2::xy(9.0, 9.0)),
        ]
    }

    fn planar_sites() -> Vec<ColoredSite<2>> {
        vec![
            ColoredSite::new(Point2::xy(0.0, 0.0), 0),
            ColoredSite::new(Point2::xy(0.4, 0.0), 1),
            ColoredSite::new(Point2::xy(0.0, 0.4), 2),
            ColoredSite::new(Point2::xy(9.0, 9.0), 0),
        ]
    }

    #[test]
    fn mixed_batch_answers_in_request_order() {
        let request = BatchRequest::new(planar_points(), planar_sites())
            .with_query(BatchQuery::weighted("exact-disk-2d", RangeShape::ball(1.0)))
            .with_query(BatchQuery::colored("output-sensitive-colored-disk", RangeShape::ball(1.0)))
            .with_query(BatchQuery::weighted("exact-rect-2d", RangeShape::rect(1.0, 1.0)))
            .with_query(BatchQuery::weighted("no-such-solver", RangeShape::ball(1.0)));
        let registry = registry();
        let report = BatchExecutor::new(&registry).execute(&request);

        assert_eq!(report.answers.len(), 4);
        assert_eq!(report.weighted(0).unwrap().placement.value, 3.0);
        assert_eq!(report.colored(1).unwrap().placement.distinct, 3);
        assert_eq!(report.weighted(2).unwrap().placement.value, 3.0);
        assert!(matches!(
            report.answers[3].error(),
            Some(EngineError::UnknownSolver { name }) if name == "no-such-solver"
        ));
        assert_eq!(report.stats.queries, 4);
        assert_eq!(report.stats.failed, 1);
        assert_eq!(report.stats.certified, 3);
        assert_eq!(report.stats.certify_failures, 0);
        assert!(report.stats.queries_per_sec() > 0.0);
    }

    #[test]
    fn serial_and_parallel_runs_agree() {
        let mut request = BatchRequest::over_points(planar_points());
        for i in 0..32 {
            let radius = 0.5 + 0.05 * i as f64;
            request.push(BatchQuery::weighted("exact-disk-2d", RangeShape::ball(radius)));
        }
        let registry = registry();
        let serial = BatchExecutor::with_config(
            &registry,
            ExecutorConfig { threads: Some(1), certify: true },
        )
        .execute(&request);
        let parallel = BatchExecutor::with_config(
            &registry,
            ExecutorConfig { threads: Some(4), certify: true },
        )
        .execute(&request);
        assert_eq!(serial.stats.threads, 1);
        assert_eq!(parallel.stats.threads, 4);
        for i in 0..request.len() {
            assert_eq!(
                serial.weighted(i).unwrap().placement.value,
                parallel.weighted(i).unwrap().placement.value,
                "query {i} disagrees between serial and parallel runs"
            );
        }
        assert_eq!(parallel.stats.certify_failures, 0);
    }

    #[test]
    fn shape_mismatches_fail_per_query_not_per_batch() {
        let request = BatchRequest::over_points(planar_points())
            .with_query(BatchQuery::weighted("exact-disk-2d", RangeShape::rect(1.0, 1.0)))
            .with_query(BatchQuery::weighted("exact-disk-2d", RangeShape::ball(1.0)));
        let registry = registry();
        let report = BatchExecutor::new(&registry).execute(&request);
        assert!(matches!(report.answers[0].error(), Some(EngineError::UnsupportedShape { .. })));
        assert_eq!(report.weighted(1).unwrap().placement.value, 3.0);
        assert_eq!(report.stats.failed, 1);
    }

    #[test]
    fn shared_index_structures_are_built_once_per_radius() {
        let points: Arc<[WeightedPoint<1>]> = (0..64)
            .map(|i| WeightedPoint::new(Point::new([i as f64 * 0.25]), 1.0 + (i % 3) as f64))
            .collect::<Vec<_>>()
            .into();
        let index = SharedIndex::new(Arc::clone(&points), Vec::new().into());
        assert_eq!(index.builds(), 0);
        // The line index (sorted event list + Fenwick) builds once.
        let total: f64 = points.iter().map(|p| p.weight).sum();
        assert!((index.interval_weight(-1.0, 1000.0) - total).abs() < 1e-9);
        assert!(
            (index.interval_weight(0.0, 0.5) - index.sorted_line().weight_in(0.0, 0.5)).abs()
                < 1e-12
        );
        assert_eq!(index.builds(), 2);
        // Ball queries build one grid per distinct radius, then reuse it.
        let _ = index.ball_weight(&Point::new([1.0]), 0.5);
        let _ = index.ball_weight(&Point::new([2.0]), 0.5);
        assert_eq!(index.builds(), 3);
        let _ = index.ball_weight(&Point::new([2.0]), 0.75);
        assert_eq!(index.builds(), 4);
        // Fenwick slab and grid ball agree in 1-D.
        let a = index.interval_weight(1.0, 3.0);
        let b = index.ball_weight(&Point::new([2.0]), 1.0);
        assert!((a - b).abs() < 1e-9, "{a} vs {b}");
    }

    #[test]
    fn certification_survives_large_coordinate_magnitudes() {
        // UTM/timestamp-scale coordinates: the reported center's rounding is
        // relative to ~1e6, far above any radius-relative tolerance.  The
        // optimal disk boundary passes through input points, so a
        // magnitude-blind recount drops them and flags exact answers.
        let base = 1.0e6;
        let points: Vec<WeightedPoint<2>> = [(0.0, 0.0), (0.5, 0.0), (0.0, 0.5), (4.0, 4.0)]
            .iter()
            .map(|&(x, y)| WeightedPoint::unit(Point2::xy(base + x, base + y)))
            .collect();
        let mut request = BatchRequest::over_points(points);
        for i in 0..50 {
            let radius = 0.5 + 0.01 * i as f64;
            request.push(BatchQuery::weighted("exact-disk-2d", RangeShape::ball(radius)));
        }
        let registry = registry();
        let report = BatchExecutor::new(&registry).execute(&request);
        assert!(report.all_ok());
        assert_eq!(
            report.stats.certify_failures, 0,
            "certification must tolerate magnitude-relative center rounding"
        );
        assert_eq!(report.stats.certified, 50);
    }

    #[test]
    fn weight_bounds_handle_boundary_and_signs() {
        let points: Arc<[WeightedPoint<1>]> = vec![
            WeightedPoint::new(Point::new([0.0]), 2.0),
            WeightedPoint::new(Point::new([1.0]), -1.0), // exactly on the hi endpoint
            WeightedPoint::new(Point::new([2.0]), 4.0),
        ]
        .into();
        let index = SharedIndex::new(Arc::clone(&points), Vec::new().into());
        let slack = 1e-9;
        // [0, 1]: the weight-2 point is definite; the -1 point sits on the
        // boundary, so it widens the bounds downward only.
        let (lo, hi) = index.interval_weight_bounds(0.0 - 0.5, 1.0, slack);
        assert!((lo - 1.0).abs() < 1e-9, "{lo}");
        assert!((hi - 2.0).abs() < 1e-9, "{hi}");
        // Ball version agrees in 1-D.
        let (blo, bhi) = index.ball_weight_bounds(&Point::new([0.25]), 0.75, slack);
        assert!((blo - 1.0).abs() < 1e-9, "{blo}");
        assert!((bhi - 2.0).abs() < 1e-9, "{bhi}");
    }

    #[test]
    fn empty_batch_reports_cleanly() {
        let request = BatchRequest::<2>::over_points(Vec::new());
        let registry = registry();
        let report = BatchExecutor::new(&registry).execute(&request);
        assert!(report.answers.is_empty());
        assert!(report.all_ok());
        assert_eq!(report.stats.queries, 0);
    }
}
