//! The batch executor: plan a [`BatchRequest`], build each shared spatial
//! index exactly once, and fan the queries out across a worker pool.
//!
//! ## Execution plan
//!
//! 1. **Plan** — queries are grouped by `(problem kind, solver name)` and
//!    every distinct solver is resolved from the [`Registry`] once.  Queries
//!    naming an unknown solver fail individually with
//!    [`EngineError::UnknownSolver`]; they never sink the batch.
//! 2. **Index** — a [`SharedIndex`] is created over the request's points and
//!    sites.  Its structures (the sorted event list + Fenwick tree of the
//!    1-D line, one hash grid per distinct query radius) are built lazily,
//!    each exactly once, and shared by every query in the batch.
//! 3. **Fan out** — solver groups whose descriptor declares
//!    [`BatchCapability::IndexShared`] become one task (the solver amortizes
//!    its build across the group via `solve_all`); independent solvers
//!    contribute one task per query.  Tasks run on `std::thread::scope`
//!    workers; no dependencies are spawned and nothing outlives the call.
//! 4. **Certify** — optionally, every successful answer is re-evaluated
//!    against the shared index (Fenwick range sum for 1-D intervals, hash
//!    grid for `d`-balls, a direct scan for boxes) and counted in
//!    [`BatchStats::certified`].  Solvers report *certified* values, so a
//!    mismatch means a contract violation and is tallied separately.
//!
//! [`BatchCapability::IndexShared`]: super::BatchCapability::IndexShared

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use mrs_geom::{ColoredSite, Point, WeightedPoint};

use super::batch::{BatchAnswer, BatchQuery, BatchReport, BatchRequest, BatchStats};
use super::cancel::{self, CancelToken};
use super::instance::{ColoredInstance, RangeShape, WeightedInstance};
use super::obs::{Phase, QueryTrace, TraceRecorder};
use super::registry::{Registry, SharedColoredSolver, SharedWeightedSolver};
use super::report::{Guarantee, SolveStats, SolverReport};
use super::versioned::{ScriptOutcome, ScriptReport, ScriptStep, VersionedDataset, VersionedView};
use super::{EngineError, PartialWork, ProblemKind};

pub use super::index::{AnswerIndex, SharedIndex};

/// One versioned answer: the answer itself, its per-answer certification
/// flag (`None` when certification is off or the query failed), and the
/// dataset version it was computed at.
pub type VersionedAnswer<const D: usize> = (BatchAnswer<D>, Option<bool>, u64);

/// Configuration of a [`BatchExecutor`].
#[derive(Clone, Copy, Debug)]
pub struct ExecutorConfig {
    /// Worker threads to fan out over.  `None` picks the machine's available
    /// parallelism, capped at 8; `Some(1)` forces a serial run.
    pub threads: Option<usize>,
    /// Re-evaluate every successful answer against the shared index and
    /// count the outcome in [`BatchStats::certified`] /
    /// [`BatchStats::certify_failures`].
    pub certify: bool,
    /// Wall-clock deadline for the whole call.  A [`cancel::CancelToken`]
    /// armed with it is installed around every task; solver hot loops poll
    /// it (amortized) and bail, and any task still running when it trips
    /// has its answers converted to
    /// [`EngineError::DeadlineExceeded`] with partial work counters.
    /// `None` (the default) disables cancellation entirely.
    pub deadline: Option<Instant>,
    /// Overload-degradation flag propagated to the `auto` router via the
    /// same thread-local scope (see [`cancel::degraded`]): when set, `auto`
    /// restricts its candidate set to predicted-cheap solvers and stamps
    /// the restriction into the answer's stats.
    pub degraded: bool,
}

impl Default for ExecutorConfig {
    fn default() -> Self {
        Self { threads: None, certify: true, deadline: None, degraded: false }
    }
}

/// One schedulable unit of work: either a whole index-sharing solver group
/// or a single independent query.
enum Task<const D: usize> {
    WeightedGroup {
        solver: SharedWeightedSolver<D>,
        base: WeightedInstance<D>,
        indices: Vec<usize>,
        shapes: Vec<RangeShape<D>>,
    },
    WeightedOne {
        solver: SharedWeightedSolver<D>,
        instance: WeightedInstance<D>,
        index: usize,
    },
    ColoredGroup {
        solver: SharedColoredSolver<D>,
        base: ColoredInstance<D>,
        indices: Vec<usize>,
        shapes: Vec<RangeShape<D>>,
    },
    ColoredOne {
        solver: SharedColoredSolver<D>,
        instance: ColoredInstance<D>,
        index: usize,
    },
}

impl<const D: usize> Task<D> {
    fn run(&self, index: &SharedIndex<D>, threads: usize) -> Vec<(usize, BatchAnswer<D>)> {
        match self {
            Task::WeightedGroup { solver, base, indices, shapes } => {
                let results = solver.solve_all(base, shapes, index, threads);
                indices
                    .iter()
                    .zip(results)
                    .map(|(&i, r)| {
                        (i, r.map(BatchAnswer::Weighted).unwrap_or_else(BatchAnswer::Failed))
                    })
                    .collect()
            }
            Task::WeightedOne { solver, instance, index: i } => {
                let answer = solver
                    .solve(instance)
                    .map(BatchAnswer::Weighted)
                    .unwrap_or_else(BatchAnswer::Failed);
                vec![(*i, answer)]
            }
            Task::ColoredGroup { solver, base, indices, shapes } => {
                let results = solver.solve_all(base, shapes, index, threads);
                indices
                    .iter()
                    .zip(results)
                    .map(|(&i, r)| {
                        (i, r.map(BatchAnswer::Colored).unwrap_or_else(BatchAnswer::Failed))
                    })
                    .collect()
            }
            Task::ColoredOne { solver, instance, index: i } => {
                let answer = solver
                    .solve(instance)
                    .map(BatchAnswer::Colored)
                    .unwrap_or_else(BatchAnswer::Failed);
                vec![(*i, answer)]
            }
        }
    }
}

/// Executes [`BatchRequest`]s against a [`Registry`].  See the
/// [module docs](self) for the execution plan.
pub struct BatchExecutor<'r> {
    registry: &'r Registry,
    config: ExecutorConfig,
}

impl<'r> BatchExecutor<'r> {
    /// An executor over `registry` with the default configuration.
    pub fn new(registry: &'r Registry) -> Self {
        Self::with_config(registry, ExecutorConfig::default())
    }

    /// An executor with an explicit configuration.
    pub fn with_config(registry: &'r Registry, config: ExecutorConfig) -> Self {
        Self { registry, config }
    }

    /// Answers every query of the request.  Individual queries fail with a
    /// typed error in their [`BatchAnswer`]; the batch itself always returns.
    ///
    /// The shared index lives exactly as long as this call; use
    /// [`Self::execute_with_index`] to amortize builds across many calls.
    pub fn execute<const D: usize>(&self, request: &BatchRequest<D>) -> BatchReport<D> {
        let index = SharedIndex::new(request.shared_points(), request.shared_sites());
        self.execute_with_index(request, &index)
    }

    /// Answers every query of the request against an externally-owned
    /// [`SharedIndex`] — the resident-dataset path: a catalog keeps one index
    /// per dataset, and every request reuses whatever structures earlier
    /// requests already built.
    ///
    /// The index must have been created over the *same shared point and site
    /// sets* the request carries (clone the request's `Arc`s, or build the
    /// request from [`SharedIndex::shared_points`] /
    /// [`SharedIndex::shared_sites`]); this is debug-asserted.  The report's
    /// [`BatchStats::index_builds`] / [`BatchStats::index_build_time`] count
    /// only the builds observed *during this call*, so a warmed-up index
    /// reports zero.  They are before/after snapshots of the index's
    /// monotone counters: when several calls share one resident index
    /// concurrently, a build triggered by one call can land in an
    /// overlapping call's delta too — use [`SharedIndex::builds`] (global,
    /// exact) for build-exactly-once assertions.
    pub fn execute_with_index<const D: usize>(
        &self,
        request: &BatchRequest<D>,
        index: &SharedIndex<D>,
    ) -> BatchReport<D> {
        self.execute_with_index_traced(request, index, &mut TraceRecorder::disabled())
    }

    /// [`Self::execute_with_index`], recording one phase-timed
    /// [`QueryTrace`] per query into `recorder` (a disabled recorder makes
    /// this identical to the untraced call).
    ///
    /// Phase attribution keeps per-trace sums below the batch wall time:
    /// the batch-level plan and index-build durations are split evenly
    /// across the batch's queries, each query's solver time is reduced by
    /// its index-build share (lazy builds run inside solver calls), and —
    /// only when tracing — certification is timed per answer.
    pub fn execute_with_index_traced<const D: usize>(
        &self,
        request: &BatchRequest<D>,
        index: &SharedIndex<D>,
        recorder: &mut TraceRecorder,
    ) -> BatchReport<D> {
        debug_assert!(
            std::ptr::eq(request.points().as_ptr(), index.points().as_ptr())
                && std::ptr::eq(request.sites().as_ptr(), index.sites().as_ptr()),
            "execute_with_index: the request must share the index's point/site sets"
        );
        let start = Instant::now();
        let builds_before = index.builds();
        let build_time_before = index.build_time();
        let mut answers: Vec<Option<BatchAnswer<D>>> = vec![None; request.len()];
        let plan_start = Instant::now();
        let tasks = self.plan(request, &mut answers);
        let plan_time = plan_start.elapsed();

        // The thread *budget* is what the caller configured (or the machine
        // offers); the executor fans at most one worker per task out and
        // grants each task the leftover budget for *internal* chunking, so
        // `--threads` accelerates a single expensive query too (an
        // index-shared group is one task).
        let budget = self
            .config
            .threads
            .unwrap_or_else(|| {
                std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4).min(8)
            })
            .max(1);
        let workers = budget.min(tasks.len().max(1));
        let inner_threads = (budget / workers).max(1);

        // One token for the whole call: installed around every task (and
        // re-installed inside chunked kernels' own scoped workers), polled
        // by the solver hot loops.  A task still running when it trips has
        // bailed early; its answers are converted to typed timeouts below.
        let token = self.config.deadline.map(CancelToken::with_deadline);
        if workers <= 1 {
            let _scope = cancel::install(token.clone(), self.config.degraded);
            for task in &tasks {
                let results = task.run(index, inner_threads);
                let expired = token.as_ref().is_some_and(CancelToken::is_cancelled);
                for (i, answer) in results {
                    answers[i] = Some(deadline_guard(answer, expired));
                }
            }
        } else {
            let next = AtomicUsize::new(0);
            let shared_answers = Mutex::new(&mut answers);
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    scope.spawn(|| {
                        let _scope = cancel::install(token.clone(), self.config.degraded);
                        loop {
                            let t = next.fetch_add(1, Ordering::Relaxed);
                            let Some(task) = tasks.get(t) else { break };
                            let results = task.run(index, inner_threads);
                            let expired = token.as_ref().is_some_and(CancelToken::is_cancelled);
                            let mut answers = shared_answers
                                .lock()
                                .unwrap_or_else(std::sync::PoisonError::into_inner);
                            for (i, answer) in results {
                                answers[i] = Some(deadline_guard(answer, expired));
                            }
                        }
                    });
                }
            });
        }

        let answers: Vec<BatchAnswer<D>> = answers
            .into_iter()
            .map(|a| {
                a.unwrap_or(BatchAnswer::Failed(EngineError::UnknownSolver {
                    name: "<unscheduled>".into(),
                }))
            })
            .collect();

        let mut stats = BatchStats {
            queries: request.len(),
            failed: answers.iter().filter(|a| !a.is_ok()).count(),
            threads: budget,
            solver_time: answers.iter().map(BatchAnswer::elapsed).sum(),
            candidates_examined: answers
                .iter()
                .filter_map(BatchAnswer::solve_stats)
                .filter_map(|s| s.candidates_examined)
                .sum(),
            grid_cells_visited: answers
                .iter()
                .filter_map(BatchAnswer::solve_stats)
                .filter_map(|s| s.grid_cells_visited)
                .sum(),
            sieve_rejected: answers
                .iter()
                .filter_map(BatchAnswer::solve_stats)
                .filter_map(|s| s.sieve_rejected)
                .sum(),
            auto_picks: answers
                .iter()
                .filter_map(BatchAnswer::solve_stats)
                .filter(|s| s.auto_choice.is_some())
                .count(),
            auto_predicted_work: answers
                .iter()
                .filter_map(BatchAnswer::solve_stats)
                .filter_map(|s| s.auto_predicted_work)
                .sum(),
            auto_actual_work: answers
                .iter()
                .filter_map(BatchAnswer::solve_stats)
                .filter_map(|s| s.auto_actual_work)
                .sum(),
            ..BatchStats::default()
        };
        // Untraced certification keeps the existing aggregate pass; the
        // traced variant times each answer individually and remembers the
        // per-answer verdicts for the trace.
        let mut certify_times: Vec<Duration> = Vec::new();
        let mut certify_flags: Vec<Option<bool>> = Vec::new();
        if self.config.certify {
            if recorder.is_enabled() {
                certify_times = Vec::with_capacity(answers.len());
                certify_flags = Vec::with_capacity(answers.len());
                for (query, answer) in request.queries().iter().zip(&answers) {
                    let t = Instant::now();
                    let verdict = certify_answer(index, query, answer);
                    certify_times.push(t.elapsed());
                    certify_flags.push(verdict);
                    match verdict {
                        None => {}
                        Some(true) => stats.certified += 1,
                        Some(false) => stats.certify_failures += 1,
                    }
                }
            } else {
                self.certify(request, &answers, index, &mut stats);
            }
        }
        stats.index_builds = index.builds() - builds_before;
        stats.index_build_time = index.build_time().saturating_sub(build_time_before);
        stats.wall = start.elapsed();
        if recorder.is_enabled() {
            let n = request.len().max(1) as u32;
            let plan_share = plan_time / n;
            let build_share = stats.index_build_time / n;
            for (i, (query, answer)) in request.queries().iter().zip(&answers).enumerate() {
                let mut trace = QueryTrace {
                    query: i,
                    solver: query.solver().to_string(),
                    shape: format!("{:?}", query.shape()),
                    ok: answer.is_ok(),
                    certified: certify_flags.get(i).copied().flatten(),
                    ..QueryTrace::default()
                };
                trace.set_phase(Phase::Plan, plan_share);
                trace.set_phase(Phase::IndexBuild, build_share);
                trace.set_phase(Phase::Solve, answer.elapsed().saturating_sub(build_share));
                if let Some(t) = certify_times.get(i) {
                    trace.set_phase(Phase::Certify, *t);
                }
                if let Some(s) = answer.solve_stats() {
                    trace.routed = s.auto_choice;
                    trace.candidates_examined = s.candidates_examined.unwrap_or(0);
                    trace.grid_cells_visited = s.grid_cells_visited.unwrap_or(0);
                    trace.sieve_rejected = s.sieve_rejected.unwrap_or(0);
                }
                trace.degraded = self.config.degraded;
                recorder.record(trace);
            }
        }
        BatchReport { answers, stats }
    }

    /// Answers queries against one **version** of an updatable dataset (see
    /// [`VersionedDataset`]): the current [`VersionedView`] is fetched once,
    /// queries run through its (incrementally derived) index, and — when the
    /// executor certifies — every answer is re-evaluated through the view's
    /// *delta overlay*, i.e. against exactly the version it was computed at.
    ///
    /// Queries naming a solver whose descriptor declares `dynamic` support
    /// (the Theorem 1.1 `dynamic-ball` tracker) are answered by the
    /// dataset's **incrementally maintained** sampling structure via
    /// [`VersionedDataset::dynamic_ball_best`] instead of a from-scratch
    /// build; their answers carry the version the tracker observed.
    ///
    /// Returns the view the batch ran at plus one
    /// [`VersionedAnswer`] per query; the certified flag is `None` when
    /// certification is off or the query failed.
    pub fn execute_versioned<const D: usize>(
        &self,
        dataset: &VersionedDataset<D>,
        queries: &[BatchQuery<D>],
    ) -> (VersionedView<D>, Vec<VersionedAnswer<D>>, BatchStats) {
        self.execute_versioned_traced(dataset, queries, &mut TraceRecorder::disabled())
    }

    /// [`Self::execute_versioned`], recording one phase-timed
    /// [`QueryTrace`] per query into `recorder` (one per tracker-answered
    /// query too); every trace carries the version its answer was computed
    /// at, and the overlay certification pass is timed per answer.
    pub fn execute_versioned_traced<const D: usize>(
        &self,
        dataset: &VersionedDataset<D>,
        queries: &[BatchQuery<D>],
        recorder: &mut TraceRecorder,
    ) -> (VersionedView<D>, Vec<VersionedAnswer<D>>, BatchStats) {
        let start = Instant::now();
        let view = dataset.view();
        let mut slots: Vec<Option<VersionedAnswer<D>>> = vec![None; queries.len()];
        let mut request = view.request();
        let mut engine_positions: Vec<usize> = Vec::new();
        // Tracker answers bypass the inner executor, so their time must be
        // folded into the batch statistics by hand.
        let mut tracker_time = Duration::ZERO;
        for (i, query) in queries.iter().enumerate() {
            if let Some(answer) = self.try_dynamic_tracker(dataset, query) {
                tracker_time += answer.0.elapsed();
                if recorder.is_enabled() {
                    let mut trace = QueryTrace {
                        query: i,
                        solver: query.solver().to_string(),
                        shape: format!("{:?}", query.shape()),
                        ok: answer.0.is_ok(),
                        certified: answer.1,
                        version: answer.2,
                        ..QueryTrace::default()
                    };
                    trace.set_phase(Phase::Solve, answer.0.elapsed());
                    recorder.record(trace);
                }
                slots[i] = Some(answer);
            } else {
                engine_positions.push(i);
                request.push(query.clone());
            }
        }

        let mut stats;
        if engine_positions.is_empty() {
            stats = BatchStats::default();
        } else {
            // Certification must go through the overlay (never through
            // per-version grids), so the inner executor runs uncertified and
            // the per-answer pass below does the work.
            let inner = BatchExecutor::with_config(
                self.registry,
                ExecutorConfig { certify: false, ..self.config },
            );
            let index = view.index();
            let mut inner_recorder = if recorder.is_enabled() {
                TraceRecorder::new()
            } else {
                TraceRecorder::disabled()
            };
            let report = inner.execute_with_index_traced(&request, &index, &mut inner_recorder);
            stats = report.stats;
            let mut inner_traces = inner_recorder.take();
            for (pos, ((&i, answer), query)) in
                engine_positions.iter().zip(report.answers).zip(request.queries()).enumerate()
            {
                let t = Instant::now();
                let certified = (self.config.certify && answer.is_ok())
                    .then(|| certify_answer(&view, query, &answer) == Some(true));
                if let Some(trace) = inner_traces.get_mut(pos) {
                    trace.query = i;
                    trace.version = view.version();
                    trace.certified = certified;
                    trace.set_phase(Phase::Certify, t.elapsed());
                }
                slots[i] = Some((answer, certified, view.version()));
            }
            for trace in inner_traces {
                recorder.record(trace);
            }
        }
        let answers: Vec<VersionedAnswer<D>> =
            slots.into_iter().map(|slot| slot.expect("every query answered")).collect();
        stats.queries = queries.len();
        stats.failed = answers.iter().filter(|(a, _, _)| !a.is_ok()).count();
        stats.solver_time += tracker_time;
        stats.wall = start.elapsed();
        if self.config.certify {
            stats.certified = answers.iter().filter(|(_, c, _)| *c == Some(true)).count();
            stats.certify_failures = answers.iter().filter(|(_, c, _)| *c == Some(false)).count();
        }
        (view, answers, stats)
    }

    /// Executes an interleaved update/query **script** against a versioned
    /// dataset: consecutive queries form one amortized segment answered at
    /// the then-current version (through [`Self::execute_versioned`], so
    /// every answer is certified against the version it was computed at),
    /// and each mutation bumps the version between segments.
    pub fn execute_script<const D: usize>(
        &self,
        dataset: &VersionedDataset<D>,
        steps: &[ScriptStep<D>],
    ) -> ScriptReport<D> {
        self.execute_script_traced(dataset, steps, &mut TraceRecorder::disabled())
    }

    /// [`Self::execute_script`], recording one phase-timed [`QueryTrace`]
    /// per query step into `recorder`.  Each trace's `query` field is the
    /// query's **step position** in the script, so traces line up with the
    /// report's outcomes.
    pub fn execute_script_traced<const D: usize>(
        &self,
        dataset: &VersionedDataset<D>,
        steps: &[ScriptStep<D>],
        recorder: &mut TraceRecorder,
    ) -> ScriptReport<D> {
        let mut outcomes: Vec<ScriptOutcome<D>> = Vec::with_capacity(steps.len());
        let mut stats = BatchStats::default();
        let mut updates = 0usize;
        let mut pending: Vec<BatchQuery<D>> = Vec::new();
        let flush = |pending: &mut Vec<BatchQuery<D>>,
                     outcomes: &mut Vec<ScriptOutcome<D>>,
                     stats: &mut BatchStats,
                     recorder: &mut TraceRecorder| {
            if pending.is_empty() {
                return;
            }
            // Segment-local trace indices become script step positions: the
            // segment's queries occupy the step slots right after the
            // outcomes already emitted.
            let base = outcomes.len();
            let mark = recorder.traces().len();
            let (_, answers, segment) = self.execute_versioned_traced(dataset, pending, recorder);
            for trace in &mut recorder.traces_mut()[mark..] {
                trace.query += base;
            }
            for (answer, certified, version) in answers {
                outcomes.push(ScriptOutcome::Answer { version, certified, answer });
            }
            merge_stats(stats, &segment);
            pending.clear();
        };
        for step in steps {
            match step {
                ScriptStep::Query(query) => pending.push(query.clone()),
                ScriptStep::Mutate(mutation) => {
                    flush(&mut pending, &mut outcomes, &mut stats, recorder);
                    let report = dataset.apply(std::slice::from_ref(mutation));
                    updates += 1;
                    outcomes.push(ScriptOutcome::Mutated {
                        version: report.version,
                        outcome: report.outcome,
                        compacted: report.compacted,
                    });
                }
            }
        }
        flush(&mut pending, &mut outcomes, &mut stats, recorder);
        ScriptReport { outcomes, stats, updates, final_version: dataset.version() }
    }

    /// Answers one query through the dataset's resident dynamic tracker, if
    /// the named solver declares incremental-update support and the tracker
    /// path applies (weighted ball query, non-negative weights).  Returns
    /// `None` to fall through to the ordinary engine dispatch.
    fn try_dynamic_tracker<const D: usize>(
        &self,
        dataset: &VersionedDataset<D>,
        query: &BatchQuery<D>,
    ) -> Option<VersionedAnswer<D>> {
        let BatchQuery::Weighted { solver, shape } = query else { return None };
        let radius = shape.ball_radius()?;
        let resolved = self.registry.weighted::<D>(solver)?;
        if !resolved.descriptor().dynamic {
            return None;
        }
        let start = Instant::now();
        let config = self.registry.config().sampling;
        let (view, placement) = dataset.dynamic_ball_best(radius, &config)?;
        let report = SolverReport {
            solver: resolved.descriptor().name,
            placement,
            guarantee: Guarantee::HalfMinusEps { eps: config.eps },
            stats: SolveStats { elapsed: start.elapsed(), ..SolveStats::default() },
        };
        let answer = BatchAnswer::Weighted(report);
        let certified =
            self.config.certify.then(|| certify_answer(&view, query, &answer) == Some(true));
        Some((answer, certified, view.version()))
    }

    /// Groups queries per `(problem, solver)`, resolves each solver once,
    /// fails unknown names in place, and emits one task per index-sharing
    /// group or per independent query.
    fn plan<const D: usize>(
        &self,
        request: &BatchRequest<D>,
        answers: &mut [Option<BatchAnswer<D>>],
    ) -> Vec<Task<D>> {
        struct Group<const D: usize> {
            kind: ProblemKind,
            name: String,
            indices: Vec<usize>,
            shapes: Vec<RangeShape<D>>,
        }
        let mut order: Vec<Group<D>> = Vec::new();
        let mut by_key: HashMap<(ProblemKind, String), usize> = HashMap::new();
        for (i, query) in request.queries().iter().enumerate() {
            let kind = match query {
                BatchQuery::Weighted { .. } => ProblemKind::Weighted,
                BatchQuery::Colored { .. } => ProblemKind::Colored,
            };
            let slot = *by_key.entry((kind, query.solver().to_string())).or_insert_with(|| {
                order.push(Group {
                    kind,
                    name: query.solver().to_string(),
                    indices: Vec::new(),
                    shapes: Vec::new(),
                });
                order.len() - 1
            });
            order[slot].indices.push(i);
            order[slot].shapes.push(*query.shape());
        }

        let mut tasks: Vec<Task<D>> = Vec::new();
        for group in order {
            match group.kind {
                ProblemKind::Weighted => match self.registry.weighted::<D>(&group.name) {
                    None => fail_group(answers, &group.indices, &group.name),
                    Some(solver) => {
                        let base =
                            WeightedInstance::from_shared(request.shared_points(), group.shapes[0]);
                        if solver.descriptor().batch.is_shared() {
                            tasks.push(Task::WeightedGroup {
                                solver,
                                base,
                                indices: group.indices,
                                shapes: group.shapes,
                            });
                        } else {
                            for (&i, shape) in group.indices.iter().zip(&group.shapes) {
                                tasks.push(Task::WeightedOne {
                                    solver: Arc::clone(&solver),
                                    instance: base.with_shape(*shape),
                                    index: i,
                                });
                            }
                        }
                    }
                },
                ProblemKind::Colored => match self.registry.colored::<D>(&group.name) {
                    None => fail_group(answers, &group.indices, &group.name),
                    Some(solver) => {
                        let base =
                            ColoredInstance::from_shared(request.shared_sites(), group.shapes[0]);
                        if solver.descriptor().batch.is_shared() {
                            tasks.push(Task::ColoredGroup {
                                solver,
                                base,
                                indices: group.indices,
                                shapes: group.shapes,
                            });
                        } else {
                            for (&i, shape) in group.indices.iter().zip(&group.shapes) {
                                tasks.push(Task::ColoredOne {
                                    solver: Arc::clone(&solver),
                                    instance: base.with_shape(*shape),
                                    index: i,
                                });
                            }
                        }
                    }
                },
            }
        }
        tasks
    }

    /// Re-evaluates every successful answer through the shared index and
    /// tallies agreement.  Solvers certify their reported values (the value
    /// is the true quality of the returned center), so disagreement counts
    /// as a `certify_failures` contract violation.
    fn certify<const D: usize>(
        &self,
        request: &BatchRequest<D>,
        answers: &[BatchAnswer<D>],
        index: &SharedIndex<D>,
        stats: &mut BatchStats,
    ) {
        for (query, answer) in request.queries().iter().zip(answers) {
            match certify_answer(index, query, answer) {
                None => {}
                Some(true) => stats.certified += 1,
                Some(false) => stats.certify_failures += 1,
            }
        }
    }
}

/// Accumulates one query segment's statistics into a script-level total.
fn merge_stats(total: &mut BatchStats, segment: &BatchStats) {
    total.queries += segment.queries;
    total.failed += segment.failed;
    total.threads = total.threads.max(segment.threads);
    total.index_builds += segment.index_builds;
    total.index_build_time += segment.index_build_time;
    total.wall += segment.wall;
    total.solver_time += segment.solver_time;
    total.certified += segment.certified;
    total.certify_failures += segment.certify_failures;
    total.candidates_examined += segment.candidates_examined;
    total.grid_cells_visited += segment.grid_cells_visited;
    total.sieve_rejected += segment.sieve_rejected;
    total.auto_picks += segment.auto_picks;
    total.auto_predicted_work += segment.auto_predicted_work;
    total.auto_actual_work += segment.auto_actual_work;
}

/// Re-evaluates one answer against an index: `Some(true)` when the
/// reported value lies within the index's recount bounds, `Some(false)` on
/// a solver-contract violation, `None` for failed answers (nothing to
/// check).  The index must cover the point/site sets the query ran against
/// — a [`SharedIndex`] for immutable snapshots, a
/// [`VersionedView`] for one version of an updatable dataset (whose bounds
/// go through the delta overlay, so no structure is rebuilt to certify);
/// box queries (which have no shared structure) scan the index's points and
/// sites directly.
///
/// This is the per-answer form of the executor's batch certification — the
/// serving layer uses it to stamp each answer individually before caching
/// it, so one bad answer in a batch cannot mislabel its neighbors.
pub fn certify_answer<const D: usize, I: AnswerIndex<D> + ?Sized>(
    index: &I,
    query: &BatchQuery<D>,
    answer: &BatchAnswer<D>,
) -> Option<bool> {
    // Boundary membership is only re-decidable up to the rounding the
    // reported center carries, which is relative to the coordinate
    // magnitude — not to the query radius.
    let slack = 1e-9 * (1.0 + index.coord_scale());
    Some(match answer {
        BatchAnswer::Failed(_) => return None,
        BatchAnswer::Weighted(report) => {
            let center = &report.placement.center;
            let (lo, hi) = match query.shape() {
                RangeShape::Ball { radius } if D == 1 => {
                    index.interval_weight_bounds(center[0] - radius, center[0] + radius, slack)
                }
                RangeShape::Ball { radius } => index.ball_weight_bounds(center, *radius, slack),
                RangeShape::AxisBox { extents } => {
                    box_weight_bounds(index.points(), center, extents, slack)
                }
            };
            let want = report.placement.value;
            let tol = 1e-6 * (1.0 + want.abs());
            want >= lo - tol && want <= hi + tol
        }
        BatchAnswer::Colored(report) => {
            let center = &report.placement.center;
            let (lo, hi) = match query.shape() {
                RangeShape::Ball { radius } => index.ball_distinct_bounds(center, *radius, slack),
                RangeShape::AxisBox { extents } => {
                    box_distinct_bounds(index.sites(), center, extents, slack)
                }
            };
            let want = report.placement.distinct;
            want >= lo && want <= hi
        }
    })
}

/// Classifies a point against a slack-widened box: `None` when definitely
/// outside, `Some(false)` when definitely inside, `Some(true)` when within
/// `slack` of the boundary.
fn box_membership<const D: usize>(
    point: &Point<D>,
    center: &Point<D>,
    extents: &[f64; D],
    slack: f64,
) -> Option<bool> {
    let mut boundary = false;
    for i in 0..D {
        let d = (point[i] - center[i]).abs();
        let half = extents[i] / 2.0;
        if d > half + slack {
            return None;
        }
        if d > half - slack {
            boundary = true;
        }
    }
    Some(boundary)
}

/// Lower/upper bounds on the weight inside a slack-widened box (direct scan;
/// box queries have no shared index).
fn box_weight_bounds<const D: usize>(
    points: &[WeightedPoint<D>],
    center: &Point<D>,
    extents: &[f64; D],
    slack: f64,
) -> (f64, f64) {
    let mut definite = 0.0;
    let mut neg = 0.0;
    let mut pos = 0.0;
    for wp in points {
        match box_membership(&wp.point, center, extents, slack) {
            None => {}
            Some(false) => definite += wp.weight,
            Some(true) => {
                if wp.weight < 0.0 {
                    neg += wp.weight;
                } else {
                    pos += wp.weight;
                }
            }
        }
    }
    (definite + neg, definite + pos)
}

/// Lower/upper bounds on the distinct colors inside a slack-widened box.
fn box_distinct_bounds<const D: usize>(
    sites: &[ColoredSite<D>],
    center: &Point<D>,
    extents: &[f64; D],
    slack: f64,
) -> (usize, usize) {
    let mut definite: Vec<usize> = Vec::new();
    let mut boundary: Vec<usize> = Vec::new();
    for s in sites {
        match box_membership(&s.point, center, extents, slack) {
            None => {}
            Some(false) => definite.push(s.color),
            Some(true) => boundary.push(s.color),
        }
    }
    definite.sort_unstable();
    definite.dedup();
    let lo = definite.len();
    let mut all = definite;
    all.extend(boundary);
    all.sort_unstable();
    all.dedup();
    (lo, all.len())
}

/// Converts a task's answers into typed timeouts when the call's deadline
/// tripped while the task ran: a kernel that bailed out of its sweep
/// returns a best-so-far *partial* placement, and letting that through as a
/// successful answer would mislabel an incomplete search as a complete one.
/// The partial work counters ride along so callers can see how far the
/// sweep got.  Already-failed answers keep their original error.
fn deadline_guard<const D: usize>(answer: BatchAnswer<D>, expired: bool) -> BatchAnswer<D> {
    if !expired {
        return answer;
    }
    let (solver, stats) = match &answer {
        BatchAnswer::Weighted(report) => (report.solver, &report.stats),
        BatchAnswer::Colored(report) => (report.solver, &report.stats),
        BatchAnswer::Failed(_) => return answer,
    };
    BatchAnswer::Failed(EngineError::DeadlineExceeded {
        solver: solver.to_string(),
        partial: PartialWork {
            candidates_examined: stats.candidates_examined.unwrap_or(0),
            grid_cells_visited: stats.grid_cells_visited.unwrap_or(0),
            elapsed_us: stats.elapsed.as_micros() as u64,
        },
    })
}

fn fail_group<const D: usize>(
    answers: &mut [Option<BatchAnswer<D>>],
    indices: &[usize],
    name: &str,
) {
    for &i in indices {
        answers[i] =
            Some(BatchAnswer::Failed(EngineError::UnknownSolver { name: name.to_string() }));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::registry;
    use mrs_geom::Point2;

    fn planar_points() -> Vec<WeightedPoint<2>> {
        vec![
            WeightedPoint::unit(Point2::xy(0.0, 0.0)),
            WeightedPoint::unit(Point2::xy(0.5, 0.0)),
            WeightedPoint::unit(Point2::xy(0.0, 0.5)),
            WeightedPoint::unit(Point2::xy(9.0, 9.0)),
        ]
    }

    fn planar_sites() -> Vec<ColoredSite<2>> {
        vec![
            ColoredSite::new(Point2::xy(0.0, 0.0), 0),
            ColoredSite::new(Point2::xy(0.4, 0.0), 1),
            ColoredSite::new(Point2::xy(0.0, 0.4), 2),
            ColoredSite::new(Point2::xy(9.0, 9.0), 0),
        ]
    }

    #[test]
    fn mixed_batch_answers_in_request_order() {
        let request = BatchRequest::new(planar_points(), planar_sites())
            .with_query(BatchQuery::weighted("exact-disk-2d", RangeShape::ball(1.0)))
            .with_query(BatchQuery::colored("output-sensitive-colored-disk", RangeShape::ball(1.0)))
            .with_query(BatchQuery::weighted("exact-rect-2d", RangeShape::rect(1.0, 1.0)))
            .with_query(BatchQuery::weighted("no-such-solver", RangeShape::ball(1.0)));
        let registry = registry();
        let report = BatchExecutor::new(&registry).execute(&request);

        assert_eq!(report.answers.len(), 4);
        assert_eq!(report.weighted(0).unwrap().placement.value, 3.0);
        assert_eq!(report.colored(1).unwrap().placement.distinct, 3);
        assert_eq!(report.weighted(2).unwrap().placement.value, 3.0);
        assert!(matches!(
            report.answers[3].error(),
            Some(EngineError::UnknownSolver { name }) if name == "no-such-solver"
        ));
        assert_eq!(report.stats.queries, 4);
        assert_eq!(report.stats.failed, 1);
        assert_eq!(report.stats.certified, 3);
        assert_eq!(report.stats.certify_failures, 0);
        assert!(report.stats.queries_per_sec() > 0.0);
    }

    #[test]
    fn serial_and_parallel_runs_agree() {
        let mut request = BatchRequest::over_points(planar_points());
        for i in 0..32 {
            let radius = 0.5 + 0.05 * i as f64;
            request.push(BatchQuery::weighted("exact-disk-2d", RangeShape::ball(radius)));
        }
        let registry = registry();
        let serial = BatchExecutor::with_config(
            &registry,
            ExecutorConfig { threads: Some(1), ..ExecutorConfig::default() },
        )
        .execute(&request);
        let parallel = BatchExecutor::with_config(
            &registry,
            ExecutorConfig { threads: Some(4), ..ExecutorConfig::default() },
        )
        .execute(&request);
        assert_eq!(serial.stats.threads, 1);
        assert_eq!(parallel.stats.threads, 4);
        for i in 0..request.len() {
            assert_eq!(
                serial.weighted(i).unwrap().placement.value,
                parallel.weighted(i).unwrap().placement.value,
                "query {i} disagrees between serial and parallel runs"
            );
        }
        assert_eq!(parallel.stats.certify_failures, 0);
    }

    #[test]
    fn shape_mismatches_fail_per_query_not_per_batch() {
        let request = BatchRequest::over_points(planar_points())
            .with_query(BatchQuery::weighted("exact-disk-2d", RangeShape::rect(1.0, 1.0)))
            .with_query(BatchQuery::weighted("exact-disk-2d", RangeShape::ball(1.0)));
        let registry = registry();
        let report = BatchExecutor::new(&registry).execute(&request);
        assert!(matches!(report.answers[0].error(), Some(EngineError::UnsupportedShape { .. })));
        assert_eq!(report.weighted(1).unwrap().placement.value, 3.0);
        assert_eq!(report.stats.failed, 1);
    }

    #[test]
    fn certification_survives_large_coordinate_magnitudes() {
        // UTM/timestamp-scale coordinates: the reported center's rounding is
        // relative to ~1e6, far above any radius-relative tolerance.  The
        // optimal disk boundary passes through input points, so a
        // magnitude-blind recount drops them and flags exact answers.
        let base = 1.0e6;
        let points: Vec<WeightedPoint<2>> = [(0.0, 0.0), (0.5, 0.0), (0.0, 0.5), (4.0, 4.0)]
            .iter()
            .map(|&(x, y)| WeightedPoint::unit(Point2::xy(base + x, base + y)))
            .collect();
        let mut request = BatchRequest::over_points(points);
        for i in 0..50 {
            let radius = 0.5 + 0.01 * i as f64;
            request.push(BatchQuery::weighted("exact-disk-2d", RangeShape::ball(radius)));
        }
        let registry = registry();
        let report = BatchExecutor::new(&registry).execute(&request);
        assert!(report.all_ok());
        assert_eq!(
            report.stats.certify_failures, 0,
            "certification must tolerate magnitude-relative center rounding"
        );
        assert_eq!(report.stats.certified, 50);
    }

    #[test]
    fn empty_batch_reports_cleanly() {
        let request = BatchRequest::<2>::over_points(Vec::new());
        let registry = registry();
        let report = BatchExecutor::new(&registry).execute(&request);
        assert!(report.answers.is_empty());
        assert!(report.all_ok());
        assert_eq!(report.stats.queries, 0);
    }

    #[test]
    fn scripts_interleave_updates_and_certified_queries() {
        use super::super::versioned::{Mutation, ScriptStep, VersionedDataset};
        let dataset = VersionedDataset::new(planar_points(), planar_sites());
        let registry = registry();
        let executor = BatchExecutor::new(&registry);
        let steps = vec![
            ScriptStep::Query(BatchQuery::weighted("exact-disk-2d", RangeShape::ball(1.0))),
            ScriptStep::Mutate(Mutation::Insert {
                point: WeightedPoint::new(Point2::xy(0.25, 0.25), 5.0),
                color: Some(3),
            }),
            ScriptStep::Query(BatchQuery::weighted("exact-disk-2d", RangeShape::ball(1.0))),
            ScriptStep::Query(BatchQuery::colored(
                "output-sensitive-colored-disk",
                RangeShape::ball(1.0),
            )),
            ScriptStep::Mutate(Mutation::Delete { point: Point2::xy(0.25, 0.25) }),
            ScriptStep::Query(BatchQuery::weighted("exact-disk-2d", RangeShape::ball(1.0))),
        ];
        let report = executor.execute_script(&dataset, &steps);
        assert_eq!(report.outcomes.len(), 6);
        assert_eq!(report.updates, 2);
        assert_eq!(report.final_version, 3);
        assert!(report.all_ok());
        // Every answer is certified against the version it was computed at.
        let versions: Vec<u64> = report.outcomes.iter().map(|o| o.version()).collect();
        assert_eq!(versions, vec![1, 2, 2, 2, 3, 3]);
        for outcome in &report.outcomes {
            if outcome.answer().is_some() {
                assert_eq!(outcome.certified(), Some(true), "{outcome:?}");
            }
        }
        // The insert raised the disk optimum from 3 to 8; the delete
        // restored it.
        let values: Vec<f64> = report
            .outcomes
            .iter()
            .filter_map(ScriptOutcome::answer)
            .filter_map(BatchAnswer::weighted)
            .map(|r| r.placement.value)
            .collect();
        assert_eq!(values, vec![3.0, 8.0, 3.0]);
        // The colored query saw the inserted site (colors 0,1,2,3).
        let colored = report
            .outcomes
            .iter()
            .filter_map(ScriptOutcome::answer)
            .find_map(BatchAnswer::colored)
            .expect("one colored answer");
        assert_eq!(colored.placement.distinct, 4);
        assert_eq!(report.stats.certify_failures, 0);
        assert_eq!(report.stats.certified, 4);
    }

    #[test]
    fn dynamic_solver_routes_through_the_maintained_tracker() {
        use super::super::versioned::{Mutation, ScriptStep, VersionedDataset};
        let dataset = VersionedDataset::new(planar_points(), Vec::new());
        let registry = registry();
        let executor = BatchExecutor::new(&registry);
        let steps = vec![
            ScriptStep::Query(BatchQuery::weighted("dynamic-ball", RangeShape::ball(1.0))),
            ScriptStep::Mutate(Mutation::Insert {
                point: WeightedPoint::new(Point2::xy(9.1, 9.0), 10.0),
                color: None,
            }),
            ScriptStep::Query(BatchQuery::weighted("dynamic-ball", RangeShape::ball(1.0))),
        ];
        let report = executor.execute_script(&dataset, &steps);
        assert!(report.all_ok());
        let values: Vec<f64> = report
            .outcomes
            .iter()
            .filter_map(ScriptOutcome::answer)
            .filter_map(BatchAnswer::weighted)
            .map(|r| r.placement.value)
            .collect();
        // The tracker follows the update: the heavy insert near (9, 9)
        // makes that cluster the best (10 + 1 = 11) under the (1/2 − ε)
        // guarantee; values are exact recounts of the returned center.
        assert_eq!(values.len(), 2);
        assert!(values[1] >= values[0], "{values:?}");
        assert!(values[1] >= 0.25 * 11.0, "{values:?}");
        for outcome in &report.outcomes {
            if outcome.answer().is_some() {
                assert_eq!(outcome.certified(), Some(true));
            }
        }
    }

    #[test]
    fn traced_batches_yield_one_bounded_trace_per_query() {
        let request = BatchRequest::new(planar_points(), planar_sites())
            .with_query(BatchQuery::weighted("exact-disk-2d", RangeShape::ball(1.0)))
            .with_query(BatchQuery::colored("output-sensitive-colored-disk", RangeShape::ball(1.0)))
            .with_query(BatchQuery::weighted("auto", RangeShape::ball(0.7)))
            .with_query(BatchQuery::weighted("no-such-solver", RangeShape::ball(1.0)));
        let registry = registry();
        let executor = BatchExecutor::new(&registry);
        let index = SharedIndex::new(request.shared_points(), request.shared_sites());
        let mut recorder = TraceRecorder::new();
        let report = executor.execute_with_index_traced(&request, &index, &mut recorder);

        assert_eq!(recorder.traces().len(), request.len(), "one trace per query");
        for (i, trace) in recorder.traces().iter().enumerate() {
            assert_eq!(trace.query, i);
            assert_eq!(trace.solver, request.queries()[i].solver());
            assert!(
                trace.phase_total() <= report.stats.wall,
                "query {i}: phases {:?} exceed wall {:?}",
                trace.phase_total(),
                report.stats.wall
            );
        }
        assert!(recorder.traces()[0].ok && recorder.traces()[0].certified == Some(true));
        assert!(recorder.traces()[2].routed.is_some(), "auto query records its routing");
        assert!(!recorder.traces()[3].ok);
        assert_eq!(recorder.traces()[3].certified, None);

        // The untraced call is behaviorally identical.
        let untraced = executor.execute_with_index(&request, &index);
        assert_eq!(untraced.stats.certified, report.stats.certified);
        assert_eq!(untraced.stats.failed, report.stats.failed);
    }

    #[test]
    fn traced_scripts_key_traces_by_step_position() {
        use super::super::versioned::{Mutation, ScriptStep, VersionedDataset};
        let dataset = VersionedDataset::new(planar_points(), Vec::new());
        let registry = registry();
        let executor = BatchExecutor::new(&registry);
        let steps = vec![
            ScriptStep::Query(BatchQuery::weighted("exact-disk-2d", RangeShape::ball(1.0))),
            ScriptStep::Query(BatchQuery::weighted("dynamic-ball", RangeShape::ball(1.0))),
            ScriptStep::Mutate(Mutation::Insert {
                point: WeightedPoint::new(Point2::xy(0.25, 0.25), 5.0),
                color: None,
            }),
            ScriptStep::Query(BatchQuery::weighted("exact-disk-2d", RangeShape::ball(1.0))),
        ];
        let mut recorder = TraceRecorder::new();
        let report = executor.execute_script_traced(&dataset, &steps, &mut recorder);
        assert!(report.all_ok());

        // Every query step has a trace keyed by its step position, stamped
        // with the version its answer was computed at, and its phase sum is
        // bounded by the script's accumulated wall time.
        let mut positions: Vec<usize> = recorder.traces().iter().map(|t| t.query).collect();
        positions.sort_unstable();
        assert_eq!(positions, vec![0, 1, 3]);
        for trace in recorder.traces() {
            let outcome = &report.outcomes[trace.query];
            assert_eq!(Some(trace.version), Some(outcome.version()));
            assert_eq!(trace.certified, outcome.certified());
            assert!(trace.phase_total() <= report.stats.wall);
        }
    }

    #[test]
    fn resident_index_amortizes_builds_across_calls() {
        // The serving path: one catalog-owned index, many requests.  The
        // first call builds the radius-1 grid; every later call over the same
        // shapes reports zero new builds and identical answers.
        let index = SharedIndex::new(planar_points().into(), planar_sites().into());
        let mut request = BatchRequest::from_shared(index.shared_points(), index.shared_sites());
        request.push(BatchQuery::weighted("exact-disk-2d", RangeShape::ball(1.0)));
        request.push(BatchQuery::colored("output-sensitive-colored-disk", RangeShape::ball(1.0)));

        let registry = registry();
        let executor = BatchExecutor::new(&registry);
        let first = executor.execute_with_index(&request, &index);
        assert!(first.all_ok());
        assert!(first.stats.index_builds > 0, "first call must build the shared structures");
        let builds_after_first = index.builds();

        for _ in 0..5 {
            let again = executor.execute_with_index(&request, &index);
            assert!(again.all_ok());
            assert_eq!(again.stats.index_builds, 0, "warm index must not rebuild");
            assert_eq!(
                again.weighted(0).unwrap().placement.value,
                first.weighted(0).unwrap().placement.value
            );
            assert_eq!(
                again.colored(1).unwrap().placement.distinct,
                first.colored(1).unwrap().placement.distinct
            );
        }
        assert_eq!(index.builds(), builds_after_first, "structures were built exactly once");
    }

    #[test]
    fn expired_deadlines_yield_typed_timeouts_with_partial_work() {
        let mut request = BatchRequest::over_points(planar_points());
        request.push(BatchQuery::weighted("exact-disk-2d", RangeShape::ball(1.0)));
        request.push(BatchQuery::weighted("exact-rect-2d", RangeShape::rect(1.0, 1.0)));
        let registry = registry();
        let executor = BatchExecutor::with_config(
            &registry,
            ExecutorConfig {
                deadline: Some(Instant::now() - std::time::Duration::from_millis(1)),
                ..ExecutorConfig::default()
            },
        );
        let report = executor.execute(&request);
        assert_eq!(report.stats.failed, 2, "every answer under an expired deadline fails");
        for answer in &report.answers {
            match answer.error() {
                Some(EngineError::DeadlineExceeded { solver, partial }) => {
                    assert!(!solver.is_empty());
                    let message = answer.error().unwrap().to_string();
                    assert!(message.contains("exceeded its deadline"), "{message}");
                    let _ = partial; // counters may be zero: the sweep bailed at entry
                }
                other => panic!("expected DeadlineExceeded, got {other:?}"),
            }
        }
    }

    #[test]
    fn unexpired_deadlines_leave_answers_intact() {
        let mut request = BatchRequest::over_points(planar_points());
        request.push(BatchQuery::weighted("exact-disk-2d", RangeShape::ball(1.0)));
        let registry = registry();
        let executor = BatchExecutor::with_config(
            &registry,
            ExecutorConfig {
                deadline: Some(Instant::now() + std::time::Duration::from_secs(3600)),
                ..ExecutorConfig::default()
            },
        );
        let report = executor.execute(&request);
        assert!(report.all_ok(), "a generous deadline changes nothing");
        assert_eq!(report.weighted(0).unwrap().placement.value, 3.0);
    }

    #[test]
    fn degraded_executor_routes_auto_away_from_exact_solvers() {
        let mut request = BatchRequest::over_points(planar_points());
        request.push(BatchQuery::weighted("auto", RangeShape::ball(1.0)));
        let registry = registry();
        let normal = BatchExecutor::new(&registry).execute(&request);
        assert!(normal.weighted(0).unwrap().stats.auto_choice.is_some());
        assert!(!normal.weighted(0).unwrap().stats.degraded);

        let degraded = BatchExecutor::with_config(
            &registry,
            ExecutorConfig { degraded: true, ..ExecutorConfig::default() },
        )
        .execute(&request);
        let report = degraded.weighted(0).unwrap();
        let choice = report.stats.auto_choice.unwrap();
        let routed = registry.weighted::<2>(choice).expect("the routed solver is registered");
        assert!(
            !routed.descriptor().guarantee.is_exact(),
            "degraded auto avoids the exact tier, got {choice}"
        );
        assert!(report.stats.degraded, "degradation is stamped into the stats");
    }
}
