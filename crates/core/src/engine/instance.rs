//! The engine's unified instance model.
//!
//! A MaxRS instance is a point set plus a query-range *shape*.  The shape
//! generalizes the per-algorithm parameters of the underlying entry points: a
//! [`RangeShape::Ball`] of radius `r` is an interval of length `2r` in 1-D
//! and a disk in 2-D, while a [`RangeShape::AxisBox`] covers the rectangle
//! sweeps.  Solvers declare which shape class they accept (see
//! [`super::SolverDescriptor`]) and reject mismatches with a typed error
//! instead of a panic, so a caller can probe the registry safely.

use std::sync::Arc;

use mrs_geom::{Ball, ColoredSite, Point, WeightedPoint};

use super::descriptor::ShapeClass;
use crate::input::{ColoredBallInstance, WeightedBallInstance};

/// The query range of an engine instance.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum RangeShape<const D: usize> {
    /// A `d`-ball of the given radius.
    Ball {
        /// Radius of the query ball (must be positive).
        radius: f64,
    },
    /// An axis-aligned box with the given side lengths, addressed by its
    /// center.
    AxisBox {
        /// Side length of the box along each axis (must be positive).
        extents: [f64; D],
    },
}

impl<const D: usize> RangeShape<D> {
    /// A ball shape.
    ///
    /// # Panics
    /// Panics unless the radius is finite and positive.
    pub fn ball(radius: f64) -> Self {
        assert!(radius.is_finite() && radius > 0.0, "query radius must be positive");
        RangeShape::Ball { radius }
    }

    /// An axis-aligned box shape.
    ///
    /// # Panics
    /// Panics unless every extent is finite and positive.
    pub fn axis_box(extents: [f64; D]) -> Self {
        for e in extents {
            assert!(e.is_finite() && e > 0.0, "box extents must be positive");
        }
        RangeShape::AxisBox { extents }
    }

    /// The shape's class, for capability matching.
    pub fn class(&self) -> ShapeClass {
        match self {
            RangeShape::Ball { .. } => ShapeClass::Ball,
            RangeShape::AxisBox { .. } => ShapeClass::AxisBox,
        }
    }

    /// The ball radius, if this is a ball shape.
    pub fn ball_radius(&self) -> Option<f64> {
        match self {
            RangeShape::Ball { radius } => Some(*radius),
            RangeShape::AxisBox { .. } => None,
        }
    }

    /// The box extents, if this is a box shape.
    pub fn box_extents(&self) -> Option<[f64; D]> {
        match self {
            RangeShape::Ball { .. } => None,
            RangeShape::AxisBox { extents } => Some(*extents),
        }
    }

    /// Is `point` covered by this range centered at `center`?  Ranges are
    /// closed, matching the underlying exact algorithms, and boundaries get
    /// the same small relative tolerance in both shapes: the optimal
    /// placement of an exact sweep always has points *on* its boundary, and
    /// the reported center carries rounding, so a strict comparison would
    /// drop exactly the points the optimum was built from.
    pub fn covers(&self, center: &Point<D>, point: &Point<D>) -> bool {
        match self {
            RangeShape::Ball { radius } => Ball::new(*center, *radius).contains(point),
            RangeShape::AxisBox { extents } => (0..D).all(|i| {
                let half = extents[i] / 2.0;
                (point[i] - center[i]).abs() <= half * (1.0 + 1e-12) + 1e-12
            }),
        }
    }
}

impl RangeShape<1> {
    /// The 1-D interval of the given length (a ball of radius `len/2`).
    pub fn interval(len: f64) -> Self {
        RangeShape::<1>::ball(len / 2.0)
    }
}

impl RangeShape<2> {
    /// The planar `width × height` rectangle.
    pub fn rect(width: f64, height: f64) -> Self {
        RangeShape::<2>::axis_box([width, height])
    }
}

/// A weighted MaxRS instance: weighted points plus a query-range shape.
///
/// The point set is stored behind an [`Arc`], so cloning an instance — or
/// deriving a sibling with a different shape via [`Self::with_shape`] — is
/// `O(1)` and shares the underlying points.  The batch executor
/// ([`super::executor`]) relies on this to fan hundreds of query shapes out
/// over one point set without copying it per query.
#[derive(Clone, Debug)]
pub struct WeightedInstance<const D: usize> {
    points: Arc<[WeightedPoint<D>]>,
    shape: RangeShape<D>,
}

impl<const D: usize> WeightedInstance<D> {
    /// Creates an instance.
    ///
    /// Negative weights are allowed at the instance level — the 1-D interval
    /// solvers (including the hardness-reduction gadgets of Section 5)
    /// support them — but most solvers require non-negative weights and
    /// refuse mixed-sign instances with a typed
    /// [`EngineError`](super::EngineError) (see
    /// [`SolverDescriptor::negative_weights`](super::SolverDescriptor)).
    ///
    /// # Panics
    /// Panics if any coordinate or weight is not finite.
    pub fn new(points: Vec<WeightedPoint<D>>, shape: RangeShape<D>) -> Self {
        Self::from_shared(points.into(), shape)
    }

    /// Creates an instance over an already-shared point set without copying
    /// it (the batch-execution path).
    ///
    /// # Panics
    /// Panics if any coordinate or weight is not finite.
    pub fn from_shared(points: Arc<[WeightedPoint<D>]>, shape: RangeShape<D>) -> Self {
        for wp in points.iter() {
            assert!(wp.point.is_finite(), "point coordinates must be finite");
            assert!(wp.weight.is_finite(), "weights must be finite");
        }
        Self { points, shape }
    }

    /// A sibling instance over the same (shared) points with a different
    /// query shape, in `O(1)`.
    pub fn with_shape(&self, shape: RangeShape<D>) -> Self {
        Self { points: Arc::clone(&self.points), shape }
    }

    /// The shared handle to the point set (cloning it is `O(1)`).
    pub fn shared_points(&self) -> Arc<[WeightedPoint<D>]> {
        Arc::clone(&self.points)
    }

    /// An instance with a ball range of the given radius.
    pub fn ball(points: Vec<WeightedPoint<D>>, radius: f64) -> Self {
        Self::new(points, RangeShape::ball(radius))
    }

    /// An instance with an axis-aligned box range of the given extents.
    pub fn axis_box(points: Vec<WeightedPoint<D>>, extents: [f64; D]) -> Self {
        Self::new(points, RangeShape::axis_box(extents))
    }

    /// The input points.
    pub fn points(&self) -> &[WeightedPoint<D>] {
        &self.points
    }

    /// The query-range shape.
    pub fn shape(&self) -> &RangeShape<D> {
        &self.shape
    }

    /// Number of input points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` if the instance has no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Total weight of all points (an upper bound on any placement value
    /// when weights are non-negative).
    pub fn total_weight(&self) -> f64 {
        self.points.iter().map(|p| p.weight).sum()
    }

    /// `true` if any point carries a negative weight (most solvers refuse
    /// such instances; the 1-D interval solvers accept them).
    pub fn has_negative_weights(&self) -> bool {
        self.points.iter().any(|p| p.weight < 0.0)
    }

    /// The exact covered weight of placing the range at `center`.
    pub fn value_at(&self, center: &Point<D>) -> f64 {
        self.points
            .iter()
            .filter(|wp| self.shape.covers(center, &wp.point))
            .map(|wp| wp.weight)
            .sum()
    }

    /// The ball-problem view of this instance, if the shape is a ball.
    pub fn as_ball_instance(&self) -> Option<WeightedBallInstance<D>> {
        let radius = self.shape.ball_radius()?;
        Some(WeightedBallInstance::new(self.points.to_vec(), radius))
    }
}

impl<const D: usize> From<WeightedBallInstance<D>> for WeightedInstance<D> {
    fn from(value: WeightedBallInstance<D>) -> Self {
        let radius = value.radius;
        Self::ball(value.points, radius)
    }
}

/// A colored MaxRS instance: colored sites plus a query-range shape.
///
/// Like [`WeightedInstance`], the site set is stored behind an [`Arc`]:
/// cloning and [`Self::with_shape`] are `O(1)` and share the sites.
#[derive(Clone, Debug)]
pub struct ColoredInstance<const D: usize> {
    sites: Arc<[ColoredSite<D>]>,
    shape: RangeShape<D>,
}

impl<const D: usize> ColoredInstance<D> {
    /// Creates an instance.
    ///
    /// # Panics
    /// Panics if any coordinate is not finite.
    pub fn new(sites: Vec<ColoredSite<D>>, shape: RangeShape<D>) -> Self {
        Self::from_shared(sites.into(), shape)
    }

    /// Creates an instance over an already-shared site set without copying
    /// it (the batch-execution path).
    ///
    /// # Panics
    /// Panics if any coordinate is not finite.
    pub fn from_shared(sites: Arc<[ColoredSite<D>]>, shape: RangeShape<D>) -> Self {
        for s in sites.iter() {
            assert!(s.point.is_finite(), "site coordinates must be finite");
        }
        Self { sites, shape }
    }

    /// A sibling instance over the same (shared) sites with a different
    /// query shape, in `O(1)`.
    pub fn with_shape(&self, shape: RangeShape<D>) -> Self {
        Self { sites: Arc::clone(&self.sites), shape }
    }

    /// The shared handle to the site set (cloning it is `O(1)`).
    pub fn shared_sites(&self) -> Arc<[ColoredSite<D>]> {
        Arc::clone(&self.sites)
    }

    /// An instance with a ball range of the given radius.
    pub fn ball(sites: Vec<ColoredSite<D>>, radius: f64) -> Self {
        Self::new(sites, RangeShape::ball(radius))
    }

    /// An instance with an axis-aligned box range of the given extents.
    pub fn axis_box(sites: Vec<ColoredSite<D>>, extents: [f64; D]) -> Self {
        Self::new(sites, RangeShape::axis_box(extents))
    }

    /// The input sites.
    pub fn sites(&self) -> &[ColoredSite<D>] {
        &self.sites
    }

    /// The query-range shape.
    pub fn shape(&self) -> &RangeShape<D> {
        &self.shape
    }

    /// Number of input sites.
    pub fn len(&self) -> usize {
        self.sites.len()
    }

    /// `true` if the instance has no sites.
    pub fn is_empty(&self) -> bool {
        self.sites.is_empty()
    }

    /// Number of distinct colors present in the input (an upper bound on any
    /// placement's distinct-color count).
    pub fn distinct_colors(&self) -> usize {
        let mut colors: Vec<usize> = self.sites.iter().map(|s| s.color).collect();
        colors.sort_unstable();
        colors.dedup();
        colors.len()
    }

    /// The exact number of distinct colors covered by placing the range at
    /// `center`.
    pub fn distinct_at(&self, center: &Point<D>) -> usize {
        let mut colors: Vec<usize> = self
            .sites
            .iter()
            .filter(|s| self.shape.covers(center, &s.point))
            .map(|s| s.color)
            .collect();
        colors.sort_unstable();
        colors.dedup();
        colors.len()
    }

    /// The ball-problem view of this instance, if the shape is a ball.
    pub fn as_ball_instance(&self) -> Option<ColoredBallInstance<D>> {
        let radius = self.shape.ball_radius()?;
        Some(ColoredBallInstance::new(self.sites.to_vec(), radius))
    }
}

impl<const D: usize> From<ColoredBallInstance<D>> for ColoredInstance<D> {
    fn from(value: ColoredBallInstance<D>) -> Self {
        let radius = value.radius;
        Self::ball(value.sites, radius)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrs_geom::Point2;

    #[test]
    fn shapes_cover_closed_ranges() {
        let ball = RangeShape::<2>::ball(1.0);
        assert!(ball.covers(&Point2::xy(0.0, 0.0), &Point2::xy(1.0, 0.0)));
        assert!(!ball.covers(&Point2::xy(0.0, 0.0), &Point2::xy(1.0, 0.5)));
        assert_eq!(ball.class(), ShapeClass::Ball);
        assert_eq!(ball.ball_radius(), Some(1.0));
        assert_eq!(ball.box_extents(), None);

        let rect = RangeShape::rect(2.0, 1.0);
        assert!(rect.covers(&Point2::xy(0.0, 0.0), &Point2::xy(1.0, 0.5)));
        assert!(!rect.covers(&Point2::xy(0.0, 0.0), &Point2::xy(1.1, 0.0)));
        assert_eq!(rect.class(), ShapeClass::AxisBox);
        assert_eq!(rect.box_extents(), Some([2.0, 1.0]));
    }

    #[test]
    fn interval_shape_is_a_half_length_ball() {
        let shape = RangeShape::interval(3.0);
        assert_eq!(shape.ball_radius(), Some(1.5));
    }

    #[test]
    fn weighted_instance_evaluation() {
        let inst = WeightedInstance::ball(
            vec![
                WeightedPoint::new(Point2::xy(0.0, 0.0), 2.0),
                WeightedPoint::new(Point2::xy(1.0, 0.0), 3.0),
                WeightedPoint::new(Point2::xy(10.0, 0.0), 5.0),
            ],
            2.0,
        );
        assert_eq!(inst.len(), 3);
        assert!(!inst.is_empty());
        assert_eq!(inst.total_weight(), 10.0);
        assert_eq!(inst.value_at(&Point2::xy(0.5, 0.0)), 5.0);
        let ball = inst.as_ball_instance().unwrap();
        assert_eq!(ball.radius, 2.0);

        let boxed =
            WeightedInstance::axis_box(vec![WeightedPoint::unit(Point2::xy(0.6, 0.0))], [1.0, 1.0]);
        assert_eq!(boxed.value_at(&Point2::xy(0.0, 0.0)), 0.0);
        assert_eq!(boxed.value_at(&Point2::xy(0.2, 0.0)), 1.0);
        assert!(boxed.as_ball_instance().is_none());
    }

    #[test]
    fn colored_instance_evaluation() {
        let inst = ColoredInstance::ball(
            vec![
                ColoredSite::new(Point2::xy(0.0, 0.0), 0),
                ColoredSite::new(Point2::xy(0.2, 0.0), 0),
                ColoredSite::new(Point2::xy(0.4, 0.0), 1),
                ColoredSite::new(Point2::xy(9.0, 9.0), 2),
            ],
            1.0,
        );
        assert_eq!(inst.distinct_colors(), 3);
        assert_eq!(inst.distinct_at(&Point2::xy(0.0, 0.0)), 2);
        assert_eq!(inst.as_ball_instance().unwrap().radius, 1.0);
    }

    #[test]
    #[should_panic(expected = "query radius must be positive")]
    fn rejects_non_positive_radius() {
        RangeShape::<2>::ball(0.0);
    }

    #[test]
    #[should_panic(expected = "box extents must be positive")]
    fn rejects_non_positive_extents() {
        RangeShape::<2>::axis_box([1.0, -1.0]);
    }

    #[test]
    fn with_shape_shares_points_in_o1() {
        let inst = WeightedInstance::ball(vec![WeightedPoint::unit(Point2::xy(0.0, 0.0))], 1.0);
        let sibling = inst.with_shape(RangeShape::rect(2.0, 2.0));
        assert!(Arc::ptr_eq(&inst.shared_points(), &sibling.shared_points()));
        assert_eq!(sibling.shape().box_extents(), Some([2.0, 2.0]));
        assert_eq!(inst.shape().ball_radius(), Some(1.0), "original shape untouched");

        let colored = ColoredInstance::ball(vec![ColoredSite::new(Point2::xy(0.0, 0.0), 1)], 1.0);
        let sibling = colored.with_shape(RangeShape::ball(3.0));
        assert!(Arc::ptr_eq(&colored.shared_sites(), &sibling.shared_sites()));
        assert_eq!(sibling.shape().ball_radius(), Some(3.0));
    }

    #[test]
    fn round_trips_with_ball_instance_types() {
        let inst = WeightedBallInstance::unweighted(vec![Point2::xy(0.0, 0.0)], 1.5);
        let engine: WeightedInstance<2> = inst.into();
        assert_eq!(engine.shape().ball_radius(), Some(1.5));

        let colored =
            ColoredBallInstance::new(vec![ColoredSite::new(Point2::xy(0.0, 0.0), 4)], 2.5);
        let engine: ColoredInstance<2> = colored.into();
        assert_eq!(engine.shape().ball_radius(), Some(2.5));
    }
}
