//! The solver engine: one dispatch surface for every MaxRS algorithm.
//!
//! The paper proves its results as a bouquet of loosely-related theorems, and
//! the crates mirror that: exact planar sweeps, the Technique 1 samplers, the
//! Technique 2 colored algorithms, and the batched 1-D solver each expose
//! their own entry point with its own signature.  The engine unifies them:
//!
//! * [`WeightedInstance`] / [`ColoredInstance`] — one instance model (points
//!   plus a [`RangeShape`]) covering intervals, rectangles, disks and
//!   `d`-balls;
//! * [`WeightedSolver`] / [`ColoredSolver`] — object-safe traits every
//!   algorithm implements, returning a [`SolverReport`] that carries the
//!   placement, its value or distinct-count, the [`Guarantee`] it was
//!   produced under, and timing/sample statistics;
//! * [`registry`] — enumerates the built-in solvers by name and capability
//!   ([`SolverDescriptor`]) so callers choose exact-vs-approx per workload;
//!   downstream crates register additional solvers (the batched 1-D solver in
//!   `mrs-batched` does) via [`Registry::register_weighted`].
//!
//! ```
//! use mrs_core::engine::{registry, WeightedInstance};
//! use mrs_geom::{Point2, WeightedPoint};
//!
//! let instance = WeightedInstance::ball(
//!     vec![
//!         WeightedPoint::unit(Point2::xy(0.0, 0.0)),
//!         WeightedPoint::unit(Point2::xy(0.5, 0.0)),
//!         WeightedPoint::unit(Point2::xy(9.0, 9.0)),
//!     ],
//!     1.0,
//! );
//! let solver = registry().weighted::<2>("exact-disk-2d").unwrap();
//! let report = solver.solve(&instance).unwrap();
//! assert_eq!(report.placement.value, 2.0);
//! assert!(report.guarantee.is_exact());
//! ```

mod auto;
pub mod batch;
pub mod cancel;
mod colored;
mod convert;
pub mod cost;
mod descriptor;
pub mod executor;
pub mod index;
mod instance;
pub mod metamorphic;
pub mod obs;
mod registry;
mod report;
pub mod versioned;
mod weighted;

pub use auto::{AutoColoredSolver, AutoWeightedSolver};
pub use batch::{BatchAnswer, BatchQuery, BatchReport, BatchRequest, BatchStats, LatencySummary};
pub use cancel::CancelToken;
pub use colored::{
    ColoredBallSolver, ColoredDiskSamplingSolver, ExactColoredDiskEnumSolver,
    ExactColoredDiskUnionSolver, ExactColoredRectSolver, OutputSensitiveColoredDiskSolver,
};
pub use convert::{repack_colored_placement, repack_placement, repack_point};
pub use descriptor::{
    BatchCapability, DimSupport, GuaranteeClass, ProblemKind, ShapeClass, SolverDescriptor,
};
pub use executor::{certify_answer, BatchExecutor, ExecutorConfig};
pub use index::{AnswerIndex, SharedIndex};
pub use instance::{ColoredInstance, RangeShape, WeightedInstance};
pub use obs::{Histogram, Phase, QueryTrace, TraceRecorder};
pub use registry::{registry, EngineConfig, Registry, SharedColoredSolver, SharedWeightedSolver};
pub use report::{Guarantee, SolveStats, SolverReport};
pub use versioned::{
    Mutation, MutationOutcome, MutationReport, ScriptOutcome, ScriptReport, ScriptStep,
    VersionedDataset, VersionedView,
};
pub use weighted::{
    DynamicBallSolver, ExactDiskSolver, ExactIntervalSolver, ExactRectSolver, StaticBallSolver,
};

use crate::input::{ColoredPlacement, Placement};

/// Why a solver refused an instance.
///
/// Dispatch failures are typed errors, not panics, so callers can probe the
/// registry ("which solvers take this instance?") without crashing.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EngineError {
    /// The solver does not understand the instance's range shape.
    UnsupportedShape {
        /// The refusing solver.
        solver: &'static str,
        /// The shape class it was offered.
        shape: ShapeClass,
    },
    /// The solver does not operate in the instance's ambient dimension.
    UnsupportedDimension {
        /// The refusing solver.
        solver: &'static str,
        /// The dimension it was offered.
        dim: usize,
    },
    /// The instance carries negative weights and the solver requires
    /// non-negative ones.
    NegativeWeights {
        /// The refusing solver.
        solver: &'static str,
    },
    /// A batch query named a solver the registry does not know (or one that
    /// does not exist under the query's problem kind and dimension).
    UnknownSolver {
        /// The name the query asked for.
        name: String,
    },
    /// The query's cancellation deadline passed before the solve completed
    /// (see [`cancel`]).  The kernel bailed out of its sweep cooperatively;
    /// `partial` records the work it had done when it stopped.
    DeadlineExceeded {
        /// The solver that was cancelled.
        solver: String,
        /// Work counters at the moment the sweep was abandoned.
        partial: PartialWork,
    },
}

/// Integer work counters carried by
/// [`EngineError::DeadlineExceeded`]: what a cancelled solve had done when
/// it stopped.  A deliberately `Eq`-safe subset of
/// [`SolveStats`] (which carries floats and so cannot ride inside the
/// error enum).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PartialWork {
    /// Points distance-tested through spatial-index queries before the bail.
    pub candidates_examined: usize,
    /// Spatial-index cells visited before the bail.
    pub grid_cells_visited: usize,
    /// Wall-clock microseconds spent before the bail.
    pub elapsed_us: u64,
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::UnsupportedShape { solver, shape } => {
                write!(f, "solver `{solver}` does not support {shape} ranges")
            }
            EngineError::UnsupportedDimension { solver, dim } => {
                write!(f, "solver `{solver}` does not operate in dimension {dim}")
            }
            EngineError::NegativeWeights { solver } => {
                write!(f, "solver `{solver}` requires non-negative weights")
            }
            EngineError::UnknownSolver { name } => {
                write!(f, "no registered solver answers `{name}` for this query")
            }
            EngineError::DeadlineExceeded { solver, partial } => {
                write!(
                    f,
                    "solver `{}` exceeded its deadline after {} µs \
                     ({} candidates examined, {} grid cells visited)",
                    solver,
                    partial.elapsed_us,
                    partial.candidates_examined,
                    partial.grid_cells_visited
                )
            }
        }
    }
}

impl std::error::Error for EngineError {}

/// Result alias for engine dispatch.
pub type EngineResult<T> = Result<T, EngineError>;

/// A solver for weighted MaxRS: place the range to maximize covered weight.
///
/// Implementations wrap one concrete algorithm; the trait is object-safe so
/// the [`Registry`] can hand out `Arc<dyn WeightedSolver<D>>` and callers can
/// swap exact for approximate solvers per workload.
pub trait WeightedSolver<const D: usize>: Send + Sync {
    /// Capability metadata (name, shape class, dimensions, guarantee class).
    fn descriptor(&self) -> &SolverDescriptor;

    /// Solves the instance, or explains why it cannot.
    fn solve(&self, instance: &WeightedInstance<D>) -> EngineResult<SolverReport<Placement<D>>>;

    /// Answers many query shapes over one shared point set (the batch
    /// execution path, see [`executor::BatchExecutor`]).
    ///
    /// The default treats every query as independent: it derives a sibling
    /// instance per shape (an `O(1)` operation — instances share their
    /// points) and calls [`Self::solve`] on each.  Solvers whose descriptor
    /// declares [`BatchCapability::IndexShared`] override this to amortize
    /// one build across the whole batch, reusing the executor's
    /// [`SharedIndex`] structures (per-radius grids, sorted projections,
    /// cached sample sets).
    ///
    /// `threads` is the worker budget the executor grants this call for
    /// *internal* fan-out (chunking one expensive query over
    /// `std::thread::scope` workers); implementations may ignore it, and
    /// answers must not depend on it.
    fn solve_all(
        &self,
        base: &WeightedInstance<D>,
        shapes: &[RangeShape<D>],
        index: &SharedIndex<D>,
        threads: usize,
    ) -> Vec<EngineResult<SolverReport<Placement<D>>>> {
        let _ = (index, threads);
        shapes.iter().map(|shape| self.solve(&base.with_shape(*shape))).collect()
    }

    /// The registry name, shorthand for `descriptor().name`.
    fn name(&self) -> &'static str {
        self.descriptor().name
    }
}

/// A solver for colored MaxRS: place the range to maximize the number of
/// distinct covered colors.
pub trait ColoredSolver<const D: usize>: Send + Sync {
    /// Capability metadata (name, shape class, dimensions, guarantee class).
    fn descriptor(&self) -> &SolverDescriptor;

    /// Solves the instance, or explains why it cannot.
    fn solve(
        &self,
        instance: &ColoredInstance<D>,
    ) -> EngineResult<SolverReport<ColoredPlacement<D>>>;

    /// Answers many query shapes over one shared site set.  See
    /// [`WeightedSolver::solve_all`] for the contract; the default derives an
    /// `O(1)` sibling instance per shape and calls [`Self::solve`].
    fn solve_all(
        &self,
        base: &ColoredInstance<D>,
        shapes: &[RangeShape<D>],
        index: &SharedIndex<D>,
        threads: usize,
    ) -> Vec<EngineResult<SolverReport<ColoredPlacement<D>>>> {
        let _ = (index, threads);
        shapes.iter().map(|shape| self.solve(&base.with_shape(*shape))).collect()
    }

    /// The registry name, shorthand for `descriptor().name`.
    fn name(&self) -> &'static str {
        self.descriptor().name
    }
}
