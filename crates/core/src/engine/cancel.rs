//! Cooperative cancellation: deadline tokens threaded from the executor
//! into the solver hot loops.
//!
//! The engine's kernels are straight-line sweeps over presorted data; a
//! query that lands on a hardness-walled instance (maximum-weight rectangles
//! are (min,+)-convolution-hard) can otherwise pin a worker for an unbounded
//! time.  A [`CancelToken`] carries an optional wall-clock deadline plus a
//! manual cancel flag; the [`BatchExecutor`](super::BatchExecutor) installs
//! the current request's token into a **thread-local** slot around every
//! task it runs (and the chunked kernels re-install it inside their own
//! scoped workers), so the solver traits keep their signatures — kernels
//! simply ask "[`poll`]?" every [`POLL_MASK`]` + 1` iterations and bail out
//! of their sweep early when the answer is yes.
//!
//! Cost discipline: when no token is installed (every non-deadline call
//! path), [`poll`] is a mask test plus one thread-local boolean read every
//! 1024 iterations — far below the noise floor of the perf gates.  A clock
//! is read only when a deadline is actually armed.
//!
//! A kernel that bails returns its best-so-far **partial** result; the
//! executor detects the expired token after the task returns and converts
//! the answer into a typed
//! [`EngineError::DeadlineExceeded`](super::EngineError::DeadlineExceeded)
//! carrying the partial work counters — a cancelled sweep therefore never
//! masquerades as a complete answer.
//!
//! The same thread-local scope carries the serving layer's **overload
//! degradation** flag (see [`degraded`]): above its overload watermark the
//! server asks the `auto` router to restrict itself to predicted-cheap
//! solvers, without rebuilding any registry state.

use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Poll stride mask: hot loops check the token on iterations where
/// `i & POLL_MASK == 0` (so once at entry, then every 1024th iteration).
pub const POLL_MASK: usize = 1023;

#[derive(Debug)]
struct CancelInner {
    deadline: Option<Instant>,
    cancelled: AtomicBool,
}

/// A shareable cancellation handle: an optional wall-clock deadline plus a
/// sticky manual cancel flag.  Cloning shares the underlying state.
#[derive(Clone, Debug)]
pub struct CancelToken(Arc<CancelInner>);

impl CancelToken {
    /// A token that trips once `deadline` passes (and stays tripped).
    pub fn with_deadline(deadline: Instant) -> Self {
        Self(Arc::new(CancelInner { deadline: Some(deadline), cancelled: AtomicBool::new(false) }))
    }

    /// A token with no deadline; it only trips via [`Self::cancel`].
    pub fn manual() -> Self {
        Self(Arc::new(CancelInner { deadline: None, cancelled: AtomicBool::new(false) }))
    }

    /// Trips the token (idempotent, visible to every clone).
    pub fn cancel(&self) {
        self.0.cancelled.store(true, Ordering::Release);
    }

    /// `true` once the token is tripped — manually or because its deadline
    /// passed.  The deadline check latches into the flag so later calls are
    /// a single atomic load.
    pub fn is_cancelled(&self) -> bool {
        if self.0.cancelled.load(Ordering::Acquire) {
            return true;
        }
        match self.0.deadline {
            Some(deadline) if Instant::now() >= deadline => {
                self.0.cancelled.store(true, Ordering::Release);
                true
            }
            _ => false,
        }
    }

    /// The wall-clock deadline, if one is armed.
    pub fn deadline(&self) -> Option<Instant> {
        self.0.deadline
    }
}

thread_local! {
    /// Fast-path mirror of "a token is installed": one boolean read keeps
    /// the no-deadline hot path free of `RefCell` traffic.
    static ACTIVE: Cell<bool> = const { Cell::new(false) };
    static CURRENT: RefCell<Option<CancelToken>> = const { RefCell::new(None) };
    static DEGRADED: Cell<bool> = const { Cell::new(false) };
}

/// RAII scope for an installed token (see [`install`]): restores the
/// previously installed token and degradation flag on drop, so nested
/// executors and re-entrant solver calls compose.
pub struct CancelScope {
    prev: Option<CancelToken>,
    prev_degraded: bool,
}

impl Drop for CancelScope {
    fn drop(&mut self) {
        ACTIVE.with(|a| a.set(self.prev.is_some()));
        CURRENT.with(|c| *c.borrow_mut() = self.prev.take());
        DEGRADED.with(|d| d.set(self.prev_degraded));
    }
}

/// Installs `token` (and the overload-degradation flag) as this thread's
/// current cancellation scope until the returned guard drops.
pub fn install(token: Option<CancelToken>, degraded: bool) -> CancelScope {
    ACTIVE.with(|a| a.set(token.is_some()));
    let prev = CURRENT.with(|c| c.replace(token));
    let prev_degraded = DEGRADED.with(|d| d.replace(degraded));
    CancelScope { prev, prev_degraded }
}

/// The token installed on this thread, if any.  Kernels that fan out over
/// their own `std::thread::scope` workers clone this before spawning and
/// [`install`] it inside each worker, since thread-locals do not propagate.
pub fn current() -> Option<CancelToken> {
    if !ACTIVE.with(Cell::get) {
        return None;
    }
    CURRENT.with(|c| c.borrow().clone())
}

/// `true` while the serving layer runs this thread's work in overload
/// degradation mode (the `auto` router restricts to predicted-cheap
/// solvers; see the module docs).
pub fn degraded() -> bool {
    DEGRADED.with(Cell::get)
}

/// Immediate check: `true` when an installed token has tripped.  Use
/// [`poll`] in hot loops; this form is for coarse loops (per-grid,
/// per-chunk) that iterate a handful of times.
#[inline]
pub fn should_stop() -> bool {
    if !ACTIVE.with(Cell::get) {
        return false;
    }
    CURRENT.with(|c| c.borrow().as_ref().is_some_and(CancelToken::is_cancelled))
}

/// Amortized check for hot loops: `true` when `i` lands on a poll stride
/// **and** an installed token has tripped.  Compiles to a mask test on the
/// off-stride iterations.
#[inline]
pub fn poll(i: usize) -> bool {
    (i & POLL_MASK) == 0 && should_stop()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn manual_tokens_trip_once_and_stay_tripped() {
        let token = CancelToken::manual();
        assert!(!token.is_cancelled());
        let clone = token.clone();
        clone.cancel();
        assert!(token.is_cancelled(), "cancellation is shared across clones");
        assert!(token.deadline().is_none());
    }

    #[test]
    fn deadline_tokens_latch_after_expiry() {
        let token = CancelToken::with_deadline(Instant::now() - Duration::from_millis(1));
        assert!(token.is_cancelled());
        assert!(token.is_cancelled(), "the expiry latches");
        let future = CancelToken::with_deadline(Instant::now() + Duration::from_secs(3600));
        assert!(!future.is_cancelled());
    }

    #[test]
    fn polling_is_inert_without_an_installed_token() {
        assert!(!should_stop());
        assert!(!poll(0));
        assert!(!poll(1024));
        assert!(!degraded());
    }

    #[test]
    fn install_scopes_nest_and_restore() {
        let expired = CancelToken::with_deadline(Instant::now() - Duration::from_millis(1));
        {
            let _outer = install(Some(expired), true);
            assert!(should_stop());
            assert!(poll(0), "stride 0 polls");
            assert!(!poll(1), "off-stride iterations never poll");
            assert!(degraded());
            {
                let _inner = install(None, false);
                assert!(!should_stop(), "the inner scope shadows the outer token");
                assert!(!degraded());
            }
            assert!(should_stop(), "dropping the inner scope restores the outer");
            assert!(degraded());
        }
        assert!(!should_stop());
        assert!(!degraded());
        assert!(current().is_none());
    }

    #[test]
    fn current_clones_the_installed_token() {
        let token = CancelToken::manual();
        let _scope = install(Some(token.clone()), false);
        let seen = current().expect("a token is installed");
        seen.cancel();
        assert!(token.is_cancelled(), "current() shares state with the installed token");
    }
}
