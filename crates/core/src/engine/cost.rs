//! The per-solver cost model behind the `auto` meta-solver.
//!
//! Several registered solvers answer the same `(problem, shape, dimension)`
//! query with sharply diverging cost profiles (the hardness results of
//! Backurs–Dikkala–Tzamos guarantee the divergence grows with density), so
//! choosing well matters.  This module prices a query without running it:
//!
//! * [`InstanceProfile`] summarizes an instance in one `O(n)` pass (size,
//!   per-axis spread, distinct colors);
//! * [`CostFeatures`] derives the per-query feature vector from a profile
//!   and a [`RangeShape`] — `n`, `n·log₂(n+2)`, the expected points per
//!   range `n·fill`, the pairwise-proximity mass `n²·fill`, the
//!   grid-resolution mass `1/fill` (cells a range-sized grid needs to tile
//!   the spread — the dominant cost of the grid-building samplers at small
//!   radii), and the distinct-color count;
//! * [`predicted_work`] evaluates a per-solver linear model over those
//!   features.  The coefficients in [`COEFFICIENTS`] are fitted by the
//!   `cost_calibrate` bench bin (`cargo run --release -p mrs-bench --bin
//!   cost_calibrate`) against the deterministic work measure below and
//!   committed as a table;
//! * [`actual_work`] is that work measure: the input size plus every
//!   deterministic counter the solver reported ([`SolveStats::grids`],
//!   `cells`, `samples`, `candidates`, `candidates_examined`,
//!   `grid_cells_visited`).  `sieve_rejected` is deliberately excluded —
//!   it depends on the process-global kernel mode, and predicted work must
//!   not.  Solvers that track no counters cost exactly `n`, their one
//!   guaranteed pass over the input.
//!
//! The model is calibrated under [`EngineConfig::practical`](super::EngineConfig::practical)
//! (`mrs_core::engine::EngineConfig::practical(0.25)`, the capped sampling
//! configuration serving deployments run); other sampling configurations
//! shift the samplers' true constants — the theory-faithful default's full
//! `(2/ε)^d` grid family in particular makes the grid-building samplers far
//! costlier than the fitted rows at small fill — but the *ordering* the
//! `auto` solver needs is far coarser than the fit.

use mrs_geom::{ColoredSite, WeightedPoint};

use super::instance::RangeShape;
use super::report::SolveStats;

/// The feature vector one query is priced over.
///
/// All features are deterministic functions of the instance and the query
/// shape; `fill` is the fraction of the instance's bounding box one range
/// covers (clamped per axis), so `n_fill` estimates the points per range and
/// `n_sq_fill` the pairwise-proximity work of neighbour sweeps.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct CostFeatures {
    /// Input size `n`.
    pub n: f64,
    /// `n · log₂(n + 2)`, the sort/sweep term.
    pub n_log_n: f64,
    /// `n · fill`: expected points inside one range.
    pub n_fill: f64,
    /// `n² · fill`: expected point pairs within range proximity.
    pub n_sq_fill: f64,
    /// `1 / fill` (per-axis `spread/span` clamped at ≥ 1, multiplied across
    /// axes): how many range-sized cells tile the instance's bounding box.
    /// Grid-building samplers pay this per maintained grid, so their cost
    /// *grows* as ranges shrink — the one regime the `fill` terms can't
    /// express.
    pub inv_fill: f64,
    /// Distinct colors in the instance (zero for weighted instances).
    pub colors: f64,
}

impl CostFeatures {
    /// The feature row the linear models dot against, intercept first.
    pub fn as_array(&self) -> [f64; 7] {
        [1.0, self.n, self.n_log_n, self.n_fill, self.n_sq_fill, self.inv_fill, self.colors]
    }
}

/// One `O(n)` summary of an instance, from which per-shape features derive
/// in `O(D)` — so a batch of `m` queries over one point set profiles the
/// points once, not `m` times.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct InstanceProfile<const D: usize> {
    n: usize,
    extent: [f64; D],
    colors: usize,
}

impl<const D: usize> InstanceProfile<D> {
    /// Profiles a weighted point set (distinct-color feature is zero).
    pub fn of_points(points: &[WeightedPoint<D>]) -> Self {
        Self { n: points.len(), extent: extent_of(points.iter().map(|wp| &wp.point)), colors: 0 }
    }

    /// Profiles a colored site set, counting its distinct colors.
    pub fn of_sites(sites: &[ColoredSite<D>]) -> Self {
        let mut colors: Vec<usize> = sites.iter().map(|s| s.color).collect();
        colors.sort_unstable();
        colors.dedup();
        Self {
            n: sites.len(),
            extent: extent_of(sites.iter().map(|s| &s.point)),
            colors: colors.len(),
        }
    }

    /// Input size `n`.
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` for the empty instance.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The feature vector for one query shape over this instance.
    pub fn features(&self, shape: &RangeShape<D>) -> CostFeatures {
        let n = self.n as f64;
        let (fill, inv_fill) = self.fill(shape);
        CostFeatures {
            n,
            n_log_n: n * (n + 2.0).log2(),
            n_fill: n * fill,
            n_sq_fill: n * n * fill,
            inv_fill,
            colors: self.colors as f64,
        }
    }

    /// Per-axis ratio of the range's span to the points' spread, folded two
    /// ways: clamped to `[0, 1]` and multiplied (the covered *fraction* of
    /// the bounding box) and the reciprocal clamped to `≥ 1` and multiplied
    /// (how many range-sized cells *tile* the bounding box).  Degenerate
    /// axes (all points equal) and degenerate spans count as fully covered
    /// on both measures; both products are invariant under similarities
    /// that scale points and range together.
    fn fill(&self, shape: &RangeShape<D>) -> (f64, f64) {
        let mut fill = 1.0;
        let mut inv_fill = 1.0;
        for axis in 0..D {
            let span = match shape.ball_radius() {
                Some(radius) => 2.0 * radius,
                None => shape.box_extents().expect("a range is a ball or a box")[axis],
            };
            let spread = self.extent[axis];
            if spread > 0.0 && span > 0.0 {
                fill *= (span / spread).min(1.0);
                inv_fill *= (spread / span).max(1.0);
            }
        }
        (fill, inv_fill)
    }
}

fn extent_of<'a, const D: usize>(points: impl Iterator<Item = &'a mrs_geom::Point<D>>) -> [f64; D] {
    let mut lo = [f64::INFINITY; D];
    let mut hi = [f64::NEG_INFINITY; D];
    let mut any = false;
    for p in points {
        any = true;
        for axis in 0..D {
            lo[axis] = lo[axis].min(p[axis]);
            hi[axis] = hi[axis].max(p[axis]);
        }
    }
    let mut extent = [0.0; D];
    if any {
        for axis in 0..D {
            extent[axis] = hi[axis] - lo[axis];
        }
    }
    extent
}

/// Per-solver linear coefficients over [`CostFeatures::as_array`], fitted by
/// the `cost_calibrate` bench bin against [`actual_work`] and committed here.
/// Regenerate with `cargo run --release -p mrs-bench --bin cost_calibrate`.
///
/// Solvers that track no work counters cost exactly `n` under the measure,
/// so their row is the exact `[0, 1, 0, 0, 0, 0, 0]` — no fit needed.  The
/// fitted rows are nonnegative by construction (the calibration bin solves a
/// sign-constrained least-squares problem), so every prediction is
/// nonnegative and monotone in every feature.
pub const COEFFICIENTS: &[(&str, [f64; 7])] = &[
    // intercept      n      n·log2n   n·fill   n²·fill   1/fill   colors
    ("exact-interval-1d", [0.0, 1.0, 0.0, 0.0, 0.0, 0.0, 0.0]),
    ("exact-rect-2d", [0.0, 1.0, 0.0, 0.0, 0.0, 0.0, 0.0]),
    ("exact-disk-2d", [0.0, 0.0, 1.166979, 0.0, 6.448543, 0.0, 0.0]),
    ("approx-static-ball", [145327.038173, 24.330941, 0.0, 0.0, 0.0, 2127.354261, 0.0]),
    ("dynamic-ball", [0.0, 1.0, 0.0, 0.0, 0.0, 0.0, 0.0]),
    ("exact-colored-disk-enum", [0.0, 1.0, 0.0, 0.0, 0.0, 0.0, 0.0]),
    ("exact-colored-disk-union", [0.0, 1.0, 0.0, 0.0, 0.0, 0.0, 0.0]),
    (
        "output-sensitive-colored-disk",
        [0.0, 0.0, 2.106741, 621.439820, 1.146182, 13.869317, 908.111187],
    ),
    ("approx-colored-ball", [0.0, 1.0, 0.0, 0.0, 0.0, 0.0, 0.0]),
    ("approx-colored-disk-sampling", [0.0, 1.003066, 0.0, 2.675812, 0.0, 0.0, 0.284129]),
    ("exact-colored-rect-2d", [0.0, 1.0, 0.0, 0.0, 0.0, 0.0, 0.0]),
];

/// Predicted work for `solver` on a query with features `features`, in
/// [`actual_work`] units.  Unknown solvers price at `+∞`, so they are only
/// chosen when nothing else is capable.
pub fn predicted_work(solver: &str, features: &CostFeatures) -> f64 {
    let Some((_, coeff)) = COEFFICIENTS.iter().find(|(name, _)| *name == solver) else {
        return f64::INFINITY;
    };
    let row = features.as_array();
    let mut acc = 0.0;
    for (c, x) in coeff.iter().zip(row) {
        acc += c * x;
    }
    acc.max(1.0)
}

/// The deterministic work a finished solve actually did: input size plus
/// every reported counter (grids, cells, samples, candidates, candidates
/// examined, grid cells visited).  `sieve_rejected` is excluded — it varies
/// with the process-global kernel mode, and the measure must not.
pub fn actual_work(stats: &SolveStats, n: usize) -> f64 {
    let counters: usize = [
        stats.grids,
        stats.cells,
        stats.samples,
        stats.candidates,
        stats.candidates_examined,
        stats.grid_cells_visited,
    ]
    .iter()
    .map(|c| c.unwrap_or(0))
    .sum();
    (n + counters) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrs_geom::{Point2, WeightedPoint};

    fn spread_points() -> Vec<WeightedPoint<2>> {
        (0..10).map(|i| WeightedPoint::unit(Point2::xy(f64::from(i), 0.5 * f64::from(i)))).collect()
    }

    #[test]
    fn profile_features_scale_with_fill() {
        let profile = InstanceProfile::of_points(&spread_points());
        assert_eq!(profile.len(), 10);
        let tight = profile.features(&RangeShape::ball(0.5));
        let wide = profile.features(&RangeShape::ball(100.0));
        assert!(tight.n_fill < wide.n_fill);
        // A range covering the whole spread clamps at fill = 1 on both
        // measures.
        assert_eq!(wide.n_fill, 10.0);
        assert_eq!(wide.n_sq_fill, 100.0);
        assert_eq!(wide.inv_fill, 1.0);
        // Spans of 1.0 against spreads of 9.0 × 4.5 tile 40.5 cells.
        assert_eq!(tight.inv_fill, 9.0 * 4.5);
        assert_eq!(tight.colors, 0.0);
    }

    #[test]
    fn fill_is_invariant_under_exact_similarities() {
        // The `auto` pick must be stable under the metamorphic transforms:
        // scaling points and radius together leaves every feature unchanged.
        let base = InstanceProfile::of_points(&spread_points());
        let scaled: Vec<WeightedPoint<2>> = spread_points()
            .into_iter()
            .map(|wp| WeightedPoint::new(wp.point.scale(4.0), wp.weight))
            .collect();
        let mapped = InstanceProfile::of_points(&scaled);
        assert_eq!(base.features(&RangeShape::ball(1.25)), mapped.features(&RangeShape::ball(5.0)));
    }

    #[test]
    fn degenerate_instances_profile_cleanly() {
        let empty = InstanceProfile::<2>::of_points(&[]);
        assert!(empty.is_empty());
        let f = empty.features(&RangeShape::ball(1.0));
        assert_eq!(f.n, 0.0);
        assert_eq!(f.n_fill, 0.0);
        // All-coincident points: every axis is degenerate, fill clamps to 1.
        let stacked = vec![
            WeightedPoint::unit(Point2::xy(3.0, 3.0)),
            WeightedPoint::unit(Point2::xy(3.0, 3.0)),
        ];
        let p = InstanceProfile::of_points(&stacked);
        let f = p.features(&RangeShape::ball(0.001));
        assert_eq!(f.n_fill, 2.0);
        assert_eq!(f.inv_fill, 1.0);
    }

    #[test]
    fn counterless_solvers_price_at_n() {
        let profile = InstanceProfile::of_points(&spread_points());
        let f = profile.features(&RangeShape::ball(1.0));
        assert_eq!(predicted_work("exact-interval-1d", &f), 10.0);
        assert_eq!(predicted_work("dynamic-ball", &f), 10.0);
        assert!(predicted_work("exact-disk-2d", &f) > 10.0);
        assert_eq!(predicted_work("no-such-solver", &f), f64::INFINITY);
    }

    #[test]
    fn actual_work_sums_counters_and_floors_at_n() {
        let bare = SolveStats::default();
        assert_eq!(actual_work(&bare, 7), 7.0);
        let counted = SolveStats {
            candidates_examined: Some(40),
            grid_cells_visited: Some(9),
            sieve_rejected: Some(1000), // mode-dependent: must not count
            ..SolveStats::default()
        };
        assert_eq!(actual_work(&counted, 7), 56.0);
    }
}
