//! Static metadata describing a solver: what problem it answers, for which
//! range shapes and dimensions, and with what guarantee class.  The registry
//! enumerates these so callers can select exact-vs-approx per workload
//! without knowing the concrete algorithm types.

/// Which MaxRS problem family a solver answers.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ProblemKind {
    /// Maximize total covered weight.
    Weighted,
    /// Maximize the number of distinct covered colors.
    Colored,
}

/// The class of query range a solver understands.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShapeClass {
    /// A `d`-ball of fixed radius (an interval in 1-D, a disk in 2-D).
    Ball,
    /// An axis-aligned box of fixed extents (a rectangle in 2-D).
    AxisBox,
    /// Any shape class: the solver delegates per query (the `auto`
    /// meta-solver, which routes each shape to a capable concrete solver).
    Any,
}

impl std::fmt::Display for ShapeClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShapeClass::Ball => write!(f, "ball"),
            ShapeClass::AxisBox => write!(f, "box"),
            ShapeClass::Any => write!(f, "any"),
        }
    }
}

/// Which ambient dimensions a solver supports.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DimSupport {
    /// Works for every `const D` (the sampling technique).
    Any,
    /// Only the given dimension (the planar and 1-D exact algorithms).
    Fixed(usize),
}

impl DimSupport {
    /// Does the solver support ambient dimension `d`?
    pub fn supports(&self, d: usize) -> bool {
        match self {
            DimSupport::Any => true,
            DimSupport::Fixed(only) => *only == d,
        }
    }
}

/// How a solver participates in batch execution (many queries over one
/// shared point set, see [`crate::engine::executor`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchCapability {
    /// Queries are answered one at a time; the executor parallelizes across
    /// individual queries but no work is shared between them.
    Independent,
    /// The solver overrides `solve_all` and amortizes one shared build (a
    /// sorted event list, a Fenwick tree, a hash grid) across the whole
    /// batch, so the executor hands it all of its queries in one call.
    IndexShared,
}

impl BatchCapability {
    /// `true` if the solver shares one index build across a batch.
    pub fn is_shared(&self) -> bool {
        matches!(self, BatchCapability::IndexShared)
    }
}

impl std::fmt::Display for BatchCapability {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BatchCapability::Independent => write!(f, "independent"),
            BatchCapability::IndexShared => write!(f, "index-shared"),
        }
    }
}

/// The guarantee family a solver belongs to, independent of the concrete `ε`
/// it will run with (that is configuration, reported per-solve in
/// [`super::Guarantee`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GuaranteeClass {
    /// Returns the optimum.
    Exact,
    /// `(1/2 − ε)`-approximation with high probability.
    HalfMinusEps,
    /// `(1 − ε)`-approximation in expectation.
    OneMinusEps,
}

impl GuaranteeClass {
    /// `true` for exact solvers.
    pub fn is_exact(&self) -> bool {
        matches!(self, GuaranteeClass::Exact)
    }
}

/// Capability record for one registered solver.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SolverDescriptor {
    /// Registry key, unique within a problem kind (e.g. `"exact-disk-2d"`).
    pub name: &'static str,
    /// Weighted or colored MaxRS.
    pub problem: ProblemKind,
    /// Query-range class the solver accepts.
    pub shape: ShapeClass,
    /// Supported ambient dimensions.
    pub dims: DimSupport,
    /// Guarantee family.
    pub guarantee: GuaranteeClass,
    /// `true` if the underlying structure also supports efficient updates
    /// (insertions/deletions) rather than solving from scratch only.
    pub dynamic: bool,
    /// How the solver participates in batch execution.
    pub batch: BatchCapability,
    /// `true` if weighted inputs may carry negative weights (the Section 5
    /// interval solvers; vacuously `true` for colored solvers, whose inputs
    /// are unweighted).
    pub negative_weights: bool,
    /// Where the algorithm comes from (paper theorem or classical citation).
    pub reference: &'static str,
}

impl SolverDescriptor {
    /// Does this solver apply to problem `problem`, shape `shape`, and
    /// dimension `d`?  A solver declaring [`ShapeClass::Any`] accepts every
    /// shape class.
    pub fn supports(&self, problem: ProblemKind, shape: ShapeClass, d: usize) -> bool {
        self.problem == problem
            && (self.shape == shape || matches!(self.shape, ShapeClass::Any))
            && self.dims.supports(d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dim_support() {
        assert!(DimSupport::Any.supports(7));
        assert!(DimSupport::Fixed(2).supports(2));
        assert!(!DimSupport::Fixed(2).supports(3));
    }

    #[test]
    fn descriptor_capability_matching() {
        let d = SolverDescriptor {
            name: "x",
            problem: ProblemKind::Weighted,
            shape: ShapeClass::Ball,
            dims: DimSupport::Fixed(2),
            guarantee: GuaranteeClass::Exact,
            dynamic: false,
            batch: BatchCapability::Independent,
            negative_weights: false,
            reference: "test",
        };
        assert!(d.supports(ProblemKind::Weighted, ShapeClass::Ball, 2));
        assert!(!d.supports(ProblemKind::Weighted, ShapeClass::Ball, 1));
        assert!(!d.supports(ProblemKind::Weighted, ShapeClass::AxisBox, 2));
        assert!(!d.supports(ProblemKind::Colored, ShapeClass::Ball, 2));
        assert!(d.guarantee.is_exact());
    }
}
