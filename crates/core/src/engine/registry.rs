//! The solver registry: enumerate solvers by name and capability, construct
//! them under any ambient dimension, and let downstream crates plug in their
//! own implementations.
//!
//! Built-in solvers are constructed on demand from the registry's
//! [`EngineConfig`], so one registry serves every `const D` the caller asks
//! for.  External solvers (e.g. the batched 1-D solver from `mrs-batched`)
//! are registered per dimension as shared trait objects and take precedence
//! over built-ins with the same name, so a downstream crate can also
//! *replace* a built-in.

use std::any::Any;
use std::sync::Arc;

use super::auto::{AutoColoredSolver, AutoWeightedSolver};
use super::colored::{
    ColoredBallSolver, ColoredDiskSamplingSolver, ExactColoredDiskEnumSolver,
    ExactColoredDiskUnionSolver, ExactColoredRectSolver, OutputSensitiveColoredDiskSolver,
};
use super::descriptor::SolverDescriptor;
use super::weighted::{
    DynamicBallSolver, ExactDiskSolver, ExactIntervalSolver, ExactRectSolver, StaticBallSolver,
};
use super::{ColoredSolver, WeightedSolver};
use crate::config::{ColorSamplingConfig, SamplingConfig};

/// A shareable weighted solver handle.
pub type SharedWeightedSolver<const D: usize> = Arc<dyn WeightedSolver<D>>;

/// A shareable colored solver handle.
pub type SharedColoredSolver<const D: usize> = Arc<dyn ColoredSolver<D>>;

/// Configuration shared by every randomized solver the registry constructs.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct EngineConfig {
    /// Configuration of the Technique 1 samplers (Theorems 1.1, 1.2, 1.5).
    pub sampling: SamplingConfig,
    /// Configuration of the Theorem 1.6 color sampler.
    pub color_sampling: ColorSamplingConfig,
}

impl EngineConfig {
    /// A configuration with practical caps at the given `ε` (see
    /// [`SamplingConfig::practical`]).
    ///
    /// The Technique 1 samplers only admit `ε < 1/2`, so for `ε ≥ 1/2` (legal
    /// for the `(1 − ε)` color sampler) their `ε` is clamped just below it.
    ///
    /// # Panics
    /// Panics unless `0 < ε < 1`.
    pub fn practical(eps: f64) -> Self {
        Self {
            sampling: SamplingConfig::practical(eps.min(0.49)),
            color_sampling: ColorSamplingConfig::new(eps),
        }
    }

    /// Overrides every random seed, for reproducible runs.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.sampling = self.sampling.with_seed(seed);
        self.color_sampling = self.color_sampling.with_seed(seed ^ 0x5DEECE66D);
        self
    }
}

enum ExternalObject {
    // The boxes hold `SharedWeightedSolver<D>` / `SharedColoredSolver<D>`
    // for the `dim` recorded next to them; retrieval downcasts back with the
    // caller's `const D`.
    Weighted(Box<dyn Any + Send + Sync>),
    Colored(Box<dyn Any + Send + Sync>),
}

struct ExternalEntry {
    descriptor: SolverDescriptor,
    dim: usize,
    object: ExternalObject,
}

/// The solver registry.  See the [engine docs](crate::engine) for semantics.
pub struct Registry {
    config: EngineConfig,
    external: Vec<ExternalEntry>,
}

/// The registry of built-in solvers under the default [`EngineConfig`].
///
/// The default configuration is theory-faithful: the samplers keep the full
/// `(2/ε)^d` shifted-grid family of Lemma 2.1, which is affordable in the
/// plane but grows exponentially with the dimension.  Use
/// [`Registry::with_config`] with [`EngineConfig::practical`] for `d ≥ 3` or
/// latency-sensitive workloads.
pub fn registry() -> Registry {
    Registry::with_config(EngineConfig::default())
}

impl Default for Registry {
    fn default() -> Self {
        registry()
    }
}

impl Registry {
    /// A registry whose randomized solvers run with `config`.
    pub fn with_config(config: EngineConfig) -> Self {
        Self { config, external: Vec::new() }
    }

    /// The configuration used to construct randomized solvers.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Capability records of every registered solver, external solvers first
    /// (matching lookup precedence), then built-ins.
    pub fn descriptors(&self) -> Vec<SolverDescriptor> {
        let mut out: Vec<SolverDescriptor> = self.external.iter().map(|e| e.descriptor).collect();
        out.extend_from_slice(&BUILTIN_DESCRIPTORS);
        out
    }

    /// Registers an external weighted solver for dimension `D`.  It takes
    /// precedence over any built-in with the same name.
    ///
    /// # Panics
    /// Panics if the solver's descriptor does not claim support for `D` —
    /// the listing would otherwise advertise a capability lookup cannot
    /// resolve.
    pub fn register_weighted<const D: usize>(&mut self, solver: SharedWeightedSolver<D>) {
        assert!(
            solver.descriptor().dims.supports(D),
            "solver `{}` registered for dimension {D} its descriptor does not support",
            solver.descriptor().name
        );
        self.external.push(ExternalEntry {
            descriptor: *solver.descriptor(),
            dim: D,
            object: ExternalObject::Weighted(Box::new(solver)),
        });
    }

    /// Registers an external colored solver for dimension `D`.  It takes
    /// precedence over any built-in with the same name.
    ///
    /// # Panics
    /// Panics if the solver's descriptor does not claim support for `D`.
    pub fn register_colored<const D: usize>(&mut self, solver: SharedColoredSolver<D>) {
        assert!(
            solver.descriptor().dims.supports(D),
            "solver `{}` registered for dimension {D} its descriptor does not support",
            solver.descriptor().name
        );
        self.external.push(ExternalEntry {
            descriptor: *solver.descriptor(),
            dim: D,
            object: ExternalObject::Colored(Box::new(solver)),
        });
    }

    /// The weighted solver registered under `name` that supports dimension
    /// `D`, if any.
    pub fn weighted<const D: usize>(&self, name: &str) -> Option<SharedWeightedSolver<D>> {
        for entry in &self.external {
            if entry.descriptor.name == name && entry.dim == D {
                if let ExternalObject::Weighted(object) = &entry.object {
                    if let Some(solver) = object.downcast_ref::<SharedWeightedSolver<D>>() {
                        return Some(Arc::clone(solver));
                    }
                }
            }
        }
        builtin_weighted::<D>(&self.config)
            .into_iter()
            .find(|s| s.descriptor().name == name && s.descriptor().dims.supports(D))
    }

    /// The colored solver registered under `name` that supports dimension
    /// `D`, if any.
    pub fn colored<const D: usize>(&self, name: &str) -> Option<SharedColoredSolver<D>> {
        for entry in &self.external {
            if entry.descriptor.name == name && entry.dim == D {
                if let ExternalObject::Colored(object) = &entry.object {
                    if let Some(solver) = object.downcast_ref::<SharedColoredSolver<D>>() {
                        return Some(Arc::clone(solver));
                    }
                }
            }
        }
        builtin_colored::<D>(&self.config)
            .into_iter()
            .find(|s| s.descriptor().name == name && s.descriptor().dims.supports(D))
    }

    /// Every weighted solver (external and built-in) supporting dimension
    /// `D`.
    pub fn weighted_solvers<const D: usize>(&self) -> Vec<SharedWeightedSolver<D>> {
        let mut out: Vec<SharedWeightedSolver<D>> = Vec::new();
        for entry in &self.external {
            if entry.dim == D {
                if let ExternalObject::Weighted(object) = &entry.object {
                    if let Some(solver) = object.downcast_ref::<SharedWeightedSolver<D>>() {
                        out.push(Arc::clone(solver));
                    }
                }
            }
        }
        out.extend(
            builtin_weighted::<D>(&self.config)
                .into_iter()
                .filter(|s| s.descriptor().dims.supports(D)),
        );
        out
    }

    /// Every colored solver (external and built-in) supporting dimension `D`.
    pub fn colored_solvers<const D: usize>(&self) -> Vec<SharedColoredSolver<D>> {
        let mut out: Vec<SharedColoredSolver<D>> = Vec::new();
        for entry in &self.external {
            if entry.dim == D {
                if let ExternalObject::Colored(object) = &entry.object {
                    if let Some(solver) = object.downcast_ref::<SharedColoredSolver<D>>() {
                        out.push(Arc::clone(solver));
                    }
                }
            }
        }
        out.extend(
            builtin_colored::<D>(&self.config)
                .into_iter()
                .filter(|s| s.descriptor().dims.supports(D)),
        );
        out
    }
}

/// Descriptors of the built-in solvers, in registry order.
pub(super) const BUILTIN_DESCRIPTORS: [SolverDescriptor; 13] = [
    ExactIntervalSolver::DESCRIPTOR,
    ExactRectSolver::DESCRIPTOR,
    ExactDiskSolver::DESCRIPTOR,
    StaticBallSolver::DESCRIPTOR,
    DynamicBallSolver::DESCRIPTOR,
    ExactColoredDiskEnumSolver::DESCRIPTOR,
    ExactColoredDiskUnionSolver::DESCRIPTOR,
    OutputSensitiveColoredDiskSolver::DESCRIPTOR,
    ColoredBallSolver::DESCRIPTOR,
    ColoredDiskSamplingSolver::DESCRIPTOR,
    ExactColoredRectSolver::DESCRIPTOR,
    AutoWeightedSolver::DESCRIPTOR,
    AutoColoredSolver::DESCRIPTOR,
];

/// The concrete (non-routing) built-in weighted solvers, in registry order.
/// The `auto` router picks among exactly these, so it is excluded to keep
/// the candidate set recursion-free.
pub(super) fn concrete_weighted<const D: usize>(
    config: &EngineConfig,
) -> Vec<SharedWeightedSolver<D>> {
    vec![
        Arc::new(ExactIntervalSolver),
        Arc::new(ExactRectSolver),
        Arc::new(ExactDiskSolver),
        Arc::new(StaticBallSolver::new(config.sampling)),
        Arc::new(DynamicBallSolver::new(config.sampling)),
    ]
}

/// The concrete built-in colored solvers, in registry order (see
/// [`concrete_weighted`]).
pub(super) fn concrete_colored<const D: usize>(
    config: &EngineConfig,
) -> Vec<SharedColoredSolver<D>> {
    vec![
        Arc::new(ExactColoredDiskEnumSolver),
        Arc::new(ExactColoredDiskUnionSolver),
        Arc::new(OutputSensitiveColoredDiskSolver),
        Arc::new(ColoredBallSolver::new(config.sampling)),
        Arc::new(ColoredDiskSamplingSolver::new(config.color_sampling)),
        Arc::new(ExactColoredRectSolver),
    ]
}

fn builtin_weighted<const D: usize>(config: &EngineConfig) -> Vec<SharedWeightedSolver<D>> {
    let mut solvers = concrete_weighted::<D>(config);
    solvers.push(Arc::new(AutoWeightedSolver::new(*config)));
    solvers
}

fn builtin_colored<const D: usize>(config: &EngineConfig) -> Vec<SharedColoredSolver<D>> {
    let mut solvers = concrete_colored::<D>(config);
    solvers.push(Arc::new(AutoColoredSolver::new(*config)));
    solvers
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{
        ColoredInstance, EngineResult, ProblemKind, ShapeClass, SolverReport, WeightedInstance,
    };
    use crate::input::{ColoredPlacement, Placement};
    use mrs_geom::{Point2, WeightedPoint};

    #[test]
    fn registry_lists_all_builtins() {
        let reg = registry();
        let descriptors = reg.descriptors();
        assert!(descriptors.len() >= 8, "expected at least 8 solvers, got {}", descriptors.len());
        let names: Vec<&str> = descriptors.iter().map(|d| d.name).collect();
        for expected in [
            "exact-interval-1d",
            "exact-rect-2d",
            "exact-disk-2d",
            "approx-static-ball",
            "dynamic-ball",
            "exact-colored-disk-enum",
            "exact-colored-disk-union",
            "output-sensitive-colored-disk",
            "approx-colored-ball",
            "approx-colored-disk-sampling",
            "exact-colored-rect-2d",
            "auto",
        ] {
            assert!(names.contains(&expected), "missing solver {expected}");
        }
        // `auto` registers once per problem kind.
        assert_eq!(names.iter().filter(|n| **n == "auto").count(), 2);
    }

    #[test]
    fn lookup_respects_dimension_support() {
        let reg = registry();
        assert!(reg.weighted::<2>("exact-disk-2d").is_some());
        assert!(reg.weighted::<3>("exact-disk-2d").is_none());
        assert!(reg.weighted::<1>("exact-interval-1d").is_some());
        assert!(reg.weighted::<2>("exact-interval-1d").is_none());
        assert!(reg.weighted::<7>("approx-static-ball").is_some());
        assert!(reg.weighted::<2>("no-such-solver").is_none());
        assert!(reg.colored::<2>("approx-colored-disk-sampling").is_some());
        assert!(reg.colored::<3>("approx-colored-disk-sampling").is_none());
        assert!(reg.colored::<3>("approx-colored-ball").is_some());
    }

    #[test]
    fn solver_lists_filter_by_dimension() {
        let reg = registry();
        let planar = reg.weighted_solvers::<2>();
        assert!(planar.iter().any(|s| s.name() == "exact-rect-2d"));
        assert!(planar.iter().all(|s| s.name() != "exact-interval-1d"));
        let spatial = reg.weighted_solvers::<5>();
        assert!(spatial.iter().all(|s| s.descriptor().dims.supports(5)));
        assert_eq!(spatial.len(), 3, "only the samplers (and their router) work in d = 5");
    }

    #[test]
    fn config_flows_into_constructed_solvers() {
        let reg = Registry::with_config(EngineConfig::practical(0.3).with_seed(99));
        let instance = WeightedInstance::ball(
            vec![
                WeightedPoint::unit(Point2::xy(0.0, 0.0)),
                WeightedPoint::unit(Point2::xy(0.2, 0.0)),
            ],
            1.0,
        );
        let report = reg.weighted::<2>("approx-static-ball").unwrap().solve(&instance).unwrap();
        match report.guarantee {
            crate::engine::Guarantee::HalfMinusEps { eps } => assert!((eps - 0.3).abs() < 1e-12),
            other => panic!("unexpected guarantee {other:?}"),
        }
    }

    #[test]
    fn external_registration_takes_precedence() {
        struct Stub;
        impl<const D: usize> WeightedSolver<D> for Stub {
            fn descriptor(&self) -> &SolverDescriptor {
                const STUB: SolverDescriptor = SolverDescriptor {
                    name: "exact-disk-2d",
                    problem: ProblemKind::Weighted,
                    shape: ShapeClass::Ball,
                    dims: crate::engine::DimSupport::Fixed(2),
                    guarantee: crate::engine::GuaranteeClass::Exact,
                    dynamic: false,
                    batch: crate::engine::BatchCapability::Independent,
                    negative_weights: false,
                    reference: "test stub",
                };
                &STUB
            }
            fn solve(
                &self,
                _instance: &WeightedInstance<D>,
            ) -> EngineResult<SolverReport<Placement<D>>> {
                Ok(SolverReport {
                    solver: "exact-disk-2d",
                    placement: Placement { center: mrs_geom::Point::origin(), value: -1.0 },
                    guarantee: crate::engine::Guarantee::Exact,
                    stats: crate::engine::SolveStats::default(),
                })
            }
        }

        let mut reg = registry();
        reg.register_weighted::<2>(Arc::new(Stub));
        let solver = reg.weighted::<2>("exact-disk-2d").unwrap();
        let report = solver.solve(&WeightedInstance::<2>::ball(vec![], 1.0)).unwrap();
        assert_eq!(report.placement.value, -1.0, "external stub must shadow the builtin");
        // But the other dimension still resolves nothing.
        assert!(reg.weighted::<3>("exact-disk-2d").is_none());
        // And descriptors list the external one first.
        assert_eq!(reg.descriptors()[0].reference, "test stub");
    }

    #[test]
    fn colored_registration_roundtrip() {
        struct Stub;
        impl<const D: usize> ColoredSolver<D> for Stub {
            fn descriptor(&self) -> &SolverDescriptor {
                const STUB: SolverDescriptor = SolverDescriptor {
                    name: "stub-colored",
                    problem: ProblemKind::Colored,
                    shape: ShapeClass::Ball,
                    dims: crate::engine::DimSupport::Any,
                    guarantee: crate::engine::GuaranteeClass::Exact,
                    dynamic: false,
                    batch: crate::engine::BatchCapability::Independent,
                    negative_weights: false,
                    reference: "test stub",
                };
                &STUB
            }
            fn solve(
                &self,
                _instance: &ColoredInstance<D>,
            ) -> EngineResult<SolverReport<ColoredPlacement<D>>> {
                Ok(SolverReport {
                    solver: "stub-colored",
                    placement: ColoredPlacement::empty(),
                    guarantee: crate::engine::Guarantee::Exact,
                    stats: crate::engine::SolveStats::default(),
                })
            }
        }
        let mut reg = registry();
        let before = reg.colored_solvers::<2>().len();
        reg.register_colored::<2>(Arc::new(Stub));
        assert!(reg.colored::<2>("stub-colored").is_some());
        assert!(reg.colored::<3>("stub-colored").is_none(), "registered for d = 2 only");
        assert_eq!(reg.colored_solvers::<2>().len(), before + 1);
    }
}
