//! Lock-free observability primitives: a log-linear latency histogram and
//! phase-timed query traces.
//!
//! ## Histogram layout
//!
//! [`Histogram`] buckets nanosecond samples HdrHistogram-style: values below
//! 64 ns get one bucket each, and every power-of-two octave above is split
//! into 64 linear sub-buckets, so the relative bucket width never exceeds
//! 1/64 ≈ 1.6% and midpoint reconstruction stays within ~0.8% of the true
//! value.  Values are clamped to [`Histogram::MAX_NS`] (~2.4 hours), which
//! fixes the table at [`Histogram::BUCKETS`] `AtomicU64`s (~19 KiB).  Every
//! operation is a relaxed atomic add — recording never takes a lock, which
//! is what lets the server's hot request path feed one histogram per
//! endpoint without contention.  Histograms merge bucket-wise
//! ([`Histogram::merge_from`]), which is associative and loss-free, so
//! per-shard histograms can be folded into a global one at read time.
//!
//! ## Query traces
//!
//! A [`QueryTrace`] records where one query's time went, split into the
//! disjoint [`Phase`]s of the serving pipeline (cache lookup, plan, index
//! build, solve, certify, render) plus the engine's wall-clock-free work
//! counters.  The executor fills the engine phases when handed an enabled
//! [`TraceRecorder`]; the server adds its own phases and keeps a bounded
//! ring of recent traces for `GET /debug/traces`.  Phase attributions are
//! constructed so that a trace's phase sum never exceeds the batch wall
//! time: batch-level phases (plan, index build) are divided evenly across
//! the batch's queries, and per-query solver time is reduced by the query's
//! index-build share (lazy builds run inside solver calls).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use super::batch::LatencySummary;

/// Linear sub-buckets per power-of-two octave (as a shift: 2^6 = 64).
const SUB_BITS: u32 = 6;
const SUB: u64 = 1 << SUB_BITS;

impl Histogram {
    /// Largest representable sample in nanoseconds (~2.4 hours); larger
    /// samples are clamped, never dropped.
    pub const MAX_NS: u64 = (1 << 43) - 1;

    /// Number of fixed buckets: 64 unit buckets for the first octaves plus
    /// 64 sub-buckets for each of the 37 octaves up to 2^43.
    pub const BUCKETS: usize = ((43 - SUB_BITS as usize) + 1) * SUB as usize;
}

/// Index of the bucket holding `v` (clamped) nanoseconds.
#[inline]
fn bucket_of(v: u64) -> usize {
    let v = v.min(Histogram::MAX_NS);
    if v < SUB {
        v as usize
    } else {
        let e = 63 - v.leading_zeros();
        (((e - (SUB_BITS - 1)) as u64 * SUB) | ((v >> (e - SUB_BITS)) & (SUB - 1))) as usize
    }
}

/// Inclusive `(low, high)` nanosecond range of bucket `i`.
#[inline]
fn bucket_range(i: usize) -> (u64, u64) {
    let i = i as u64;
    if i < SUB {
        (i, i)
    } else {
        let octave = i >> SUB_BITS; // ≥ 1
        let sub = i & (SUB - 1);
        let width = 1u64 << (octave - 1);
        let low = (SUB + sub) << (octave - 1);
        (low, low + width - 1)
    }
}

/// The reconstructed representative value of bucket `i` (its midpoint).
#[inline]
fn bucket_mid(i: usize) -> u64 {
    let (lo, hi) = bucket_range(i);
    lo + (hi - lo) / 2
}

/// A lock-free log-linear latency histogram (see the [module docs](self)).
///
/// ```
/// use std::time::Duration;
/// use mrs_core::engine::Histogram;
///
/// let h = Histogram::new();
/// for ms in 1..=100u64 {
///     h.record(Duration::from_millis(ms));
/// }
/// let p50 = h.quantile(0.50).as_millis();
/// assert!((49..=51).contains(&p50), "p50 within bucket error: {p50}");
/// assert_eq!(h.count(), 100);
/// ```
pub struct Histogram {
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum_ns: AtomicU64,
    min_ns: AtomicU64,
    max_ns: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count())
            .field("min", &self.min())
            .field("max", &self.max())
            .finish()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        let buckets: Vec<AtomicU64> = (0..Self::BUCKETS).map(|_| AtomicU64::new(0)).collect();
        Self {
            buckets: buckets.into(),
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
            min_ns: AtomicU64::new(u64::MAX),
            max_ns: AtomicU64::new(0),
        }
    }

    /// Records one sample (lock-free; relaxed atomics).
    pub fn record(&self, sample: Duration) {
        self.record_ns(sample.as_nanos().min(u128::from(u64::MAX)) as u64);
    }

    /// Records one sample given in nanoseconds.
    pub fn record_ns(&self, ns: u64) {
        let clamped = ns.min(Self::MAX_NS);
        self.buckets[bucket_of(clamped)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(clamped, Ordering::Relaxed);
        self.min_ns.fetch_min(clamped, Ordering::Relaxed);
        self.max_ns.fetch_max(clamped, Ordering::Relaxed);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all recorded samples (clamped values).
    pub fn sum(&self) -> Duration {
        Duration::from_nanos(self.sum_ns.load(Ordering::Relaxed))
    }

    /// Smallest recorded sample, exact (zero when empty).
    pub fn min(&self) -> Duration {
        let ns = self.min_ns.load(Ordering::Relaxed);
        Duration::from_nanos(if ns == u64::MAX { 0 } else { ns })
    }

    /// Largest recorded sample, exact up to clamping (zero when empty).
    pub fn max(&self) -> Duration {
        Duration::from_nanos(self.max_ns.load(Ordering::Relaxed))
    }

    /// The nearest-rank `q`-quantile (`0.0 ≤ q ≤ 1.0`), reconstructed from
    /// the bucket midpoints and clamped into the exact `[min, max]` range —
    /// within ~0.8% of the sort-based nearest-rank percentile.  Zero when
    /// the histogram is empty.
    pub fn quantile(&self, q: f64) -> Duration {
        let count = self.count();
        if count == 0 {
            return Duration::ZERO;
        }
        let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut seen = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= rank {
                let mid = bucket_mid(i).clamp(
                    self.min_ns.load(Ordering::Relaxed),
                    self.max_ns.load(Ordering::Relaxed),
                );
                return Duration::from_nanos(mid);
            }
        }
        self.max()
    }

    /// Adds every bucket of `other` into `self` (associative, loss-free;
    /// lock-free on both sides).
    pub fn merge_from(&self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter().zip(other.buckets.iter()) {
            let n = theirs.load(Ordering::Relaxed);
            if n > 0 {
                mine.fetch_add(n, Ordering::Relaxed);
            }
        }
        self.count.fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.sum_ns.fetch_add(other.sum_ns.load(Ordering::Relaxed), Ordering::Relaxed);
        self.min_ns.fetch_min(other.min_ns.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max_ns.fetch_max(other.max_ns.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// The [`LatencySummary`] view of this histogram: exact count/min/max,
    /// mean from the exact sum, and bucket-reconstructed p50/p95/p99.
    pub fn summary(&self) -> LatencySummary {
        let count = self.count();
        if count == 0 {
            return LatencySummary::default();
        }
        LatencySummary {
            count: count as usize,
            min: self.min(),
            mean: Duration::from_nanos(self.sum_ns.load(Ordering::Relaxed) / count),
            p50: self.quantile(0.50),
            p95: self.quantile(0.95),
            p99: self.quantile(0.99),
            max: self.max(),
        }
    }

    /// Cumulative counts at the given ascending nanosecond bounds — the
    /// Prometheus `le` series.  A fine bucket counts toward the first bound
    /// that covers its upper edge, so the returned series is monotone and
    /// its (implicit) `+Inf` value equals [`Self::count`].
    pub fn cumulative_le(&self, bounds_ns: &[u64]) -> Vec<u64> {
        let mut out = vec![0u64; bounds_ns.len()];
        for (i, bucket) in self.buckets.iter().enumerate() {
            let n = bucket.load(Ordering::Relaxed);
            if n == 0 {
                continue;
            }
            let (_, hi) = bucket_range(i);
            if let Some(slot) = bounds_ns.iter().position(|&b| hi <= b) {
                for v in &mut out[slot..] {
                    *v += n;
                }
            }
        }
        out
    }
}

/// One phase of the serving pipeline a [`QueryTrace`] attributes time to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Phase {
    /// Answer-cache probe (server only; cache hits produce no trace, so
    /// this is the cost of the *miss* probe).
    CacheLookup,
    /// Batch planning: grouping queries and resolving solvers.
    Plan,
    /// This query's share of the shared-index structures built during the
    /// batch (zero on a warm index).
    IndexBuild,
    /// Solver time, net of the index-build share.
    Solve,
    /// Re-evaluating the answer against the index / delta overlay.
    Certify,
    /// Rendering the answer to JSON (server only).
    Render,
}

impl Phase {
    /// Every phase, in pipeline order.
    pub const ALL: [Phase; 6] = [
        Phase::CacheLookup,
        Phase::Plan,
        Phase::IndexBuild,
        Phase::Solve,
        Phase::Certify,
        Phase::Render,
    ];

    /// The phase's label in traces and logs.
    pub fn name(&self) -> &'static str {
        match self {
            Phase::CacheLookup => "cache_lookup",
            Phase::Plan => "plan",
            Phase::IndexBuild => "index_build",
            Phase::Solve => "solve",
            Phase::Certify => "certify",
            Phase::Render => "render",
        }
    }

    /// The phase's slot in [`QueryTrace::phases`].
    pub const fn index(&self) -> usize {
        match self {
            Phase::CacheLookup => 0,
            Phase::Plan => 1,
            Phase::IndexBuild => 2,
            Phase::Solve => 3,
            Phase::Certify => 4,
            Phase::Render => 5,
        }
    }
}

/// Where one query's time went: per-[`Phase`] durations plus the engine's
/// work counters and routing record.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct QueryTrace {
    /// The request id the server stamped (empty for CLI-local traces).
    pub id: String,
    /// The dataset the query ran against (empty for CLI-local traces).
    pub dataset: String,
    /// The query's position in its batch.
    pub query: usize,
    /// The solver name the query asked for.
    pub solver: String,
    /// The solver the `auto` meta-solver routed to, if routing happened.
    pub routed: Option<&'static str>,
    /// The query's range shape, rendered.
    pub shape: String,
    /// The dataset version the answer was computed at (0 for plain
    /// snapshot batches).
    pub version: u64,
    /// Per-phase durations, indexed by [`Phase::index`].
    pub phases: [Duration; Phase::ALL.len()],
    /// Per-answer certification flag (`None`: certification off or failed
    /// query).
    pub certified: Option<bool>,
    /// `false` if the query failed dispatch (its phases are all zero).
    pub ok: bool,
    /// Points distance-tested through spatial-index queries.
    pub candidates_examined: usize,
    /// Spatial-index cells visited.
    pub grid_cells_visited: usize,
    /// Candidates rejected by the widened f32 sieve.
    pub sieve_rejected: usize,
    /// `true` when the query ran under overload degradation (the `auto`
    /// router restricted to predicted-cheap solvers).
    pub degraded: bool,
}

impl QueryTrace {
    /// The duration recorded for `phase`.
    pub fn phase(&self, phase: Phase) -> Duration {
        self.phases[phase.index()]
    }

    /// Sets the duration of `phase`.
    pub fn set_phase(&mut self, phase: Phase, d: Duration) {
        self.phases[phase.index()] = d;
    }

    /// Sum of all phase durations.  By construction this never exceeds the
    /// wall time of the batch the query ran in (see the [module
    /// docs](self)).
    pub fn phase_total(&self) -> Duration {
        self.phases.iter().sum()
    }
}

/// Collects [`QueryTrace`]s through an executor call.  A disabled recorder
/// ([`TraceRecorder::disabled`]) makes every hook a no-op, so the untraced
/// hot path pays only a branch.
#[derive(Debug, Default)]
pub struct TraceRecorder {
    enabled: bool,
    traces: Vec<QueryTrace>,
}

impl TraceRecorder {
    /// An enabled recorder.
    pub fn new() -> Self {
        Self { enabled: true, traces: Vec::new() }
    }

    /// A disabled recorder: records nothing.
    pub fn disabled() -> Self {
        Self { enabled: false, traces: Vec::new() }
    }

    /// `true` if traces are being collected.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Appends one trace (no-op when disabled).
    pub fn record(&mut self, trace: QueryTrace) {
        if self.enabled {
            self.traces.push(trace);
        }
    }

    /// The traces collected so far.
    pub fn traces(&self) -> &[QueryTrace] {
        &self.traces
    }

    /// Mutable access, for callers that stamp ids / add phases after the
    /// engine recorded the trace.
    pub fn traces_mut(&mut self) -> &mut [QueryTrace] {
        &mut self.traces
    }

    /// Takes the collected traces, leaving the recorder empty (and still
    /// enabled/disabled as before).
    pub fn take(&mut self) -> Vec<QueryTrace> {
        std::mem::take(&mut self.traces)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_layout_is_contiguous_and_monotone() {
        // Every bucket's range follows its predecessor's with no gap, and
        // bucket_of is the inverse of bucket_range over the whole domain.
        let mut expected_low = 0u64;
        for i in 0..Histogram::BUCKETS {
            let (lo, hi) = bucket_range(i);
            assert_eq!(lo, expected_low, "bucket {i} starts where {0} ended", i - 1);
            assert!(hi >= lo);
            assert_eq!(bucket_of(lo), i);
            assert_eq!(bucket_of(hi), i);
            assert_eq!(bucket_of(bucket_mid(i)), i);
            expected_low = hi + 1;
        }
        assert_eq!(expected_low, Histogram::MAX_NS + 1);
    }

    #[test]
    fn relative_error_is_below_one_percent() {
        for &v in &[100u64, 999, 12_345, 1_000_000, 123_456_789, Histogram::MAX_NS] {
            let mid = bucket_mid(bucket_of(v));
            let err = (mid as f64 - v as f64).abs() / v as f64;
            assert!(err < 0.01, "value {v}: midpoint {mid} errs by {err}");
        }
    }

    #[test]
    fn quantiles_and_summary_track_exact_percentiles() {
        let h = Histogram::new();
        let samples: Vec<Duration> = (1..=1000u64).map(Duration::from_micros).collect();
        for s in &samples {
            h.record(*s);
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.min(), Duration::from_micros(1));
        assert_eq!(h.max(), Duration::from_micros(1000));
        for (q, exact_us) in [(0.5, 500u64), (0.9, 900), (0.99, 990), (0.999, 999)] {
            let got = h.quantile(q).as_nanos() as f64;
            let want = (exact_us * 1000) as f64;
            assert!((got - want).abs() / want < 0.01, "q{q}: {got} vs {want}");
        }
        let summary = h.summary();
        assert_eq!(summary.count, 1000);
        assert_eq!(summary.mean, Duration::from_nanos(500_500));
        assert!(summary.p99 >= summary.p95 && summary.p95 >= summary.p50);
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.99), Duration::ZERO);
        assert_eq!(h.summary(), LatencySummary::default());
        assert_eq!(h.min(), Duration::ZERO);
        assert_eq!(h.max(), Duration::ZERO);
    }

    #[test]
    fn merge_adds_bucket_wise() {
        let a = Histogram::new();
        let b = Histogram::new();
        for us in 1..=100u64 {
            a.record(Duration::from_micros(us));
            b.record(Duration::from_micros(us * 10));
        }
        a.merge_from(&b);
        assert_eq!(a.count(), 200);
        assert_eq!(a.min(), Duration::from_micros(1));
        assert_eq!(a.max(), Duration::from_micros(1000));
        let direct = Histogram::new();
        for us in 1..=100u64 {
            direct.record(Duration::from_micros(us));
            direct.record(Duration::from_micros(us * 10));
        }
        assert_eq!(a.quantile(0.5), direct.quantile(0.5));
        assert_eq!(a.sum(), direct.sum());
    }

    #[test]
    fn cumulative_le_is_monotone_and_complete() {
        let h = Histogram::new();
        for us in [5u64, 50, 500, 5_000, 50_000] {
            h.record(Duration::from_micros(us));
        }
        let bounds: Vec<u64> =
            [10u64, 100, 1_000, 10_000, 100_000].iter().map(|us| us * 1000).collect();
        let cum = h.cumulative_le(&bounds);
        assert_eq!(cum, vec![1, 2, 3, 4, 5]);
        assert!(cum.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = Histogram::new();
        std::thread::scope(|scope| {
            for t in 0..4 {
                let h = &h;
                scope.spawn(move || {
                    for i in 0..10_000u64 {
                        h.record_ns(1 + t * 13 + i % 1000);
                    }
                });
            }
        });
        assert_eq!(h.count(), 40_000);
    }

    #[test]
    fn traces_accumulate_phases() {
        let mut recorder = TraceRecorder::new();
        let mut trace =
            QueryTrace { solver: "exact-disk-2d".into(), ok: true, ..QueryTrace::default() };
        trace.set_phase(Phase::Solve, Duration::from_micros(80));
        trace.set_phase(Phase::Certify, Duration::from_micros(20));
        assert_eq!(trace.phase(Phase::Solve), Duration::from_micros(80));
        assert_eq!(trace.phase_total(), Duration::from_micros(100));
        recorder.record(trace);
        assert_eq!(recorder.traces().len(), 1);
        let mut off = TraceRecorder::disabled();
        off.record(QueryTrace::default());
        assert!(off.traces().is_empty());
        assert!(!off.is_enabled());
    }
}
