//! What a solver hands back: the placement, the guarantee it comes with, and
//! the statistics of the run.

use std::time::Duration;

/// The approximation guarantee attached to a concrete solve.
///
/// Every solver reports the *certified* quality of its answer: exact solvers
/// return the optimum, the Technique 1 samplers return a value that is at
/// least `(1/2 − ε)·opt` with high probability, and the Theorem 1.6 color
/// sampler returns at least `(1 − ε)·opt` in expectation.  In all cases the
/// reported value/distinct-count is the true quality of the returned center,
/// so it is always a valid lower bound on the optimum.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Guarantee {
    /// The returned placement is optimal.
    Exact,
    /// Value is at least `(1/2 − ε)·opt` with high probability (Theorems 1.1,
    /// 1.2, 1.5).
    HalfMinusEps {
        /// The approximation parameter the solver ran with.
        eps: f64,
    },
    /// Value is at least `(1 − ε)·opt` in expectation (Theorem 1.6).
    OneMinusEps {
        /// The approximation parameter the solver ran with.
        eps: f64,
    },
}

impl Guarantee {
    /// `true` for exact solvers.
    pub fn is_exact(&self) -> bool {
        matches!(self, Guarantee::Exact)
    }

    /// The guaranteed fraction of the optimum: `1` for exact solvers,
    /// `1/2 − ε` and `1 − ε` for the two approximation families.
    pub fn ratio(&self) -> f64 {
        match self {
            Guarantee::Exact => 1.0,
            Guarantee::HalfMinusEps { eps } => 0.5 - eps,
            Guarantee::OneMinusEps { eps } => 1.0 - eps,
        }
    }
}

impl std::fmt::Display for Guarantee {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Guarantee::Exact => write!(f, "exact"),
            Guarantee::HalfMinusEps { eps } => write!(f, "(1/2 − {eps})-approx"),
            Guarantee::OneMinusEps { eps } => write!(f, "(1 − {eps})-approx"),
        }
    }
}

/// Counters describing one solve, for experiments and observability.
///
/// Fields are `None` when the underlying algorithm does not track the
/// quantity.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SolveStats {
    /// Wall-clock time of the solve.
    pub elapsed: Duration,
    /// Shifted grids processed (sampling and output-sensitive algorithms).
    pub grids: Option<usize>,
    /// Non-empty grid cells materialized.
    pub cells: Option<usize>,
    /// Sample points maintained (Technique 1) or colors kept (Theorem 1.6).
    pub samples: Option<usize>,
    /// Candidate placements / boundary crossings examined.
    pub candidates: Option<usize>,
    /// Points distance-tested through spatial-index queries (the work the
    /// grid could not prune).  `None` when the solver runs no index queries.
    pub candidates_examined: Option<usize>,
    /// Spatial-index cells visited by those queries.  Together with
    /// [`Self::candidates_examined`] this bounds the solver's index work
    /// without a wall clock, which is what the perf-smoke tests assert on.
    pub grid_cells_visited: Option<usize>,
    /// Of the candidates examined, how many the widened f32 sieve rejected
    /// before the exact f64 verify (see `mrs_geom::kernels`).  Zero when the
    /// process runs a pure-f64 kernel mode; `None` when the solver runs no
    /// index queries.
    pub sieve_rejected: Option<usize>,
    /// Which concrete solver the `auto` meta-solver routed this query to.
    /// `None` unless the solve went through `auto`.
    pub auto_choice: Option<&'static str>,
    /// The cost model's predicted index work for the chosen solver (same
    /// unit as [`Self::auto_actual_work`]).  `None` unless `auto` solved.
    pub auto_predicted_work: Option<f64>,
    /// The work the chosen solver actually did (candidates examined plus
    /// grid cells visited; falls back to `n` for solvers that run no index
    /// queries).  `None` unless `auto` solved.
    pub auto_actual_work: Option<f64>,
    /// `true` when the solve ran under the serving layer's overload
    /// degradation mode, where the `auto` router restricts itself to
    /// predicted-cheap solvers (see `engine::cancel::degraded`).
    pub degraded: bool,
}

/// The full result of dispatching one instance to one solver.
///
/// `P` is [`crate::input::Placement`] for weighted problems and
/// [`crate::input::ColoredPlacement`] for colored ones, so the report always
/// carries the placement *and* its value / distinct-count.
#[derive(Clone, Debug, PartialEq)]
pub struct SolverReport<P> {
    /// Name of the solver that produced the report (a registry key).
    pub solver: &'static str,
    /// The placement, including its exact covered value or distinct count.
    pub placement: P,
    /// The guarantee under which `placement` was produced.
    pub guarantee: Guarantee,
    /// Run statistics.
    pub stats: SolveStats,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn guarantee_ratios() {
        assert_eq!(Guarantee::Exact.ratio(), 1.0);
        assert!(Guarantee::Exact.is_exact());
        assert!((Guarantee::HalfMinusEps { eps: 0.25 }.ratio() - 0.25).abs() < 1e-12);
        assert!((Guarantee::OneMinusEps { eps: 0.2 }.ratio() - 0.8).abs() < 1e-12);
        assert!(!Guarantee::OneMinusEps { eps: 0.2 }.is_exact());
    }

    #[test]
    fn guarantee_display() {
        assert_eq!(Guarantee::Exact.to_string(), "exact");
        assert!(Guarantee::HalfMinusEps { eps: 0.25 }.to_string().contains("0.25"));
    }
}
