//! Versioned, updatable datasets with an incremental query path.
//!
//! Everything above the algorithms used to treat a dataset as an immutable
//! `Arc<[..]>` snapshot: any change meant replacing the dataset wholesale
//! and rebuilding every index from scratch (the server's *epoch bump*).
//! This module makes datasets mutable end-to-end while keeping queries
//! incremental:
//!
//! * a [`VersionedDataset`] holds a **base generation** (an immutable
//!   snapshot with its own [`SharedIndex`]) plus an append-only **delta**
//!   (tombstone masks over the base and a small list of inserts) and a
//!   monotone `version` that bumps on every [`VersionedDataset::apply`];
//! * each version is queried through an immutable [`VersionedView`] —
//!   concurrent readers keep whatever view they fetched while writers
//!   install the next one (MVCC by `Arc` swap);
//! * view structures are **derived, not rebuilt**: the sorted event list
//!   and the planar sorted projections are produced by *merging* the base
//!   generation's cached orders with the sorted delta in `O(n)` (instead of
//!   an `O(n log n)` re-sort), and the exact solvers consume them through a
//!   per-version [`SharedIndex`] whose caches are seeded with the merged
//!   structures — answers are **byte-identical** to a from-scratch rebuild
//!   at every version;
//! * certification goes through a **delta overlay** on the base
//!   generation's CSR grids ([`mrs_geom::GridOverlay`]): base structure +
//!   linear scan of the small delta, so certifying an answer after an
//!   update never rebuilds a grid;
//! * the Theorem 1.1 [`DynamicBallMaxRS`] tracker is wired in as the
//!   *incrementally maintained* sample-set backend: every mutation updates
//!   the resident trackers in `O(ε^{-2d-2} log n)`, and approx-ball answers
//!   are read back with the non-mutating
//!   [`DynamicBallMaxRS::peek_best`] — they never rebuild at all;
//! * once the delta outgrows the base (`|delta| > α·n`), the dataset
//!   **compacts**: the live set is materialized into a fresh generation
//!   (canonical order, so live ids and cached orders stay consistent) and
//!   the delta resets.  Compaction cost is charged to the `≥ α·n` updates
//!   that caused it.
//!
//! The *canonical live order* at any version is: surviving base points in
//! base order, then surviving delta inserts in insertion order.  Every
//! derived structure (merged orders, materialized snapshots, compacted
//! generations) preserves it, which is what makes the byte-identity
//! guarantee provable: a merge of two streams that are each sorted
//! consistently with the full-rebuild comparator, tie-broken toward the
//! earlier canonical position, *is* the full-rebuild sort.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};
use std::time::{Duration, Instant};

use mrs_geom::{ColoredSite, GridOverlay, OverlayHit, Point, WeightedPoint};

use super::batch::{BatchAnswer, BatchQuery, BatchRequest, BatchStats};
use super::index::{AnswerIndex, SharedIndex};
use crate::config::SamplingConfig;
use crate::exact::interval1d::{LinePoint, SortedLine};
use crate::input::Placement;
use crate::technique1::{DynamicBallMaxRS, PointId};

/// One mutation of a versioned dataset.
///
/// The shape mirrors one batch-CSV record: an insert carries a weighted
/// point and, optionally, a color — a colored insert adds both a weighted
/// point *and* a colored site at the same coordinates, exactly like a
/// 4-field CSV row.  A delete addresses the first live point (in canonical
/// order) whose coordinates match exactly; if a live site shares those
/// coordinates, the first such site is deleted too.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Mutation<const D: usize> {
    /// Insert a weighted point (and, with a color, a colored site).
    Insert {
        /// The point and weight to add.
        point: WeightedPoint<D>,
        /// A color adds a site at the same coordinates (batch-CSV row
        /// semantics).
        color: Option<usize>,
    },
    /// Delete the first live point (and first live site, if any) at exactly
    /// these coordinates.
    Delete {
        /// Coordinates to match exactly.
        point: Point<D>,
    },
}

/// Tally of what a batch of mutations did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MutationOutcome {
    /// Points (and possibly sites) inserted.
    pub inserted: usize,
    /// Deletes that found and removed a live point.
    pub deleted: usize,
    /// Deletes whose coordinates matched no live point.
    pub missed: usize,
}

impl MutationOutcome {
    /// Accumulates another outcome.
    pub fn merge(&mut self, other: MutationOutcome) {
        self.inserted += other.inserted;
        self.deleted += other.deleted;
        self.missed += other.missed;
    }
}

/// What one [`VersionedDataset::apply`] call produced.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MutationReport {
    /// Per-mutation tally.
    pub outcome: MutationOutcome,
    /// The version the mutations created (monotone; every apply bumps it by
    /// one).
    pub version: u64,
    /// `true` if the delta outgrew the base and the dataset compacted into
    /// a fresh generation.
    pub compacted: bool,
}

/// One step of an interleaved update/query script (see
/// [`BatchExecutor::execute_script`](super::BatchExecutor::execute_script)).
#[derive(Clone, Debug, PartialEq)]
pub enum ScriptStep<const D: usize> {
    /// Answer one query at the dataset's current version.
    Query(BatchQuery<D>),
    /// Apply one mutation, bumping the version.
    Mutate(Mutation<D>),
}

/// The outcome of one script step, in step order.
#[derive(Clone, Debug)]
pub enum ScriptOutcome<const D: usize> {
    /// A query's answer, stamped with the version it was computed at and —
    /// when the executor certifies — whether the answer survived
    /// re-evaluation against exactly that version's contents.
    Answer {
        /// The dataset version the answer was computed at.
        version: u64,
        /// `Some(true)` = certified, `Some(false)` = contract violation,
        /// `None` = certification disabled (or the query failed).
        certified: Option<bool>,
        /// The answer itself.
        answer: BatchAnswer<D>,
    },
    /// A mutation's effect.
    Mutated {
        /// The version the mutation created.
        version: u64,
        /// What it did.
        outcome: MutationOutcome,
        /// Whether it triggered a compaction.
        compacted: bool,
    },
}

impl<const D: usize> ScriptOutcome<D> {
    /// The answer, if this step was a query.
    pub fn answer(&self) -> Option<&BatchAnswer<D>> {
        match self {
            ScriptOutcome::Answer { answer, .. } => Some(answer),
            ScriptOutcome::Mutated { .. } => None,
        }
    }

    /// The version this step observed or created.
    pub fn version(&self) -> u64 {
        match self {
            ScriptOutcome::Answer { version, .. } | ScriptOutcome::Mutated { version, .. } => {
                *version
            }
        }
    }

    /// The certification flag, if this step was a certified query.
    pub fn certified(&self) -> Option<bool> {
        match self {
            ScriptOutcome::Answer { certified, .. } => *certified,
            ScriptOutcome::Mutated { .. } => None,
        }
    }
}

/// The executor's response to a script: one outcome per step, in step
/// order, plus the aggregated batch statistics of the query segments.
#[derive(Clone, Debug)]
pub struct ScriptReport<const D: usize> {
    /// Per-step outcomes, indexed like the submitted steps.
    pub outcomes: Vec<ScriptOutcome<D>>,
    /// Statistics aggregated over every query segment.
    pub stats: BatchStats,
    /// Mutation steps applied.
    pub updates: usize,
    /// The dataset version after the last step.
    pub final_version: u64,
}

impl<const D: usize> ScriptReport<D> {
    /// `true` if every query answered successfully (mutations don't count).
    pub fn all_ok(&self) -> bool {
        self.outcomes.iter().filter_map(ScriptOutcome::answer).all(BatchAnswer::is_ok)
    }

    /// The answers in step order (queries only).
    pub fn answers(&self) -> impl Iterator<Item = &BatchAnswer<D>> {
        self.outcomes.iter().filter_map(ScriptOutcome::answer)
    }

    /// Per-query solver wall-time summary over the successful answers,
    /// matching [`super::BatchReport::per_query_latency`].
    pub fn per_query_latency(&self) -> super::LatencySummary {
        let samples: Vec<Duration> =
            self.answers().filter(|a| a.is_ok()).map(BatchAnswer::elapsed).collect();
        super::LatencySummary::from_durations(&samples)
    }
}

/// One immutable base generation: the snapshot the delta overlays, with its
/// own [`SharedIndex`] whose structures are built at most once per
/// generation and reused by every version until the next compaction.
struct Generation<const D: usize> {
    points: Arc<[WeightedPoint<D>]>,
    sites: Arc<[ColoredSite<D>]>,
    /// Stable per-point identity, preserved across compactions — the handle
    /// the dynamic trackers key their [`PointId`]s by.
    point_uids: Arc<[u64]>,
    index: Arc<SharedIndex<D>>,
    /// Stable-sort permutation of the base points by first coordinate (the
    /// merged-line substrate), built once per generation with exactly the
    /// comparison [`SortedLine::new`] sorts with.
    line_order: OnceLock<Arc<[u32]>>,
}

impl<const D: usize> Generation<D> {
    fn new(
        points: Arc<[WeightedPoint<D>]>,
        sites: Arc<[ColoredSite<D>]>,
        point_uids: Arc<[u64]>,
    ) -> Self {
        let index = Arc::new(SharedIndex::new(Arc::clone(&points), Arc::clone(&sites)));
        Self { points, sites, point_uids, index, line_order: OnceLock::new() }
    }

    fn line_order(&self) -> &Arc<[u32]> {
        self.line_order.get_or_init(|| {
            let mut ids: Vec<u32> = (0..self.points.len() as u32).collect();
            // Stable sort by x, exactly like `SortedLine::new`; ids start
            // ascending, so ties keep canonical (input) order.
            ids.sort_by(|&a, &b| {
                self.points[a as usize].point[0]
                    .partial_cmp(&self.points[b as usize].point[0])
                    .expect("point coordinates are finite")
            });
            ids.into()
        })
    }
}

/// The append-only delta over one generation: tombstone masks for the base
/// arrays plus insert lists (which carry their own tombstones, so a delta
/// insert can be deleted again before the next compaction).
#[derive(Clone, Default)]
struct Overlay<const D: usize> {
    point_dead: Vec<bool>,
    point_delta: Vec<WeightedPoint<D>>,
    point_delta_uids: Vec<u64>,
    point_delta_dead: Vec<bool>,
    site_dead: Vec<bool>,
    site_delta: Vec<ColoredSite<D>>,
    site_delta_dead: Vec<bool>,
}

impl<const D: usize> Overlay<D> {
    fn empty(points: usize, sites: usize) -> Self {
        Self { point_dead: vec![false; points], site_dead: vec![false; sites], ..Self::default() }
    }

    fn is_clean(&self) -> bool {
        self.delta_size() == 0
    }

    /// Base tombstones set plus *every* delta log entry (alive or
    /// tombstoned), across points and sites — the quantity the compaction
    /// threshold compares against the live size.  Tombstoned delta entries
    /// count too: an insert-then-delete churn still grows the log every
    /// query path has to skip over, so it must eventually compact away.
    fn delta_size(&self) -> usize {
        let dead = |v: &[bool]| v.iter().filter(|&&d| d).count();
        dead(&self.point_dead)
            + dead(&self.site_dead)
            + self.point_delta.len()
            + self.site_delta.len()
    }

    /// Visits every live point in **canonical order** (surviving base
    /// points first, then surviving delta inserts) with its stable uid.
    /// This is the one definition of the live order; materialization,
    /// compaction and tracker creation all drive it, so they can never
    /// drift apart — which is what the byte-identity guarantee rests on.
    fn for_each_live_point(
        &self,
        generation: &Generation<D>,
        mut f: impl FnMut(&WeightedPoint<D>, u64),
    ) {
        for (i, wp) in generation.points.iter().enumerate() {
            if !self.point_dead[i] {
                f(wp, generation.point_uids[i]);
            }
        }
        for (j, wp) in self.point_delta.iter().enumerate() {
            if !self.point_delta_dead[j] {
                f(wp, self.point_delta_uids[j]);
            }
        }
    }

    /// Visits every live site in canonical order (see
    /// [`Overlay::for_each_live_point`]).
    fn for_each_live_site(&self, generation: &Generation<D>, mut f: impl FnMut(&ColoredSite<D>)) {
        for (i, site) in generation.sites.iter().enumerate() {
            if !self.site_dead[i] {
                f(site);
            }
        }
        for (j, site) in self.site_delta.iter().enumerate() {
            if !self.site_delta_dead[j] {
                f(site);
            }
        }
    }

    fn live_points(&self, base: usize) -> usize {
        base - self.point_dead.iter().filter(|&&d| d).count()
            + self.point_delta_dead.iter().filter(|&&d| !d).count()
    }

    fn live_sites(&self, base: usize) -> usize {
        base - self.site_dead.iter().filter(|&&d| d).count()
            + self.site_delta_dead.iter().filter(|&&d| !d).count()
    }
}

/// The materialized live snapshot of one version: shared points and sites
/// in canonical order.
type LiveSets<const D: usize> = (Arc<[WeightedPoint<D>]>, Arc<[ColoredSite<D>]>);

/// Per-version lazily derived structures.
#[derive(Default)]
struct Derived<const D: usize> {
    live: OnceLock<LiveSets<D>>,
    index: OnceLock<Arc<SharedIndex<D>>>,
    /// Alive delta entries flattened for overlay scans.
    delta_points: OnceLock<(Vec<Point<D>>, Vec<f64>)>,
    delta_sites: OnceLock<(Vec<Point<D>>, Vec<usize>)>,
    coord_scale: OnceLock<f64>,
}

/// An immutable view of a versioned dataset at one version.  Cloning is
/// `O(1)` (shared `Arc`s); every query structure is derived lazily, at most
/// once per version, and answers are identical to a from-scratch rebuild of
/// the live snapshot.
#[derive(Clone)]
pub struct VersionedView<const D: usize> {
    version: u64,
    generation: Arc<Generation<D>>,
    overlay: Arc<Overlay<D>>,
    derived: Arc<Derived<D>>,
}

impl<const D: usize> VersionedView<D> {
    /// The version this view observes (monotone across the dataset's
    /// lifetime; compaction does not change it — contents are identical).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Tombstones plus live delta entries at this version (0 right after a
    /// load or a compaction).
    pub fn delta_size(&self) -> usize {
        self.overlay.delta_size()
    }

    /// Live weighted points at this version.
    pub fn point_count(&self) -> usize {
        self.overlay.live_points(self.generation.points.len())
    }

    /// Live colored sites at this version.
    pub fn site_count(&self) -> usize {
        self.overlay.live_sites(self.generation.sites.len())
    }

    fn live(&self) -> &LiveSets<D> {
        self.derived.live.get_or_init(|| {
            if self.overlay.is_clean() {
                return (Arc::clone(&self.generation.points), Arc::clone(&self.generation.sites));
            }
            let mut points =
                Vec::with_capacity(self.overlay.live_points(self.generation.points.len()));
            self.overlay.for_each_live_point(&self.generation, |wp, _| points.push(*wp));
            let mut sites =
                Vec::with_capacity(self.overlay.live_sites(self.generation.sites.len()));
            self.overlay.for_each_live_site(&self.generation, |site| sites.push(*site));
            (points.into(), sites.into())
        })
    }

    /// The live point set at this version, materialized in canonical order
    /// at most once per version (`O(1)` when nothing changed since the last
    /// compaction — the generation's own `Arc` is reused).
    pub fn live_points(&self) -> Arc<[WeightedPoint<D>]> {
        Arc::clone(&self.live().0)
    }

    /// The live site set at this version.
    pub fn live_sites(&self) -> Arc<[ColoredSite<D>]> {
        Arc::clone(&self.live().1)
    }

    /// An empty batch request over this version's live sets — aliasing
    /// exactly the `Arc`s [`Self::index`] is built over, which is what
    /// [`BatchExecutor::execute_with_index`](super::BatchExecutor::execute_with_index)
    /// requires.
    pub fn request(&self) -> BatchRequest<D> {
        BatchRequest::from_shared(self.live_points(), self.live_sites())
    }

    fn alive_delta_points(&self) -> &(Vec<Point<D>>, Vec<f64>) {
        self.derived.delta_points.get_or_init(|| {
            let o = &self.overlay;
            let mut coords = Vec::new();
            let mut weights = Vec::new();
            for (j, wp) in o.point_delta.iter().enumerate() {
                if !o.point_delta_dead[j] {
                    coords.push(wp.point);
                    weights.push(wp.weight);
                }
            }
            (coords, weights)
        })
    }

    fn alive_delta_sites(&self) -> &(Vec<Point<D>>, Vec<usize>) {
        self.derived.delta_sites.get_or_init(|| {
            let o = &self.overlay;
            let mut coords = Vec::new();
            let mut colors = Vec::new();
            for (j, s) in o.site_delta.iter().enumerate() {
                if !o.site_delta_dead[j] {
                    coords.push(s.point);
                    colors.push(s.color);
                }
            }
            (coords, colors)
        })
    }

    /// The [`SharedIndex`] queries at this version run against.  With a
    /// clean overlay this *is* the generation's resident index (no build at
    /// all); otherwise it is a per-version index over the live snapshot
    /// whose sorted event list (`D = 1`) and sorted projections (`D = 2`)
    /// are seeded by merging the generation's cached orders with the small
    /// sorted delta in `O(n)` — not rebuilt — so exact answers match a cold
    /// rebuild bit for bit.
    pub fn index(&self) -> Arc<SharedIndex<D>> {
        Arc::clone(self.derived.index.get_or_init(|| {
            if self.overlay.is_clean() {
                return Arc::clone(&self.generation.index);
            }
            let (points, sites) = self.live();
            let index = SharedIndex::new(Arc::clone(points), Arc::clone(sites));
            if D == 1 {
                index.seed_sorted_line(self.merged_line());
            }
            if D == 2 {
                for axis in 0..D {
                    index.seed_projection(axis, self.merged_projection(axis));
                }
            }
            Arc::new(index)
        }))
    }

    /// Merges the generation's stable x-order with the sorted alive delta
    /// into the [`SortedLine`] a from-scratch
    /// [`SortedLine::new`] over the canonical live order would build —
    /// byte-identical, in `O(n + |delta| log |delta|)`.
    fn merged_line(&self) -> SortedLine {
        let o = &self.overlay;
        let base = &self.generation.points;
        let order = self.generation.line_order();
        let mut delta: Vec<LinePoint> = Vec::new();
        for (j, wp) in o.point_delta.iter().enumerate() {
            if !o.point_delta_dead[j] {
                delta.push(LinePoint::new(wp.point[0], wp.weight));
            }
        }
        // Stable sort by x, like `SortedLine::new`, so equal coordinates
        // keep insertion (canonical) order.
        delta.sort_by(|a, b| a.x.partial_cmp(&b.x).expect("finite coordinates"));
        let mut merged: Vec<LinePoint> =
            Vec::with_capacity(o.live_points(base.len()) /* = survivors + delta */);
        let mut di = 0usize;
        for &id in order.iter() {
            let id = id as usize;
            if o.point_dead[id] {
                continue;
            }
            let x = base[id].point[0];
            // Left preference on ties: the base survivor precedes any delta
            // insert in canonical order, and `<=` also resolves the
            // `-0.0`/`0.0` pair the way a stable sort (which compares them
            // equal) would.
            while di < delta.len() && delta[di].x < x {
                merged.push(delta[di]);
                di += 1;
            }
            merged.push(LinePoint::new(x, base[id].weight));
        }
        merged.extend_from_slice(&delta[di..]);
        SortedLine::from_sorted(&merged)
    }

    /// Merges the generation's `(coordinate, id)` projection with the
    /// sorted alive delta into exactly the order
    /// [`crate::exact::rect2d::sorted_order_by_axis`] would produce over
    /// the canonical live snapshot — byte-identical, in
    /// `O(n + |delta| log |delta|)`.
    fn merged_projection(&self, axis: usize) -> Arc<[u32]> {
        let o = &self.overlay;
        let base = &self.generation.points;
        let order = self.generation.index.sorted_projection(axis);
        // Live id of base id `i` is `i - dead_before[i]`.
        let mut dead_before = vec![0u32; base.len() + 1];
        for i in 0..base.len() {
            dead_before[i + 1] = dead_before[i] + u32::from(o.point_dead[i]);
        }
        let survivors = base.len() as u32 - dead_before[base.len()];
        // Alive delta entries, sorted by (coordinate, insertion order) —
        // their live ids are `survivors + position`, ascending with
        // insertion order, so this is the `(coordinate, id)` order.
        let mut delta: Vec<(f64, u32)> = Vec::new();
        let mut live = survivors;
        for (j, wp) in o.point_delta.iter().enumerate() {
            if !o.point_delta_dead[j] {
                delta.push((wp.point[axis], live));
                live += 1;
            }
        }
        delta.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        let mut merged: Vec<u32> = Vec::with_capacity(live as usize);
        let mut di = 0usize;
        for &id in order.iter() {
            let id = id as usize;
            if o.point_dead[id] {
                continue;
            }
            let key = (base[id].point[axis], id as u32 - dead_before[id]);
            while di < delta.len()
                && delta[di].0.total_cmp(&key.0).then(delta[di].1.cmp(&key.1)).is_lt()
            {
                merged.push(delta[di].1);
                di += 1;
            }
            merged.push(key.1);
        }
        merged.extend(delta[di..].iter().map(|&(_, id)| id));
        merged.into()
    }

    /// Exact total weight inside the closed ball at `center`, answered
    /// through the delta overlay on the generation's per-radius grid (base
    /// CSR walk + linear delta scan; no rebuild).
    pub fn ball_weight(&self, center: &Point<D>, radius: f64) -> f64 {
        let grid = self.generation.index.point_grid(radius);
        let (coords, weights) = self.alive_delta_points();
        let overlay = GridOverlay::new(&grid, &self.overlay.point_dead, coords);
        let mut total = 0.0;
        overlay.for_each_within(center, radius, |hit| {
            total += match hit {
                OverlayHit::Base(i) => self.generation.points[i].weight,
                OverlayHit::Extra(j) => weights[j],
            };
        });
        total
    }
}

impl<const D: usize> AnswerIndex<D> for VersionedView<D> {
    fn coord_scale(&self) -> f64 {
        // The base scale may over-count tombstoned points; a larger scale
        // only widens the certification slack, which stays sound.
        *self.derived.coord_scale.get_or_init(|| {
            let mut scale = self.generation.index.coord_scale();
            for p in &self.alive_delta_points().0 {
                for i in 0..D {
                    scale = scale.max(p[i].abs());
                }
            }
            for p in &self.alive_delta_sites().0 {
                for i in 0..D {
                    scale = scale.max(p[i].abs());
                }
            }
            scale
        })
    }

    fn points(&self) -> &[WeightedPoint<D>] {
        &self.live().0
    }

    fn sites(&self) -> &[ColoredSite<D>] {
        &self.live().1
    }

    fn interval_weight_bounds(&self, lo: f64, hi: f64, slack: f64) -> (f64, f64) {
        // The per-version index carries the merged (live) sorted line; with
        // a clean overlay this is the generation's own line.  Either way no
        // sort happens beyond the one-time merge.
        self.index().interval_weight_bounds(lo, hi, slack)
    }

    fn ball_weight_bounds(&self, center: &Point<D>, radius: f64, slack: f64) -> (f64, f64) {
        let grid = self.generation.index.point_grid(radius);
        let (coords, weights) = self.alive_delta_points();
        let overlay = GridOverlay::new(&grid, &self.overlay.point_dead, coords);
        let r_in = (radius - slack).max(0.0);
        let mut definite = 0.0;
        let mut neg = 0.0;
        let mut pos = 0.0;
        overlay.for_each_within(center, radius + slack, |hit| {
            let (point, weight) = match hit {
                OverlayHit::Base(i) => {
                    (&self.generation.points[i].point, self.generation.points[i].weight)
                }
                OverlayHit::Extra(j) => (&coords[j], weights[j]),
            };
            if point.dist_sq(center) <= r_in * r_in {
                definite += weight;
            } else if weight < 0.0 {
                neg += weight;
            } else {
                pos += weight;
            }
        });
        (definite + neg, definite + pos)
    }

    fn ball_distinct_bounds(&self, center: &Point<D>, radius: f64, slack: f64) -> (usize, usize) {
        let grid = self.generation.index.site_grid(radius);
        let (coords, colors) = self.alive_delta_sites();
        let overlay = GridOverlay::new(&grid, &self.overlay.site_dead, coords);
        let r_in = (radius - slack).max(0.0);
        let mut definite: Vec<usize> = Vec::new();
        let mut boundary: Vec<usize> = Vec::new();
        overlay.for_each_within(center, radius + slack, |hit| {
            let (point, color) = match hit {
                OverlayHit::Base(i) => {
                    (&self.generation.sites[i].point, self.generation.sites[i].color)
                }
                OverlayHit::Extra(j) => (&coords[j], colors[j]),
            };
            if point.dist_sq(center) <= r_in * r_in {
                definite.push(color);
            } else {
                boundary.push(color);
            }
        });
        definite.sort_unstable();
        definite.dedup();
        let lo = definite.len();
        let mut all = definite;
        all.extend(boundary);
        all.sort_unstable();
        all.dedup();
        (lo, all.len())
    }
}

/// Cache key of one resident dynamic tracker: the query radius plus every
/// sampling-config field (bit-exact, mirroring the shared index's sample-set
/// key).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
struct TrackerKey {
    radius_bits: u64,
    eps_bits: u64,
    seed: u64,
    sample_constant_bits: u64,
    min_samples: usize,
    max_samples: usize,
    max_grids: Option<usize>,
}

impl TrackerKey {
    fn new(radius: f64, config: &SamplingConfig) -> Self {
        Self {
            radius_bits: radius.to_bits(),
            eps_bits: config.eps.to_bits(),
            seed: config.seed,
            sample_constant_bits: config.sample_constant.to_bits(),
            min_samples: config.min_samples_per_cell,
            max_samples: config.max_samples_per_cell,
            max_grids: config.max_grids,
        }
    }
}

struct TrackerEntry<const D: usize> {
    tracker: DynamicBallMaxRS<D>,
    ids: HashMap<u64, PointId>,
}

/// A tracker-replayable form of one applied mutation.
enum TrackerOp<const D: usize> {
    Insert { uid: u64, point: Point<D>, weight: f64 },
    Remove { uid: u64 },
}

/// A mutable, versioned dataset: the owner of the current
/// [`VersionedView`], the resident dynamic trackers, and the compaction
/// policy.  All methods take `&self`.  Readers' critical sections are
/// `O(1)` view clones; the writer's ([`Self::apply`]) copies the overlay
/// masks and resolves coordinate deletes by linear scan, so one mutation
/// batch holds the write lock for `O(n)` bitmask-copy work (a ~100 µs
/// memcpy-bound pause at 100k points — the committed `BENCH_dynamic.json`
/// measures ~8k single-record applies per second at that size, with
/// compaction folded in).
pub struct VersionedDataset<const D: usize> {
    current: RwLock<VersionedView<D>>,
    trackers: Mutex<HashMap<TrackerKey, TrackerEntry<D>>>,
    next_uid: AtomicU64,
    compactions: AtomicUsize,
    /// Total wall-clock time spent materializing compacted generations
    /// (nanoseconds; atomic so `/metrics` reads it without locking).
    compaction_time_ns: AtomicU64,
    /// Builds and build time of retired generations and per-version
    /// indexes, folded in as views are replaced so
    /// [`Self::builds`] stays monotone.
    retired_builds: AtomicUsize,
    retired_build_time: Mutex<Duration>,
    /// Monotone flag: set once any negative weight has ever been present,
    /// which disables the (non-negative-only) dynamic trackers.
    saw_negative: std::sync::atomic::AtomicBool,
    /// Compaction threshold: compact once `delta_size > alpha · live size`.
    alpha: f64,
}

impl<const D: usize> VersionedDataset<D> {
    /// Default compaction threshold: compact once the delta exceeds a
    /// quarter of the live size.
    pub const DEFAULT_COMPACTION_ALPHA: f64 = 0.25;

    /// A versioned dataset over the given initial snapshot, at version 1.
    ///
    /// # Panics
    /// Panics if any coordinate or weight is not finite.
    pub fn new(points: Vec<WeightedPoint<D>>, sites: Vec<ColoredSite<D>>) -> Self {
        for wp in &points {
            assert!(wp.point.is_finite(), "point coordinates must be finite");
            assert!(wp.weight.is_finite(), "weights must be finite");
        }
        for s in &sites {
            assert!(s.point.is_finite(), "site coordinates must be finite");
        }
        Self::from_shared(points.into(), sites.into())
    }

    /// A versioned dataset over already-shared sets (trusted finite),
    /// without copying them.
    pub fn from_shared(points: Arc<[WeightedPoint<D>]>, sites: Arc<[ColoredSite<D>]>) -> Self {
        let n = points.len();
        let saw_negative = points.iter().any(|wp| wp.weight < 0.0);
        let uids: Arc<[u64]> = (0..n as u64).collect::<Vec<_>>().into();
        let sites_len = sites.len();
        let generation = Arc::new(Generation::new(points, sites, uids));
        let view = VersionedView {
            version: 1,
            overlay: Arc::new(Overlay::empty(n, sites_len)),
            derived: Arc::new(Derived::default()),
            generation,
        };
        Self {
            current: RwLock::new(view),
            trackers: Mutex::new(HashMap::new()),
            next_uid: AtomicU64::new(n as u64),
            compactions: AtomicUsize::new(0),
            compaction_time_ns: AtomicU64::new(0),
            retired_builds: AtomicUsize::new(0),
            retired_build_time: Mutex::new(Duration::ZERO),
            saw_negative: std::sync::atomic::AtomicBool::new(saw_negative),
            alpha: Self::DEFAULT_COMPACTION_ALPHA,
        }
    }

    /// Overrides the compaction threshold `α` (compact once
    /// `|delta| > α·n`).
    ///
    /// # Panics
    /// Panics unless `α` is positive and finite.
    pub fn with_compaction_alpha(mut self, alpha: f64) -> Self {
        assert!(alpha.is_finite() && alpha > 0.0, "compaction alpha must be positive");
        self.alpha = alpha;
        self
    }

    /// The current version's immutable view (`O(1)`; the view stays valid —
    /// and answers stay reproducible — however many mutations land after).
    pub fn view(&self) -> VersionedView<D> {
        self.current.read().expect("versioned dataset lock poisoned").clone()
    }

    /// The current version (monotone, starts at 1).
    pub fn version(&self) -> u64 {
        self.current.read().expect("versioned dataset lock poisoned").version
    }

    /// Compactions performed so far.
    pub fn compactions(&self) -> usize {
        self.compactions.load(Ordering::Relaxed)
    }

    /// Total wall-clock time spent materializing compacted generations
    /// (monotone, like [`Self::compactions`]).
    pub fn compaction_time(&self) -> Duration {
        Duration::from_nanos(self.compaction_time_ns.load(Ordering::Relaxed))
    }

    /// Index structures built so far across every generation and version,
    /// including merged-structure seeds (monotone, like
    /// [`SharedIndex::builds`]).
    pub fn builds(&self) -> usize {
        let view = self.view();
        let mut builds =
            self.retired_builds.load(Ordering::Relaxed) + view.generation.index.builds();
        if let Some(index) = view.derived.index.get() {
            if !Arc::ptr_eq(index, &view.generation.index) {
                builds += index.builds();
            }
        }
        builds
    }

    /// Total wall-clock time spent building index structures, across every
    /// generation and version.
    pub fn build_time(&self) -> Duration {
        let view = self.view();
        let mut total = *self.retired_build_time.lock().expect("build-time lock poisoned")
            + view.generation.index.build_time();
        if let Some(index) = view.derived.index.get() {
            if !Arc::ptr_eq(index, &view.generation.index) {
                total += index.build_time();
            }
        }
        total
    }

    /// Folds a retiring view's distinct per-version index (if it ever
    /// materialized) into the monotone counters.
    fn retire_view(&self, view: &VersionedView<D>) {
        if let Some(index) = view.derived.index.get() {
            if !Arc::ptr_eq(index, &view.generation.index) {
                self.retired_builds.fetch_add(index.builds(), Ordering::Relaxed);
                *self.retired_build_time.lock().expect("build-time lock poisoned") +=
                    index.build_time();
            }
        }
    }

    /// Applies a batch of mutations as **one** new version (the mutation
    /// body of a `POST /datasets/{name}/insert` is one version bump, not
    /// one per record), updates every resident dynamic tracker
    /// incrementally, and compacts if the delta outgrew the base.
    ///
    /// # Panics
    /// Panics if an inserted coordinate or weight is not finite.
    pub fn apply(&self, mutations: &[Mutation<D>]) -> MutationReport {
        let mut current = self.current.write().expect("versioned dataset lock poisoned");
        let generation = Arc::clone(&current.generation);
        let mut overlay = (*current.overlay).clone();
        let mut outcome = MutationOutcome::default();
        let mut ops: Vec<TrackerOp<D>> = Vec::with_capacity(mutations.len());
        for mutation in mutations {
            match mutation {
                Mutation::Insert { point: wp, color } => {
                    assert!(wp.point.is_finite(), "point coordinates must be finite");
                    assert!(wp.weight.is_finite(), "weights must be finite");
                    if wp.weight < 0.0 {
                        self.saw_negative.store(true, Ordering::Relaxed);
                    }
                    let uid = self.next_uid.fetch_add(1, Ordering::Relaxed);
                    overlay.point_delta.push(*wp);
                    overlay.point_delta_uids.push(uid);
                    overlay.point_delta_dead.push(false);
                    ops.push(TrackerOp::Insert { uid, point: wp.point, weight: wp.weight });
                    if let Some(color) = color {
                        overlay.site_delta.push(ColoredSite::new(wp.point, *color));
                        overlay.site_delta_dead.push(false);
                    }
                    outcome.inserted += 1;
                }
                Mutation::Delete { point } => match kill_point(&generation, &mut overlay, point) {
                    Some(uid) => {
                        ops.push(TrackerOp::Remove { uid });
                        kill_site(&generation, &mut overlay, point);
                        outcome.deleted += 1;
                    }
                    None => outcome.missed += 1,
                },
            }
        }
        let version = current.version + 1;
        self.retire_view(&current);

        let live_points = overlay.live_points(generation.points.len());
        let live_sites = overlay.live_sites(generation.sites.len());
        let live = (live_points + live_sites).max(1);
        let compacted = overlay.delta_size() as f64 > self.alpha * live as f64;
        let next = if compacted {
            // Materialize the canonical live order into a fresh generation;
            // live ids, uids and every derived order stay consistent.
            let compact_start = Instant::now();
            self.retired_builds.fetch_add(generation.index.builds(), Ordering::Relaxed);
            *self.retired_build_time.lock().expect("build-time lock poisoned") +=
                generation.index.build_time();
            self.compactions.fetch_add(1, Ordering::Relaxed);
            let mut points = Vec::with_capacity(live_points);
            let mut uids = Vec::with_capacity(live_points);
            overlay.for_each_live_point(&generation, |wp, uid| {
                points.push(*wp);
                uids.push(uid);
            });
            let mut sites = Vec::with_capacity(live_sites);
            overlay.for_each_live_site(&generation, |site| sites.push(*site));
            let generation = Arc::new(Generation::new(points.into(), sites.into(), uids.into()));
            let view = VersionedView {
                version,
                overlay: Arc::new(Overlay::empty(live_points, live_sites)),
                derived: Arc::new(Derived::default()),
                generation,
            };
            self.compaction_time_ns
                .fetch_add(compact_start.elapsed().as_nanos() as u64, Ordering::Relaxed);
            view
        } else {
            VersionedView {
                version,
                overlay: Arc::new(overlay),
                derived: Arc::new(Derived::default()),
                generation,
            }
        };
        *current = next;

        // Update the resident trackers under the write lock, so a tracker
        // answer is always consistent with the version the reader fetched.
        let mut trackers = self.trackers.lock().expect("tracker lock poisoned");
        if self.saw_negative.load(Ordering::Relaxed) {
            // Trackers require non-negative weights; drop them (they would
            // be stale) and let lazy creation refuse while the flag holds.
            trackers.clear();
        } else {
            for entry in trackers.values_mut() {
                for op in &ops {
                    match op {
                        TrackerOp::Insert { uid, point, weight } => {
                            let id = entry.tracker.insert(*point, *weight);
                            entry.ids.insert(*uid, id);
                        }
                        TrackerOp::Remove { uid } => {
                            if let Some(id) = entry.ids.remove(uid) {
                                entry.tracker.remove(id);
                            }
                        }
                    }
                }
            }
        }
        drop(trackers);
        drop(current);
        MutationReport { outcome, version, compacted }
    }

    /// The incrementally maintained `(1/2 − ε)`-approximate ball answer at
    /// the **current** version: the resident [`DynamicBallMaxRS`] tracker
    /// for `(radius, config)` is created once (from the live snapshot),
    /// updated by every later mutation, and read here with the non-mutating
    /// [`DynamicBallMaxRS::peek_best`] — this path never rebuilds a
    /// sampling structure.  The reported value is the exact covered weight
    /// of the reported center, recounted through the delta overlay.
    ///
    /// Returns the view the answer is valid at alongside the placement.
    /// `None` when the dataset has (ever) carried negative weights — the
    /// tracker requires non-negative ones, matching the `dynamic-ball`
    /// solver's typed refusal.
    pub fn dynamic_ball_best(
        &self,
        radius: f64,
        config: &SamplingConfig,
    ) -> Option<(VersionedView<D>, Placement<D>)> {
        // Lock order: state read, then trackers — the same order `apply`
        // takes (write, then trackers), so the tracker can never be newer
        // than the view we hand back.
        let current = self.current.read().expect("versioned dataset lock poisoned");
        // The flag must be read *under* the lock: a concurrent apply() that
        // inserts a negative weight sets it before installing the new view,
        // so whatever view we now hold is consistently either all
        // non-negative or refused here.
        if self.saw_negative.load(Ordering::Relaxed) {
            return None;
        }
        let view = current.clone();
        let mut trackers = self.trackers.lock().expect("tracker lock poisoned");
        let entry = trackers.entry(TrackerKey::new(radius, config)).or_insert_with(|| {
            let mut tracker = DynamicBallMaxRS::new(radius, *config);
            let mut ids = HashMap::new();
            view.overlay.for_each_live_point(&view.generation, |wp, uid| {
                ids.insert(uid, tracker.insert(wp.point, wp.weight));
            });
            TrackerEntry { tracker, ids }
        });
        let placement = match entry.tracker.peek_best() {
            None => Placement::empty(),
            Some(approx) => {
                // Certify the report: the engine contract is that reported
                // values are the exact coverage of the returned center.
                let value = view.ball_weight(&approx.center, radius);
                Placement { center: approx.center, value }
            }
        };
        drop(trackers);
        drop(current);
        Some((view, placement))
    }
}

/// Tombstones the first live point (canonical order) at exactly `point`,
/// returning its uid.
fn kill_point<const D: usize>(
    generation: &Generation<D>,
    overlay: &mut Overlay<D>,
    point: &Point<D>,
) -> Option<u64> {
    for (i, wp) in generation.points.iter().enumerate() {
        if !overlay.point_dead[i] && wp.point == *point {
            overlay.point_dead[i] = true;
            return Some(generation.point_uids[i]);
        }
    }
    for (j, wp) in overlay.point_delta.iter().enumerate() {
        if !overlay.point_delta_dead[j] && wp.point == *point {
            overlay.point_delta_dead[j] = true;
            return Some(overlay.point_delta_uids[j]);
        }
    }
    None
}

/// Tombstones the first live site (canonical order) at exactly `point`, if
/// any.
fn kill_site<const D: usize>(
    generation: &Generation<D>,
    overlay: &mut Overlay<D>,
    point: &Point<D>,
) {
    for (i, s) in generation.sites.iter().enumerate() {
        if !overlay.site_dead[i] && s.point == *point {
            overlay.site_dead[i] = true;
            return;
        }
    }
    for (j, s) in overlay.site_delta.iter().enumerate() {
        if !overlay.site_delta_dead[j] && s.point == *point {
            overlay.site_delta_dead[j] = true;
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::rect2d::sorted_order_by_axis;
    use mrs_geom::Point2;
    use rand::prelude::*;

    fn wp(x: f64, y: f64, w: f64) -> WeightedPoint<2> {
        WeightedPoint::new(Point2::xy(x, y), w)
    }

    #[test]
    fn starts_at_version_one_with_a_clean_overlay() {
        let dataset = VersionedDataset::new(vec![wp(0.0, 0.0, 1.0)], Vec::new());
        assert_eq!(dataset.version(), 1);
        assert_eq!(dataset.compactions(), 0);
        let view = dataset.view();
        assert_eq!(view.delta_size(), 0);
        assert_eq!(view.point_count(), 1);
        // A clean overlay reuses the generation's resident index verbatim.
        assert!(Arc::ptr_eq(&view.index(), &view.index()));
        assert!(Arc::ptr_eq(&view.live_points(), &dataset.view().live_points()));
    }

    #[test]
    fn inserts_deletes_and_versions() {
        let dataset = VersionedDataset::new(vec![wp(0.0, 0.0, 1.0), wp(1.0, 0.0, 2.0)], Vec::new());
        let report = dataset.apply(&[
            Mutation::Insert { point: wp(2.0, 0.0, 3.0), color: Some(7) },
            Mutation::Delete { point: Point2::xy(0.0, 0.0) },
            Mutation::Delete { point: Point2::xy(42.0, 0.0) },
        ]);
        assert_eq!(report.version, 2);
        assert_eq!(report.outcome, MutationOutcome { inserted: 1, deleted: 1, missed: 1 });
        let view = dataset.view();
        assert_eq!(view.point_count(), 2);
        assert_eq!(view.site_count(), 1, "a colored insert adds a site too");
        let live = view.live_points();
        assert_eq!(live.len(), 2);
        assert_eq!(live[0].point, Point2::xy(1.0, 0.0), "canonical order: survivors first");
        assert_eq!(live[1].point, Point2::xy(2.0, 0.0));
        // Old views stay valid (MVCC): a view fetched before the mutation
        // still sees version 1's contents.
        let old = VersionedDataset::new(vec![wp(0.0, 0.0, 1.0)], Vec::new());
        let before = old.view();
        old.apply(&[Mutation::Delete { point: Point2::xy(0.0, 0.0) }]);
        assert_eq!(before.point_count(), 1);
        assert_eq!(old.view().point_count(), 0);
    }

    #[test]
    fn delete_then_reinsert_at_the_same_coordinates() {
        let dataset = VersionedDataset::new(vec![wp(1.0, 1.0, 5.0)], Vec::new());
        dataset.apply(&[Mutation::Delete { point: Point2::xy(1.0, 1.0) }]);
        assert_eq!(dataset.view().point_count(), 0);
        dataset.apply(&[Mutation::Insert { point: wp(1.0, 1.0, 2.0), color: None }]);
        let view = dataset.view();
        assert_eq!(view.point_count(), 1);
        assert_eq!(view.live_points()[0].weight, 2.0, "the reinsert is a new point");
        // Deleting again removes the delta insert, not the tombstoned base.
        dataset.apply(&[Mutation::Delete { point: Point2::xy(1.0, 1.0) }]);
        assert_eq!(dataset.view().point_count(), 0);
    }

    #[test]
    fn merged_structures_match_a_from_scratch_rebuild() {
        let mut rng = StdRng::seed_from_u64(11);
        let base: Vec<WeightedPoint<2>> = (0..60)
            .map(|_| {
                wp(
                    (rng.gen_range(0..40) as f64) * 0.25, // many coordinate ties
                    rng.gen_range(0.0..10.0),
                    rng.gen_range(0.5..2.0),
                )
            })
            .collect();
        let dataset = VersionedDataset::new(base.clone(), Vec::new());
        for step in 0..25 {
            if rng.gen_bool(0.5) {
                dataset.apply(&[Mutation::Insert {
                    point: wp((rng.gen_range(0..40) as f64) * 0.25, rng.gen_range(0.0..10.0), 1.0),
                    color: None,
                }]);
            } else {
                let view = dataset.view();
                let live = view.live_points();
                if !live.is_empty() {
                    let victim = live[rng.gen_range(0..live.len())].point;
                    dataset.apply(&[Mutation::Delete { point: victim }]);
                }
            }
            let view = dataset.view();
            let live = view.live_points();
            // Projections: merged order equals the full re-sort, bit for bit.
            let index = view.index();
            for axis in 0..2 {
                let merged = index.sorted_projection(axis);
                let rebuilt = sorted_order_by_axis(&live, axis);
                assert_eq!(&merged[..], &rebuilt[..], "axis {axis} at step {step}");
            }
        }
    }

    #[test]
    fn merged_line_matches_a_from_scratch_rebuild_in_1d() {
        let mut rng = StdRng::seed_from_u64(12);
        let base: Vec<WeightedPoint<1>> = (0..50)
            .map(|_| {
                WeightedPoint::new(
                    Point::new([(rng.gen_range(0..30) as f64) * 0.5]),
                    rng.gen_range(0.5..2.0),
                )
            })
            .collect();
        let dataset = VersionedDataset::new(base, Vec::new());
        for _ in 0..20 {
            if rng.gen_bool(0.5) {
                dataset.apply(&[Mutation::Insert {
                    point: WeightedPoint::new(
                        Point::new([(rng.gen_range(0..30) as f64) * 0.5]),
                        rng.gen_range(0.5..2.0),
                    ),
                    color: None,
                }]);
            } else {
                let live = dataset.view().live_points();
                if !live.is_empty() {
                    let victim = live[rng.gen_range(0..live.len())].point;
                    dataset.apply(&[Mutation::Delete { point: victim }]);
                }
            }
            let view = dataset.view();
            let live = view.live_points();
            let merged = view.index();
            let rebuilt = SortedLine::new(
                &live.iter().map(|p| LinePoint::new(p.point[0], p.weight)).collect::<Vec<_>>(),
            );
            assert_eq!(merged.sorted_line().xs(), rebuilt.xs());
            assert_eq!(merged.sorted_line().prefix(), rebuilt.prefix());
            // And the solved interval is byte-identical.
            let a = merged.sorted_line().max_interval(3.0);
            let b = rebuilt.max_interval(3.0);
            assert_eq!(a.value.to_bits(), b.value.to_bits());
            assert_eq!(a.interval.lo.to_bits(), b.interval.lo.to_bits());
        }
    }

    #[test]
    fn overlay_certification_bounds_match_brute_force() {
        let mut rng = StdRng::seed_from_u64(13);
        let base: Vec<WeightedPoint<2>> = (0..80)
            .map(|_| wp(rng.gen_range(0.0..8.0), rng.gen_range(0.0..8.0), rng.gen_range(0.5..2.0)))
            .collect();
        let dataset = VersionedDataset::new(base, Vec::new());
        for _ in 0..10 {
            dataset.apply(&[Mutation::Insert {
                point: wp(rng.gen_range(0.0..8.0), rng.gen_range(0.0..8.0), 1.0),
                color: None,
            }]);
            let live = dataset.view().live_points();
            let victim = live[rng.gen_range(0..live.len())].point;
            dataset.apply(&[Mutation::Delete { point: victim }]);
        }
        let view = dataset.view();
        let live = view.live_points();
        for _ in 0..20 {
            let center = Point2::xy(rng.gen_range(0.0..8.0), rng.gen_range(0.0..8.0));
            let radius = rng.gen_range(0.5..2.5);
            let brute: f64 = live
                .iter()
                .filter(|p| p.point.dist(&center) <= radius * (1.0 + 1e-12) + 1e-12)
                .map(|p| p.weight)
                .sum();
            let overlay = view.ball_weight(&center, radius);
            assert!((overlay - brute).abs() < 1e-9, "{overlay} vs {brute}");
            let (lo, hi) = AnswerIndex::ball_weight_bounds(&view, &center, radius, 1e-9);
            assert!(lo <= brute + 1e-9 && brute <= hi + 1e-9, "{lo} ≤ {brute} ≤ {hi}");
        }
    }

    #[test]
    fn compaction_triggers_and_preserves_contents() {
        let base: Vec<WeightedPoint<2>> =
            (0..20).map(|i| wp(i as f64, 0.0, 1.0 + (i % 3) as f64)).collect();
        let dataset = VersionedDataset::new(base.clone(), Vec::new()).with_compaction_alpha(0.25);
        let before: Vec<WeightedPoint<2>> = dataset.view().live_points().to_vec();
        let mut compacted = false;
        for i in 0..10 {
            let report = dataset.apply(&[
                Mutation::Delete { point: Point2::xy(i as f64, 0.0) },
                Mutation::Insert { point: wp(100.0 + i as f64, 0.0, 2.0), color: None },
            ]);
            compacted |= report.compacted;
            if report.compacted {
                assert_eq!(dataset.view().delta_size(), 0, "compaction resets the delta");
            }
        }
        assert!(compacted, "a 100% churn must cross the α = 0.25 threshold");
        assert!(dataset.compactions() >= 1);
        assert!(dataset.compaction_time() > Duration::ZERO, "compactions are timed");
        assert_eq!(dataset.version(), 11, "compaction does not bump the version");
        // Contents are exactly the canonical live order of the script.
        let live = dataset.view().live_points();
        let mut expected: Vec<WeightedPoint<2>> = before.into_iter().skip(10).collect();
        expected.extend((0..10).map(|i| wp(100.0 + i as f64, 0.0, 2.0)));
        assert_eq!(live.len(), expected.len());
        for (a, b) in live.iter().zip(&expected) {
            assert_eq!(a.point, b.point);
            assert_eq!(a.weight, b.weight);
        }
    }

    #[test]
    fn dynamic_tracker_is_maintained_incrementally() {
        let config = SamplingConfig::practical(0.25).with_seed(21);
        let dataset = VersionedDataset::new(
            (0..30).map(|i| wp(0.05 * i as f64, 0.0, 1.0)).collect(),
            Vec::new(),
        );
        let (view, best) = dataset.dynamic_ball_best(1.0, &config).expect("non-negative");
        assert_eq!(view.version(), 1);
        assert_eq!(best.value, 30.0, "all 30 points fit in one unit disk");
        // A far heavy cluster appears: the tracker must follow without a
        // rebuild (epochs only advance when the live count doubles).
        let heavy: Vec<Mutation<2>> = (0..5)
            .map(|i| Mutation::Insert { point: wp(50.0 + 0.01 * i as f64, 0.0, 20.0), color: None })
            .collect();
        dataset.apply(&heavy);
        let (view, best) = dataset.dynamic_ball_best(1.0, &config).expect("non-negative");
        assert_eq!(view.version(), 2);
        assert_eq!(best.value, 100.0);
        assert!(best.center.dist(&Point2::xy(50.02, 0.0)) < 1.5);
        // Delete the cluster again: the tracker tracks the removals.
        let removals: Vec<Mutation<2>> = (0..5)
            .map(|i| Mutation::Delete { point: Point2::xy(50.0 + 0.01 * i as f64, 0.0) })
            .collect();
        dataset.apply(&removals);
        let (_, best) = dataset.dynamic_ball_best(1.0, &config).expect("non-negative");
        assert_eq!(best.value, 30.0);
        // Negative weights disable the tracker path with a clean None.
        dataset.apply(&[Mutation::Insert { point: wp(0.0, 0.0, -1.0), color: None }]);
        assert!(dataset.dynamic_ball_best(1.0, &config).is_none());
    }
}
