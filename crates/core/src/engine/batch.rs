//! The batch-query model: many MaxRS queries over one shared point set.
//!
//! The paper's general techniques all amortize work across queries — grid
//! shifting reuses one shifted-grid family, the Section 5 batched solver
//! reuses one sorted event list, the Section 4 algorithms reuse one spatial
//! index — and this module gives that amortization a first-class request
//! shape.  A [`BatchRequest`] is one weighted point set and/or one colored
//! site set plus an ordered list of [`BatchQuery`]s naming a registered
//! solver and a query [`RangeShape`] each.  The
//! [`executor`](super::executor) answers it with a [`BatchReport`]: one
//! [`BatchAnswer`] per query, in request order, plus batch-level
//! [`BatchStats`] (wall clock, aggregate solver time, shared-index builds,
//! throughput).

use std::sync::Arc;
use std::time::Duration;

use mrs_geom::{ColoredSite, WeightedPoint};

use super::instance::RangeShape;
use super::report::SolverReport;
use super::EngineError;
use crate::input::{ColoredPlacement, Placement};

/// One query of a batch: which solver to ask, and with what range shape.
///
/// The solver is named by its registry key (see
/// [`Registry`](super::Registry)); the executor resolves every distinct name
/// once per batch.
#[derive(Clone, Debug, PartialEq)]
pub enum BatchQuery<const D: usize> {
    /// A weighted MaxRS query against the batch's point set.
    Weighted {
        /// Registry name of the solver to dispatch to.
        solver: String,
        /// The query-range shape.
        shape: RangeShape<D>,
    },
    /// A colored MaxRS query against the batch's site set.
    Colored {
        /// Registry name of the solver to dispatch to.
        solver: String,
        /// The query-range shape.
        shape: RangeShape<D>,
    },
}

impl<const D: usize> BatchQuery<D> {
    /// A weighted query for the named solver.
    pub fn weighted(solver: impl Into<String>, shape: RangeShape<D>) -> Self {
        BatchQuery::Weighted { solver: solver.into(), shape }
    }

    /// A colored query for the named solver.
    pub fn colored(solver: impl Into<String>, shape: RangeShape<D>) -> Self {
        BatchQuery::Colored { solver: solver.into(), shape }
    }

    /// The registry name the query dispatches to.
    pub fn solver(&self) -> &str {
        match self {
            BatchQuery::Weighted { solver, .. } | BatchQuery::Colored { solver, .. } => solver,
        }
    }

    /// The query's range shape.
    pub fn shape(&self) -> &RangeShape<D> {
        match self {
            BatchQuery::Weighted { shape, .. } | BatchQuery::Colored { shape, .. } => shape,
        }
    }
}

/// A set of queries to be answered against one shared point/site set.
///
/// ```
/// use mrs_core::engine::{registry, BatchExecutor, BatchQuery, BatchRequest, RangeShape};
/// use mrs_geom::{Point2, WeightedPoint};
///
/// let points = vec![
///     WeightedPoint::unit(Point2::xy(0.0, 0.0)),
///     WeightedPoint::unit(Point2::xy(0.5, 0.0)),
///     WeightedPoint::unit(Point2::xy(9.0, 9.0)),
/// ];
/// let request = BatchRequest::over_points(points)
///     .with_query(BatchQuery::weighted("exact-disk-2d", RangeShape::ball(1.0)))
///     .with_query(BatchQuery::weighted("exact-rect-2d", RangeShape::rect(2.0, 2.0)));
/// let registry = registry();
/// let report = BatchExecutor::new(&registry).execute(&request);
/// assert_eq!(report.answers.len(), 2);
/// assert_eq!(report.weighted(0).unwrap().placement.value, 2.0);
/// ```
#[derive(Clone, Debug)]
pub struct BatchRequest<const D: usize> {
    points: Arc<[WeightedPoint<D>]>,
    sites: Arc<[ColoredSite<D>]>,
    queries: Vec<BatchQuery<D>>,
}

impl<const D: usize> BatchRequest<D> {
    /// A request over a weighted point set and a colored site set (either may
    /// be empty; weighted queries see only `points`, colored queries only
    /// `sites`).
    ///
    /// # Panics
    /// Panics if any coordinate or weight is not finite.
    pub fn new(points: Vec<WeightedPoint<D>>, sites: Vec<ColoredSite<D>>) -> Self {
        for wp in &points {
            assert!(wp.point.is_finite(), "point coordinates must be finite");
            assert!(wp.weight.is_finite(), "weights must be finite");
        }
        for s in &sites {
            assert!(s.point.is_finite(), "site coordinates must be finite");
        }
        Self { points: points.into(), sites: sites.into(), queries: Vec::new() }
    }

    /// A request over already-shared point and site sets, without copying
    /// either (`O(1)`).  This is the resident-dataset path: build the request
    /// from the same `Arc`s a catalog-owned
    /// [`SharedIndex`](super::SharedIndex) holds, then answer it with
    /// [`BatchExecutor::execute_with_index`](super::BatchExecutor::execute_with_index).
    ///
    /// The sets are trusted to be finite — they were validated when first
    /// wrapped (by [`Self::new`] or an instance constructor).
    pub fn from_shared(points: Arc<[WeightedPoint<D>]>, sites: Arc<[ColoredSite<D>]>) -> Self {
        Self { points, sites, queries: Vec::new() }
    }

    /// A request over a weighted point set only.
    pub fn over_points(points: Vec<WeightedPoint<D>>) -> Self {
        Self::new(points, Vec::new())
    }

    /// A request over a colored site set only.
    pub fn over_sites(sites: Vec<ColoredSite<D>>) -> Self {
        Self::new(Vec::new(), sites)
    }

    /// Appends a query (builder style).
    pub fn with_query(mut self, query: BatchQuery<D>) -> Self {
        self.queries.push(query);
        self
    }

    /// Appends a query.
    pub fn push(&mut self, query: BatchQuery<D>) {
        self.queries.push(query);
    }

    /// The shared weighted point set.
    pub fn points(&self) -> &[WeightedPoint<D>] {
        &self.points
    }

    /// The shared colored site set.
    pub fn sites(&self) -> &[ColoredSite<D>] {
        &self.sites
    }

    /// The shared handle to the point set (`O(1)` to clone).
    pub fn shared_points(&self) -> Arc<[WeightedPoint<D>]> {
        Arc::clone(&self.points)
    }

    /// The shared handle to the site set (`O(1)` to clone).
    pub fn shared_sites(&self) -> Arc<[ColoredSite<D>]> {
        Arc::clone(&self.sites)
    }

    /// The queries, in submission order.
    pub fn queries(&self) -> &[BatchQuery<D>] {
        &self.queries
    }

    /// Number of queries.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// `true` if the request holds no queries.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }
}

/// The outcome of one batch query, in the report's `answers` vector at the
/// query's request position.
#[derive(Clone, Debug, PartialEq)]
pub enum BatchAnswer<const D: usize> {
    /// A weighted query's report.
    Weighted(SolverReport<Placement<D>>),
    /// A colored query's report.
    Colored(SolverReport<ColoredPlacement<D>>),
    /// The query could not be answered (unknown solver, shape/dimension
    /// mismatch, negative-weight rejection).
    Failed(EngineError),
}

impl<const D: usize> BatchAnswer<D> {
    /// `true` unless the query failed.
    pub fn is_ok(&self) -> bool {
        !matches!(self, BatchAnswer::Failed(_))
    }

    /// The weighted report, if this is a successful weighted answer.
    pub fn weighted(&self) -> Option<&SolverReport<Placement<D>>> {
        match self {
            BatchAnswer::Weighted(report) => Some(report),
            _ => None,
        }
    }

    /// The colored report, if this is a successful colored answer.
    pub fn colored(&self) -> Option<&SolverReport<ColoredPlacement<D>>> {
        match self {
            BatchAnswer::Colored(report) => Some(report),
            _ => None,
        }
    }

    /// The dispatch error, if the query failed.
    pub fn error(&self) -> Option<&EngineError> {
        match self {
            BatchAnswer::Failed(error) => Some(error),
            _ => None,
        }
    }

    /// Wall-clock time the solver spent on this query (zero for failures).
    pub fn elapsed(&self) -> Duration {
        match self {
            BatchAnswer::Weighted(report) => report.stats.elapsed,
            BatchAnswer::Colored(report) => report.stats.elapsed,
            BatchAnswer::Failed(_) => Duration::ZERO,
        }
    }

    /// The solve statistics, if the query succeeded.
    pub fn solve_stats(&self) -> Option<&super::SolveStats> {
        match self {
            BatchAnswer::Weighted(report) => Some(&report.stats),
            BatchAnswer::Colored(report) => Some(&report.stats),
            BatchAnswer::Failed(_) => None,
        }
    }
}

/// Batch-level execution statistics.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct BatchStats {
    /// Number of queries in the batch.
    pub queries: usize,
    /// Number of queries that failed dispatch.
    pub failed: usize,
    /// The executor's thread *budget*: at most this many scoped workers fan
    /// out across tasks, and an index-shared group task receives the
    /// leftover share for internal chunking — so fewer OS workers than this
    /// may have spawned when the batch had fewer tasks.
    pub threads: usize,
    /// Shared-index structures built for this batch (sorted event list,
    /// Fenwick tree, one hash grid per distinct query radius).
    pub index_builds: usize,
    /// Total time spent building shared-index structures.
    pub index_build_time: Duration,
    /// Wall-clock time of the whole batch, end to end.
    pub wall: Duration,
    /// Sum of per-query solver times (≥ `wall` when parallelism helps).
    pub solver_time: Duration,
    /// Answers certified against the shared index (see
    /// [`ExecutorConfig::certify`](super::ExecutorConfig)).
    pub certified: usize,
    /// Certifications whose re-evaluated value disagreed with the report
    /// (always 0 unless a solver violates its contract).
    pub certify_failures: usize,
    /// Points distance-tested through spatial-index queries, summed over the
    /// batch's successful answers (answers without the counter contribute
    /// zero).  Wall-clock-free work measure; see
    /// [`SolveStats::candidates_examined`](super::SolveStats).
    pub candidates_examined: usize,
    /// Spatial-index cells visited by those queries, summed likewise.
    pub grid_cells_visited: usize,
    /// Of the candidates examined, how many the widened f32 sieve rejected
    /// before the exact f64 verify, summed likewise (zero when the process
    /// runs a pure-f64 kernel mode; see `mrs_geom::kernels`).
    pub sieve_rejected: usize,
    /// Queries the `auto` meta-solver routed (answers whose stats carry
    /// [`SolveStats::auto_choice`](super::SolveStats)).
    pub auto_picks: usize,
    /// Sum of the cost model's predicted work over the auto-routed answers.
    pub auto_predicted_work: f64,
    /// Sum of the actual work the chosen solvers did over those answers.
    pub auto_actual_work: f64,
}

impl BatchStats {
    /// Answered queries per wall-clock second.
    pub fn queries_per_sec(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs > 0.0 {
            (self.queries - self.failed) as f64 / secs
        } else {
            0.0
        }
    }

    /// Ratio of aggregate solver time to wall time (parallel speedup
    /// actually realized, ≈ 1 for a serial run).
    pub fn parallelism(&self) -> f64 {
        let wall = self.wall.as_secs_f64();
        if wall > 0.0 {
            self.solver_time.as_secs_f64() / wall
        } else {
            1.0
        }
    }
}

/// A latency summary (min/mean/p50/p95/p99/max) over a set of duration
/// samples.
///
/// One struct serves every consumer that reports per-query wall time: the
/// `maxrs batch` CLI summary line, the `mrs_server` `/stats` endpoint (which
/// serializes one summary per HTTP endpoint), and the `serve_loadgen`
/// benchmark rows in `BENCH_serve.json`.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct LatencySummary {
    /// Number of samples summarized.
    pub count: usize,
    /// Fastest sample.
    pub min: Duration,
    /// Arithmetic mean.
    pub mean: Duration,
    /// Median (50th percentile).
    pub p50: Duration,
    /// 95th percentile.
    pub p95: Duration,
    /// 99th percentile.
    pub p99: Duration,
    /// Slowest sample.
    pub max: Duration,
}

impl LatencySummary {
    /// Summarizes the samples.  An empty slice yields the all-zero summary
    /// (`count == 0`), so callers can render it unconditionally.
    pub fn from_durations(samples: &[Duration]) -> Self {
        if samples.is_empty() {
            return Self::default();
        }
        let mut sorted: Vec<Duration> = samples.to_vec();
        sorted.sort_unstable();
        let total: Duration = sorted.iter().sum();
        // Nearest-rank percentiles: `p95` of 20 samples is the 19th sorted
        // sample, never an interpolation between two.
        let rank = |p: f64| {
            let idx = (p * sorted.len() as f64).ceil() as usize;
            sorted[idx.clamp(1, sorted.len()) - 1]
        };
        Self {
            count: sorted.len(),
            min: sorted[0],
            mean: total / sorted.len() as u32,
            p50: rank(0.50),
            p95: rank(0.95),
            p99: rank(0.99),
            max: *sorted.last().expect("non-empty"),
        }
    }
}

impl std::fmt::Display for LatencySummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let us = |d: Duration| d.as_secs_f64() * 1e6;
        write!(
            f,
            "min {:.1} µs | p50 {:.1} µs | p95 {:.1} µs | p99 {:.1} µs | max {:.1} µs | mean {:.1} µs",
            us(self.min),
            us(self.p50),
            us(self.p95),
            us(self.p99),
            us(self.max),
            us(self.mean),
        )
    }
}

/// The executor's response: one answer per query, in request order, plus
/// batch statistics.
#[derive(Clone, Debug)]
pub struct BatchReport<const D: usize> {
    /// Per-query outcomes, indexed like the request's `queries`.
    pub answers: Vec<BatchAnswer<D>>,
    /// Batch-level statistics.
    pub stats: BatchStats,
}

impl<const D: usize> BatchReport<D> {
    /// The weighted report of query `i`, if it succeeded as a weighted query.
    pub fn weighted(&self, i: usize) -> Option<&SolverReport<Placement<D>>> {
        self.answers.get(i).and_then(BatchAnswer::weighted)
    }

    /// The colored report of query `i`, if it succeeded as a colored query.
    pub fn colored(&self, i: usize) -> Option<&SolverReport<ColoredPlacement<D>>> {
        self.answers.get(i).and_then(BatchAnswer::colored)
    }

    /// `true` if every query succeeded.
    pub fn all_ok(&self) -> bool {
        self.answers.iter().all(BatchAnswer::is_ok)
    }

    /// Per-query solver wall-time summary over the successful answers
    /// (failures carry no timing and are excluded).
    pub fn per_query_latency(&self) -> LatencySummary {
        let samples: Vec<Duration> =
            self.answers.iter().filter(|a| a.is_ok()).map(BatchAnswer::elapsed).collect();
        LatencySummary::from_durations(&samples)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrs_geom::Point2;

    #[test]
    fn request_builder_accumulates_queries_in_order() {
        let request = BatchRequest::over_points(vec![WeightedPoint::unit(Point2::xy(0.0, 0.0))])
            .with_query(BatchQuery::weighted("exact-disk-2d", RangeShape::ball(1.0)))
            .with_query(BatchQuery::weighted("exact-rect-2d", RangeShape::rect(1.0, 2.0)));
        assert_eq!(request.len(), 2);
        assert!(!request.is_empty());
        assert_eq!(request.queries()[0].solver(), "exact-disk-2d");
        assert_eq!(request.queries()[1].shape(), &RangeShape::rect(1.0, 2.0));
        assert_eq!(request.points().len(), 1);
        assert!(request.sites().is_empty());
    }

    #[test]
    fn answers_expose_reports_and_errors() {
        let failed = BatchAnswer::<2>::Failed(EngineError::UnknownSolver { name: "x".into() });
        assert!(!failed.is_ok());
        assert!(failed.weighted().is_none());
        assert!(failed.colored().is_none());
        assert!(failed.error().is_some());
        assert_eq!(failed.elapsed(), Duration::ZERO);
    }

    #[test]
    fn latency_summary_five_numbers() {
        let ms = Duration::from_millis;
        let samples: Vec<Duration> = (1..=20).map(ms).collect();
        let s = LatencySummary::from_durations(&samples);
        assert_eq!(s.count, 20);
        assert_eq!(s.min, ms(1));
        assert_eq!(s.max, ms(20));
        assert_eq!(s.p50, ms(10));
        assert_eq!(s.p95, ms(19));
        assert_eq!(s.p99, ms(20));
        assert_eq!(s.mean, ms(10) + Duration::from_micros(500));
        assert_eq!(LatencySummary::from_durations(&[]), LatencySummary::default());
        let one = LatencySummary::from_durations(&[ms(7)]);
        assert_eq!((one.min, one.p50, one.p95, one.max), (ms(7), ms(7), ms(7), ms(7)));
        assert!(format!("{s}").contains("p95"));
    }

    #[test]
    fn from_shared_requests_share_the_arcs() {
        let points: Arc<[WeightedPoint<2>]> =
            vec![WeightedPoint::unit(Point2::xy(0.0, 0.0))].into();
        let sites: Arc<[ColoredSite<2>]> = Vec::new().into();
        let request = BatchRequest::from_shared(Arc::clone(&points), Arc::clone(&sites));
        assert!(Arc::ptr_eq(&request.shared_points(), &points));
        assert!(Arc::ptr_eq(&request.shared_sites(), &sites));
        assert!(request.is_empty());
    }

    #[test]
    fn stats_throughput_and_parallelism() {
        let stats = BatchStats {
            queries: 10,
            failed: 2,
            wall: Duration::from_secs(2),
            solver_time: Duration::from_secs(6),
            ..BatchStats::default()
        };
        assert!((stats.queries_per_sec() - 4.0).abs() < 1e-12);
        assert!((stats.parallelism() - 3.0).abs() < 1e-12);
        assert_eq!(BatchStats::default().queries_per_sec(), 0.0);
    }
}
