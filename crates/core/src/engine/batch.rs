//! The batch-query model: many MaxRS queries over one shared point set.
//!
//! The paper's general techniques all amortize work across queries — grid
//! shifting reuses one shifted-grid family, the Section 5 batched solver
//! reuses one sorted event list, the Section 4 algorithms reuse one spatial
//! index — and this module gives that amortization a first-class request
//! shape.  A [`BatchRequest`] is one weighted point set and/or one colored
//! site set plus an ordered list of [`BatchQuery`]s naming a registered
//! solver and a query [`RangeShape`] each.  The
//! [`executor`](super::executor) answers it with a [`BatchReport`]: one
//! [`BatchAnswer`] per query, in request order, plus batch-level
//! [`BatchStats`] (wall clock, aggregate solver time, shared-index builds,
//! throughput).

use std::sync::Arc;
use std::time::Duration;

use mrs_geom::{ColoredSite, WeightedPoint};

use super::instance::RangeShape;
use super::report::SolverReport;
use super::EngineError;
use crate::input::{ColoredPlacement, Placement};

/// One query of a batch: which solver to ask, and with what range shape.
///
/// The solver is named by its registry key (see
/// [`Registry`](super::Registry)); the executor resolves every distinct name
/// once per batch.
#[derive(Clone, Debug, PartialEq)]
pub enum BatchQuery<const D: usize> {
    /// A weighted MaxRS query against the batch's point set.
    Weighted {
        /// Registry name of the solver to dispatch to.
        solver: String,
        /// The query-range shape.
        shape: RangeShape<D>,
    },
    /// A colored MaxRS query against the batch's site set.
    Colored {
        /// Registry name of the solver to dispatch to.
        solver: String,
        /// The query-range shape.
        shape: RangeShape<D>,
    },
}

impl<const D: usize> BatchQuery<D> {
    /// A weighted query for the named solver.
    pub fn weighted(solver: impl Into<String>, shape: RangeShape<D>) -> Self {
        BatchQuery::Weighted { solver: solver.into(), shape }
    }

    /// A colored query for the named solver.
    pub fn colored(solver: impl Into<String>, shape: RangeShape<D>) -> Self {
        BatchQuery::Colored { solver: solver.into(), shape }
    }

    /// The registry name the query dispatches to.
    pub fn solver(&self) -> &str {
        match self {
            BatchQuery::Weighted { solver, .. } | BatchQuery::Colored { solver, .. } => solver,
        }
    }

    /// The query's range shape.
    pub fn shape(&self) -> &RangeShape<D> {
        match self {
            BatchQuery::Weighted { shape, .. } | BatchQuery::Colored { shape, .. } => shape,
        }
    }
}

/// A set of queries to be answered against one shared point/site set.
///
/// ```
/// use mrs_core::engine::{registry, BatchExecutor, BatchQuery, BatchRequest, RangeShape};
/// use mrs_geom::{Point2, WeightedPoint};
///
/// let points = vec![
///     WeightedPoint::unit(Point2::xy(0.0, 0.0)),
///     WeightedPoint::unit(Point2::xy(0.5, 0.0)),
///     WeightedPoint::unit(Point2::xy(9.0, 9.0)),
/// ];
/// let request = BatchRequest::over_points(points)
///     .with_query(BatchQuery::weighted("exact-disk-2d", RangeShape::ball(1.0)))
///     .with_query(BatchQuery::weighted("exact-rect-2d", RangeShape::rect(2.0, 2.0)));
/// let registry = registry();
/// let report = BatchExecutor::new(&registry).execute(&request);
/// assert_eq!(report.answers.len(), 2);
/// assert_eq!(report.weighted(0).unwrap().placement.value, 2.0);
/// ```
#[derive(Clone, Debug)]
pub struct BatchRequest<const D: usize> {
    points: Arc<[WeightedPoint<D>]>,
    sites: Arc<[ColoredSite<D>]>,
    queries: Vec<BatchQuery<D>>,
}

impl<const D: usize> BatchRequest<D> {
    /// A request over a weighted point set and a colored site set (either may
    /// be empty; weighted queries see only `points`, colored queries only
    /// `sites`).
    ///
    /// # Panics
    /// Panics if any coordinate or weight is not finite.
    pub fn new(points: Vec<WeightedPoint<D>>, sites: Vec<ColoredSite<D>>) -> Self {
        for wp in &points {
            assert!(wp.point.is_finite(), "point coordinates must be finite");
            assert!(wp.weight.is_finite(), "weights must be finite");
        }
        for s in &sites {
            assert!(s.point.is_finite(), "site coordinates must be finite");
        }
        Self { points: points.into(), sites: sites.into(), queries: Vec::new() }
    }

    /// A request over a weighted point set only.
    pub fn over_points(points: Vec<WeightedPoint<D>>) -> Self {
        Self::new(points, Vec::new())
    }

    /// A request over a colored site set only.
    pub fn over_sites(sites: Vec<ColoredSite<D>>) -> Self {
        Self::new(Vec::new(), sites)
    }

    /// Appends a query (builder style).
    pub fn with_query(mut self, query: BatchQuery<D>) -> Self {
        self.queries.push(query);
        self
    }

    /// Appends a query.
    pub fn push(&mut self, query: BatchQuery<D>) {
        self.queries.push(query);
    }

    /// The shared weighted point set.
    pub fn points(&self) -> &[WeightedPoint<D>] {
        &self.points
    }

    /// The shared colored site set.
    pub fn sites(&self) -> &[ColoredSite<D>] {
        &self.sites
    }

    /// The shared handle to the point set (`O(1)` to clone).
    pub fn shared_points(&self) -> Arc<[WeightedPoint<D>]> {
        Arc::clone(&self.points)
    }

    /// The shared handle to the site set (`O(1)` to clone).
    pub fn shared_sites(&self) -> Arc<[ColoredSite<D>]> {
        Arc::clone(&self.sites)
    }

    /// The queries, in submission order.
    pub fn queries(&self) -> &[BatchQuery<D>] {
        &self.queries
    }

    /// Number of queries.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// `true` if the request holds no queries.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }
}

/// The outcome of one batch query, in the report's `answers` vector at the
/// query's request position.
#[derive(Clone, Debug, PartialEq)]
pub enum BatchAnswer<const D: usize> {
    /// A weighted query's report.
    Weighted(SolverReport<Placement<D>>),
    /// A colored query's report.
    Colored(SolverReport<ColoredPlacement<D>>),
    /// The query could not be answered (unknown solver, shape/dimension
    /// mismatch, negative-weight rejection).
    Failed(EngineError),
}

impl<const D: usize> BatchAnswer<D> {
    /// `true` unless the query failed.
    pub fn is_ok(&self) -> bool {
        !matches!(self, BatchAnswer::Failed(_))
    }

    /// The weighted report, if this is a successful weighted answer.
    pub fn weighted(&self) -> Option<&SolverReport<Placement<D>>> {
        match self {
            BatchAnswer::Weighted(report) => Some(report),
            _ => None,
        }
    }

    /// The colored report, if this is a successful colored answer.
    pub fn colored(&self) -> Option<&SolverReport<ColoredPlacement<D>>> {
        match self {
            BatchAnswer::Colored(report) => Some(report),
            _ => None,
        }
    }

    /// The dispatch error, if the query failed.
    pub fn error(&self) -> Option<&EngineError> {
        match self {
            BatchAnswer::Failed(error) => Some(error),
            _ => None,
        }
    }

    /// Wall-clock time the solver spent on this query (zero for failures).
    pub fn elapsed(&self) -> Duration {
        match self {
            BatchAnswer::Weighted(report) => report.stats.elapsed,
            BatchAnswer::Colored(report) => report.stats.elapsed,
            BatchAnswer::Failed(_) => Duration::ZERO,
        }
    }
}

/// Batch-level execution statistics.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct BatchStats {
    /// Number of queries in the batch.
    pub queries: usize,
    /// Number of queries that failed dispatch.
    pub failed: usize,
    /// Worker threads the executor ran with.
    pub threads: usize,
    /// Shared-index structures built for this batch (sorted event list,
    /// Fenwick tree, one hash grid per distinct query radius).
    pub index_builds: usize,
    /// Total time spent building shared-index structures.
    pub index_build_time: Duration,
    /// Wall-clock time of the whole batch, end to end.
    pub wall: Duration,
    /// Sum of per-query solver times (≥ `wall` when parallelism helps).
    pub solver_time: Duration,
    /// Answers certified against the shared index (see
    /// [`ExecutorConfig::certify`](super::ExecutorConfig)).
    pub certified: usize,
    /// Certifications whose re-evaluated value disagreed with the report
    /// (always 0 unless a solver violates its contract).
    pub certify_failures: usize,
}

impl BatchStats {
    /// Answered queries per wall-clock second.
    pub fn queries_per_sec(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs > 0.0 {
            (self.queries - self.failed) as f64 / secs
        } else {
            0.0
        }
    }

    /// Ratio of aggregate solver time to wall time (parallel speedup
    /// actually realized, ≈ 1 for a serial run).
    pub fn parallelism(&self) -> f64 {
        let wall = self.wall.as_secs_f64();
        if wall > 0.0 {
            self.solver_time.as_secs_f64() / wall
        } else {
            1.0
        }
    }
}

/// The executor's response: one answer per query, in request order, plus
/// batch statistics.
#[derive(Clone, Debug)]
pub struct BatchReport<const D: usize> {
    /// Per-query outcomes, indexed like the request's `queries`.
    pub answers: Vec<BatchAnswer<D>>,
    /// Batch-level statistics.
    pub stats: BatchStats,
}

impl<const D: usize> BatchReport<D> {
    /// The weighted report of query `i`, if it succeeded as a weighted query.
    pub fn weighted(&self, i: usize) -> Option<&SolverReport<Placement<D>>> {
        self.answers.get(i).and_then(BatchAnswer::weighted)
    }

    /// The colored report of query `i`, if it succeeded as a colored query.
    pub fn colored(&self, i: usize) -> Option<&SolverReport<ColoredPlacement<D>>> {
        self.answers.get(i).and_then(BatchAnswer::colored)
    }

    /// `true` if every query succeeded.
    pub fn all_ok(&self) -> bool {
        self.answers.iter().all(BatchAnswer::is_ok)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrs_geom::Point2;

    #[test]
    fn request_builder_accumulates_queries_in_order() {
        let request = BatchRequest::over_points(vec![WeightedPoint::unit(Point2::xy(0.0, 0.0))])
            .with_query(BatchQuery::weighted("exact-disk-2d", RangeShape::ball(1.0)))
            .with_query(BatchQuery::weighted("exact-rect-2d", RangeShape::rect(1.0, 2.0)));
        assert_eq!(request.len(), 2);
        assert!(!request.is_empty());
        assert_eq!(request.queries()[0].solver(), "exact-disk-2d");
        assert_eq!(request.queries()[1].shape(), &RangeShape::rect(1.0, 2.0));
        assert_eq!(request.points().len(), 1);
        assert!(request.sites().is_empty());
    }

    #[test]
    fn answers_expose_reports_and_errors() {
        let failed = BatchAnswer::<2>::Failed(EngineError::UnknownSolver { name: "x".into() });
        assert!(!failed.is_ok());
        assert!(failed.weighted().is_none());
        assert!(failed.colored().is_none());
        assert!(failed.error().is_some());
        assert_eq!(failed.elapsed(), Duration::ZERO);
    }

    #[test]
    fn stats_throughput_and_parallelism() {
        let stats = BatchStats {
            queries: 10,
            failed: 2,
            wall: Duration::from_secs(2),
            solver_time: Duration::from_secs(6),
            ..BatchStats::default()
        };
        assert!((stats.queries_per_sec() - 4.0).abs() < 1e-12);
        assert!((stats.parallelism() - 3.0).abs() < 1e-12);
        assert_eq!(BatchStats::default().queries_per_sec(), 0.0);
    }
}
