//! Built-in [`WeightedSolver`] implementations wrapping the weighted MaxRS
//! entry points: the exact 1-D interval sweep, the planar rectangle and disk
//! sweeps, and the Technique 1 static and dynamic samplers.

use std::time::Instant;

use mrs_geom::Point;

use super::convert::{repack_placement, repack_point, repack_weighted};
use super::descriptor::{
    BatchCapability, DimSupport, GuaranteeClass, ProblemKind, ShapeClass, SolverDescriptor,
};
use super::index::SharedIndex;
use super::instance::{RangeShape, WeightedInstance};
use super::report::{Guarantee, SolveStats, SolverReport};
use super::{EngineError, EngineResult, WeightedSolver};
use crate::config::SamplingConfig;
use crate::exact::disk2d::max_disk_placement_chunked;
use crate::exact::interval1d::{max_interval_placement, LinePoint};
use crate::exact::rect2d::max_rect_placement_presorted;
use crate::exact::{max_disk_placement, max_rect_placement};
use crate::input::{ball_coverage_weight, Placement};
use crate::technique1::{approx_static_ball_with_stats, DynamicBallMaxRS};

pub(super) fn require_dim<const D: usize>(solver: &'static str, wanted: usize) -> EngineResult<()> {
    if D == wanted {
        Ok(())
    } else {
        Err(EngineError::UnsupportedDimension { solver, dim: D })
    }
}

pub(super) fn require_ball<const D: usize>(
    solver: &'static str,
    shape: &RangeShape<D>,
) -> EngineResult<f64> {
    shape.ball_radius().ok_or(EngineError::UnsupportedShape { solver, shape: shape.class() })
}

pub(super) fn require_box<const D: usize>(
    solver: &'static str,
    shape: &RangeShape<D>,
) -> EngineResult<[f64; D]> {
    shape.box_extents().ok_or(EngineError::UnsupportedShape { solver, shape: shape.class() })
}

fn require_nonnegative<const D: usize>(
    solver: &'static str,
    instance: &WeightedInstance<D>,
) -> EngineResult<()> {
    if instance.has_negative_weights() {
        Err(EngineError::NegativeWeights { solver })
    } else {
        Ok(())
    }
}

/// Exact 1-D interval MaxRS (`O(n log n)` sort + sweep), the per-length
/// oracle of the batched problem of Section 5.
#[derive(Clone, Copy, Debug, Default)]
pub struct ExactIntervalSolver;

impl ExactIntervalSolver {
    /// Capability record.
    pub const DESCRIPTOR: SolverDescriptor = SolverDescriptor {
        name: "exact-interval-1d",
        problem: ProblemKind::Weighted,
        shape: ShapeClass::Ball,
        dims: DimSupport::Fixed(1),
        guarantee: GuaranteeClass::Exact,
        dynamic: false,
        batch: BatchCapability::IndexShared,
        negative_weights: true,
        reference: "Section 5 per-length oracle (sorted sweep)",
    };
}

impl<const D: usize> WeightedSolver<D> for ExactIntervalSolver {
    fn descriptor(&self) -> &SolverDescriptor {
        &Self::DESCRIPTOR
    }

    fn solve(&self, instance: &WeightedInstance<D>) -> EngineResult<SolverReport<Placement<D>>> {
        let name = Self::DESCRIPTOR.name;
        require_dim::<D>(name, 1)?;
        let radius = require_ball(name, instance.shape())?;
        let start = Instant::now();
        let line: Vec<LinePoint> =
            instance.points().iter().map(|wp| LinePoint::new(wp.point[0], wp.weight)).collect();
        let best = max_interval_placement(&line, 2.0 * radius);
        let mut center = Point::<D>::origin();
        center[0] = 0.5 * (best.interval.lo + best.interval.hi);
        Ok(SolverReport {
            solver: name,
            placement: Placement { center, value: best.value },
            guarantee: Guarantee::Exact,
            stats: SolveStats { elapsed: start.elapsed(), ..SolveStats::default() },
        })
    }

    /// The index-shared batch path: answer every interval length off the
    /// shared sorted event list (built once per point-set lifetime), so a
    /// batch of `m` queries costs `O(n log n + m·n)` instead of `m`
    /// independent sorts.  The sorted line is built by the same stable sort
    /// a fresh solve runs, so answers are identical.
    fn solve_all(
        &self,
        base: &WeightedInstance<D>,
        shapes: &[RangeShape<D>],
        index: &SharedIndex<D>,
        _threads: usize,
    ) -> Vec<EngineResult<SolverReport<Placement<D>>>> {
        let name = Self::DESCRIPTOR.name;
        if let Err(error) = require_dim::<D>(name, 1) {
            return shapes.iter().map(|_| Err(error.clone())).collect();
        }
        let _ = base;
        let line = index.sorted_line();
        shapes
            .iter()
            .map(|shape| {
                let radius = require_ball(name, shape)?;
                let start = Instant::now();
                let best = line.max_interval(2.0 * radius);
                let mut center = Point::<D>::origin();
                center[0] = 0.5 * (best.interval.lo + best.interval.hi);
                Ok(SolverReport {
                    solver: name,
                    placement: Placement { center, value: best.value },
                    guarantee: Guarantee::Exact,
                    stats: SolveStats { elapsed: start.elapsed(), ..SolveStats::default() },
                })
            })
            .collect()
    }
}

/// Exact planar rectangle MaxRS (`O(n log n)`, Imai–Asano / Nandy–
/// Bhattacharya sweep).
#[derive(Clone, Copy, Debug, Default)]
pub struct ExactRectSolver;

impl ExactRectSolver {
    /// Capability record.
    pub const DESCRIPTOR: SolverDescriptor = SolverDescriptor {
        name: "exact-rect-2d",
        problem: ProblemKind::Weighted,
        shape: ShapeClass::AxisBox,
        dims: DimSupport::Fixed(2),
        guarantee: GuaranteeClass::Exact,
        dynamic: false,
        batch: BatchCapability::IndexShared,
        negative_weights: false,
        reference: "[IA83]/[NB95] rectangle sweep",
    };
}

impl<const D: usize> WeightedSolver<D> for ExactRectSolver {
    fn descriptor(&self) -> &SolverDescriptor {
        &Self::DESCRIPTOR
    }

    fn solve(&self, instance: &WeightedInstance<D>) -> EngineResult<SolverReport<Placement<D>>> {
        let name = Self::DESCRIPTOR.name;
        require_dim::<D>(name, 2)?;
        let extents = require_box(name, instance.shape())?;
        require_nonnegative(name, instance)?;
        let start = Instant::now();
        let points = repack_weighted::<D, 2>(instance.points());
        let best = max_rect_placement(&points, extents[0], extents[1]);
        let center2 = best.rect.lo.lerp(&best.rect.hi, 0.5);
        Ok(SolverReport {
            solver: name,
            placement: Placement { center: repack_point(&center2), value: best.value },
            guarantee: Guarantee::Exact,
            stats: SolveStats { elapsed: start.elapsed(), ..SolveStats::default() },
        })
    }

    /// The index-shared batch path: the points are repacked once and both
    /// sorted projections come from the shared index (built once per
    /// point-set lifetime), so each query runs the sort-free
    /// [`max_rect_placement_presorted`] sweep.  Identical placements to the
    /// per-query path, bit for bit.
    fn solve_all(
        &self,
        base: &WeightedInstance<D>,
        shapes: &[RangeShape<D>],
        index: &SharedIndex<D>,
        _threads: usize,
    ) -> Vec<EngineResult<SolverReport<Placement<D>>>> {
        let name = Self::DESCRIPTOR.name;
        if let Err(error) = require_dim::<D>(name, 2) {
            return shapes.iter().map(|_| Err(error.clone())).collect();
        }
        if let Err(error) = require_nonnegative(name, base) {
            return shapes.iter().map(|_| Err(error.clone())).collect();
        }
        let points = repack_weighted::<D, 2>(base.points());
        let by_x = index.sorted_projection(0);
        let by_y = index.sorted_projection(1);
        shapes
            .iter()
            .map(|shape| {
                let extents = require_box(name, shape)?;
                let start = Instant::now();
                let best =
                    max_rect_placement_presorted(&points, extents[0], extents[1], &by_x, &by_y);
                let center2 = best.rect.lo.lerp(&best.rect.hi, 0.5);
                Ok(SolverReport {
                    solver: name,
                    placement: Placement { center: repack_point(&center2), value: best.value },
                    guarantee: Guarantee::Exact,
                    stats: SolveStats { elapsed: start.elapsed(), ..SolveStats::default() },
                })
            })
            .collect()
    }
}

/// Exact planar disk MaxRS (`O(n² log n)`, Chazelle–Lee sweep).
#[derive(Clone, Copy, Debug, Default)]
pub struct ExactDiskSolver;

impl ExactDiskSolver {
    /// Capability record.
    pub const DESCRIPTOR: SolverDescriptor = SolverDescriptor {
        name: "exact-disk-2d",
        problem: ProblemKind::Weighted,
        shape: ShapeClass::Ball,
        dims: DimSupport::Fixed(2),
        guarantee: GuaranteeClass::Exact,
        dynamic: false,
        batch: BatchCapability::IndexShared,
        negative_weights: false,
        reference: "[CL86] disk sweep",
    };
}

impl<const D: usize> WeightedSolver<D> for ExactDiskSolver {
    fn descriptor(&self) -> &SolverDescriptor {
        &Self::DESCRIPTOR
    }

    fn solve(&self, instance: &WeightedInstance<D>) -> EngineResult<SolverReport<Placement<D>>> {
        let name = Self::DESCRIPTOR.name;
        require_dim::<D>(name, 2)?;
        let radius = require_ball(name, instance.shape())?;
        require_nonnegative(name, instance)?;
        let start = Instant::now();
        let points = repack_weighted::<D, 2>(instance.points());
        let best = max_disk_placement(&points, radius);
        Ok(SolverReport {
            solver: name,
            placement: repack_placement(&best),
            guarantee: Guarantee::Exact,
            stats: SolveStats { elapsed: start.elapsed(), ..SolveStats::default() },
        })
    }

    /// The index-shared batch path: the neighbour grid comes from the shared
    /// index (one CSR build per distinct radius, cached for the point set's
    /// whole lifetime) and each sweep fans its candidate centers out over
    /// `threads` chunk workers — so `--threads` accelerates a *single*
    /// expensive query, not just query-level parallelism.  Chunk results
    /// merge deterministically; placements are identical at every thread
    /// count.
    fn solve_all(
        &self,
        base: &WeightedInstance<D>,
        shapes: &[RangeShape<D>],
        index: &SharedIndex<D>,
        threads: usize,
    ) -> Vec<EngineResult<SolverReport<Placement<D>>>> {
        let name = Self::DESCRIPTOR.name;
        if let Err(error) = require_dim::<D>(name, 2) {
            return shapes.iter().map(|_| Err(error.clone())).collect();
        }
        if let Err(error) = require_nonnegative(name, base) {
            return shapes.iter().map(|_| Err(error.clone())).collect();
        }
        let points = base.points();
        shapes
            .iter()
            .map(|shape| {
                let radius = require_ball(name, shape)?;
                let start = Instant::now();
                let grid = index.point_grid(radius.max(1e-9));
                let (best, sweep) = max_disk_placement_chunked(points, radius, &grid, threads);
                Ok(SolverReport {
                    solver: name,
                    placement: best,
                    guarantee: Guarantee::Exact,
                    stats: SolveStats {
                        elapsed: start.elapsed(),
                        candidates_examined: Some(sweep.candidates_examined),
                        grid_cells_visited: Some(sweep.grid_cells_visited),
                        sieve_rejected: Some(sweep.sieve_rejected),
                        ..SolveStats::default()
                    },
                })
            })
            .collect()
    }
}

/// Static `(1/2 − ε)`-approximate `d`-ball MaxRS via point sampling
/// (Theorem 1.2).
#[derive(Clone, Copy, Debug)]
pub struct StaticBallSolver {
    config: SamplingConfig,
}

impl StaticBallSolver {
    /// Capability record.
    pub const DESCRIPTOR: SolverDescriptor = SolverDescriptor {
        name: "approx-static-ball",
        problem: ProblemKind::Weighted,
        shape: ShapeClass::Ball,
        dims: DimSupport::Any,
        guarantee: GuaranteeClass::HalfMinusEps,
        dynamic: false,
        batch: BatchCapability::IndexShared,
        negative_weights: false,
        reference: "Theorem 1.2",
    };

    /// A solver running with the given sampling configuration.
    pub fn new(config: SamplingConfig) -> Self {
        Self { config }
    }

    /// The sampling configuration the solver runs with.
    pub fn config(&self) -> &SamplingConfig {
        &self.config
    }
}

impl Default for StaticBallSolver {
    fn default() -> Self {
        Self::new(SamplingConfig::default())
    }
}

impl<const D: usize> WeightedSolver<D> for StaticBallSolver {
    fn descriptor(&self) -> &SolverDescriptor {
        &Self::DESCRIPTOR
    }

    fn solve(&self, instance: &WeightedInstance<D>) -> EngineResult<SolverReport<Placement<D>>> {
        let name = Self::DESCRIPTOR.name;
        require_ball(name, instance.shape())?;
        require_nonnegative(name, instance)?;
        let ball = instance.as_ball_instance().expect("checked: shape is a ball");
        let start = Instant::now();
        let (placement, stats) = approx_static_ball_with_stats(&ball, self.config);
        Ok(SolverReport {
            solver: name,
            placement,
            guarantee: Guarantee::HalfMinusEps { eps: self.config.eps },
            stats: SolveStats {
                elapsed: start.elapsed(),
                grids: Some(stats.grids),
                cells: Some(stats.cells),
                samples: Some(stats.samples),
                ..SolveStats::default()
            },
        })
    }

    /// The index-shared batch path: the Technique 1 sample set is built once
    /// per distinct radius (cached in the shared index for the point set's
    /// whole lifetime) and every query reads it through the non-mutating
    /// [`crate::technique1::SampleSet::peek_best`], then certifies the
    /// chosen center by an exact recount — the same center and value a
    /// fresh per-query build reports, without rebuilding anything.
    fn solve_all(
        &self,
        base: &WeightedInstance<D>,
        shapes: &[RangeShape<D>],
        index: &SharedIndex<D>,
        _threads: usize,
    ) -> Vec<EngineResult<SolverReport<Placement<D>>>> {
        let name = Self::DESCRIPTOR.name;
        if let Err(error) = require_nonnegative(name, base) {
            return shapes.iter().map(|_| Err(error.clone())).collect();
        }
        shapes
            .iter()
            .map(|shape| {
                let radius = require_ball(name, shape)?;
                let start = Instant::now();
                let (placement, set_stats) = if base.is_empty() {
                    (Placement::empty(), None)
                } else {
                    let set = index.weighted_sample_set(radius, &self.config);
                    let placement = match set.peek_best() {
                        None => Placement::empty(),
                        Some((scaled_center, _)) => {
                            let center = scaled_center.scale(radius);
                            // Certify: report the exact covered weight of the
                            // chosen center (see `approx_static_ball_with_stats`
                            // for why the sampled depth is not reported as-is).
                            let value = ball_coverage_weight(base.points(), &center, radius);
                            Placement { center, value }
                        }
                    };
                    (placement, Some((set.grid_count(), set.cell_count(), set.total_samples())))
                };
                Ok(SolverReport {
                    solver: name,
                    placement,
                    guarantee: Guarantee::HalfMinusEps { eps: self.config.eps },
                    stats: SolveStats {
                        elapsed: start.elapsed(),
                        grids: set_stats.map(|s| s.0),
                        cells: set_stats.map(|s| s.1),
                        samples: set_stats.map(|s| s.2),
                        ..SolveStats::default()
                    },
                })
            })
            .collect()
    }
}

/// Dynamic `(1/2 − ε)`-approximate `d`-ball MaxRS (Theorem 1.1), dispatched
/// statically: the engine builds the update structure, feeds it the instance,
/// and reports the best sample.  For genuine update streams use
/// [`DynamicBallMaxRS`] directly.
#[derive(Clone, Copy, Debug)]
pub struct DynamicBallSolver {
    config: SamplingConfig,
}

impl DynamicBallSolver {
    /// Capability record.
    pub const DESCRIPTOR: SolverDescriptor = SolverDescriptor {
        name: "dynamic-ball",
        problem: ProblemKind::Weighted,
        shape: ShapeClass::Ball,
        dims: DimSupport::Any,
        guarantee: GuaranteeClass::HalfMinusEps,
        dynamic: true,
        batch: BatchCapability::Independent,
        negative_weights: false,
        reference: "Theorem 1.1",
    };

    /// A solver running with the given sampling configuration.
    pub fn new(config: SamplingConfig) -> Self {
        Self { config }
    }

    /// The sampling configuration the solver runs with.
    pub fn config(&self) -> &SamplingConfig {
        &self.config
    }
}

impl Default for DynamicBallSolver {
    fn default() -> Self {
        Self::new(SamplingConfig::default())
    }
}

impl<const D: usize> WeightedSolver<D> for DynamicBallSolver {
    fn descriptor(&self) -> &SolverDescriptor {
        &Self::DESCRIPTOR
    }

    fn solve(&self, instance: &WeightedInstance<D>) -> EngineResult<SolverReport<Placement<D>>> {
        let name = Self::DESCRIPTOR.name;
        let radius = require_ball(name, instance.shape())?;
        require_nonnegative(name, instance)?;
        let start = Instant::now();
        let mut tracker = DynamicBallMaxRS::<D>::new(radius, self.config);
        for wp in instance.points() {
            tracker.insert(wp.point, wp.weight);
        }
        let mut placement = tracker.best().unwrap_or_else(Placement::empty);
        if !instance.is_empty() {
            // Certify the report: the tracker's sampled depth matches the
            // center's true coverage only up to floating-point boundary ties
            // (see `approx_static_ball_with_stats`), and the engine contract
            // is that reported values are exact for the returned center.
            placement.value = instance.value_at(&placement.center);
        }
        Ok(SolverReport {
            solver: name,
            placement,
            guarantee: Guarantee::HalfMinusEps { eps: self.config.eps },
            stats: SolveStats { elapsed: start.elapsed(), ..SolveStats::default() },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrs_geom::{Point2, WeightedPoint};

    fn planar_cluster() -> WeightedInstance<2> {
        WeightedInstance::ball(
            vec![
                WeightedPoint::unit(Point2::xy(0.0, 0.0)),
                WeightedPoint::unit(Point2::xy(0.5, 0.0)),
                WeightedPoint::unit(Point2::xy(0.0, 0.5)),
                WeightedPoint::unit(Point2::xy(9.0, 9.0)),
            ],
            1.0,
        )
    }

    #[test]
    fn exact_disk_dispatch() {
        let report = ExactDiskSolver.solve(&planar_cluster()).unwrap();
        assert_eq!(report.placement.value, 3.0);
        assert_eq!(report.guarantee, Guarantee::Exact);
        assert_eq!(report.solver, "exact-disk-2d");
    }

    #[test]
    fn exact_rect_dispatch_uses_box_shape() {
        let instance = WeightedInstance::axis_box(
            vec![
                WeightedPoint::unit(Point2::xy(0.0, 0.0)),
                WeightedPoint::unit(Point2::xy(0.6, 0.4)),
                WeightedPoint::unit(Point2::xy(5.0, 5.0)),
            ],
            [1.0, 1.0],
        );
        let report = ExactRectSolver.solve(&instance).unwrap();
        assert_eq!(report.placement.value, 2.0);
        // The reported center must actually cover that value.
        assert_eq!(instance.value_at(&report.placement.center), 2.0);
    }

    #[test]
    fn exact_interval_dispatch_in_1d() {
        let points = [0.0, 0.4, 0.9, 3.0, 3.2, 9.0]
            .iter()
            .map(|&x| WeightedPoint::unit(Point::new([x])))
            .collect();
        let instance = WeightedInstance::<1>::new(points, RangeShape::interval(1.0));
        let report = ExactIntervalSolver.solve(&instance).unwrap();
        assert_eq!(report.placement.value, 3.0);
        assert_eq!(instance.value_at(&report.placement.center), 3.0);
    }

    #[test]
    fn samplers_respect_their_guarantee_on_the_cluster() {
        let instance = planar_cluster();
        let exact = ExactDiskSolver.solve(&instance).unwrap().placement.value;
        for report in [
            StaticBallSolver::default().solve(&instance).unwrap(),
            DynamicBallSolver::default().solve(&instance).unwrap(),
        ] {
            assert!(
                report.placement.value >= report.guarantee.ratio() * exact,
                "{}: {} < {} * {}",
                report.solver,
                report.placement.value,
                report.guarantee.ratio(),
                exact
            );
            // Reported value is certified: re-evaluating the center agrees.
            assert_eq!(instance.value_at(&report.placement.center), report.placement.value);
        }
    }

    #[test]
    fn shape_and_dimension_mismatches_are_typed_errors() {
        let ball = planar_cluster();
        assert!(matches!(
            ExactRectSolver.solve(&ball),
            Err(EngineError::UnsupportedShape { solver: "exact-rect-2d", .. })
        ));
        assert!(matches!(
            ExactIntervalSolver.solve(&ball),
            Err(EngineError::UnsupportedDimension { solver: "exact-interval-1d", dim: 2 })
        ));
        let boxed = WeightedInstance::axis_box(vec![], [1.0, 1.0]);
        assert!(matches!(
            ExactDiskSolver.solve(&boxed),
            Err(EngineError::UnsupportedShape { solver: "exact-disk-2d", .. })
        ));
        assert!(matches!(
            StaticBallSolver::default().solve(&boxed),
            Err(EngineError::UnsupportedShape { .. })
        ));
    }

    #[test]
    fn negative_weights_route_to_the_interval_solver_only() {
        // The Section 5 gadgets use negative "wall" weights; the 1-D sweep
        // must accept them while the ball/rect solvers refuse with a typed
        // error instead of panicking deep inside the algorithm.
        let line = WeightedInstance::<1>::new(
            vec![
                WeightedPoint::new(Point::new([0.0]), 5.0),
                WeightedPoint::new(Point::new([0.4]), -2.0),
                WeightedPoint::new(Point::new([3.0]), 4.0),
            ],
            RangeShape::interval(1.0),
        );
        let report = ExactIntervalSolver.solve(&line).unwrap();
        assert_eq!(report.placement.value, 5.0, "the sweep must dodge the negative point");

        let planar =
            WeightedInstance::<2>::ball(vec![WeightedPoint::new(Point2::xy(0.0, 0.0), -1.0)], 1.0);
        assert!(matches!(
            ExactDiskSolver.solve(&planar),
            Err(EngineError::NegativeWeights { solver: "exact-disk-2d" })
        ));
        assert!(matches!(
            StaticBallSolver::default().solve(&planar),
            Err(EngineError::NegativeWeights { .. })
        ));
        assert!(matches!(
            DynamicBallSolver::default().solve(&planar),
            Err(EngineError::NegativeWeights { .. })
        ));
    }

    #[test]
    fn empty_instances_solve_to_empty_placements() {
        let empty = WeightedInstance::<2>::ball(vec![], 1.0);
        assert_eq!(ExactDiskSolver.solve(&empty).unwrap().placement.value, 0.0);
        assert_eq!(StaticBallSolver::default().solve(&empty).unwrap().placement.value, 0.0);
        assert_eq!(DynamicBallSolver::default().solve(&empty).unwrap().placement.value, 0.0);
    }
}
