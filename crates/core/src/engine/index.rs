//! Long-lived shared spatial indexes over one point/site set.
//!
//! [`SharedIndex`] started life inside the batch executor, scoped to a single
//! [`BatchExecutor::execute`](super::BatchExecutor::execute) call.  Promoting
//! it into its own module gives it an owner-agnostic lifetime: a resident
//! dataset (the `mrs_server` catalog) can hold one index per dataset, build
//! each structure exactly once over the dataset's whole lifetime, and hand
//! the same handle to every request via
//! [`BatchExecutor::execute_with_index`](super::BatchExecutor::execute_with_index).
//!
//! All structures are built lazily and exactly once (interior mutability via
//! [`OnceLock`] and per-radius grid maps), so the type is safely shared
//! across worker threads: `SharedIndex<D>` is `Send + Sync` and every public
//! method takes `&self`.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

use mrs_geom::{Ball, ColoredSite, Fenwick, HashGrid, Point, WeightedPoint};

use crate::config::SamplingConfig;
use crate::exact::interval1d::{LinePoint, SortedLine};
use crate::technique1::SampleSet;

/// The 1-D view of the shared point set: the sorted event list the Section 5
/// batched solver builds from, plus a Fenwick tree over the sorted weights
/// for `O(log n)` closed-interval weight queries.
///
/// The Fenwick tree deliberately duplicates what `SortedLine`'s prefix array
/// can answer: it is the *update-capable* form of the same index, so a
/// future dynamic batch (insertions/deletions between queries) reuses this
/// structure instead of rebuilding the prefix array per update.
struct LineIndex {
    line: SortedLine,
    /// Per-point weights in sorted-x order (`fenwick.range_sum(i, i)` without
    /// the log factor), used to classify boundary points during
    /// certification.
    weights: Vec<f64>,
    fenwick: Fenwick,
}

/// Spatial indexes over one shared point and site set, each built lazily and
/// exactly once, then reused by every query that runs against the set.
///
/// * [`Self::sorted_line`] — the sorted event list of the first coordinate
///   (the structure behind the Theorem 1.3 batched solver);
/// * [`Self::interval_weight`] — Fenwick-tree range sums over the sorted
///   order, `O(log n)` per query;
/// * [`Self::ball_weight`] / [`Self::ball_distinct`] — hash-grid ball
///   queries, one grid per distinct radius, `O(local density)` per query.
///
/// The index has two lifetimes in practice: the batch executor creates a
/// fresh one per [`BatchRequest`](super::BatchRequest) (amortization within
/// one batch), and the `mrs_server` dataset catalog keeps one resident per
/// dataset (amortization across every request the dataset ever serves).
pub struct SharedIndex<const D: usize> {
    points: Arc<[WeightedPoint<D>]>,
    sites: Arc<[ColoredSite<D>]>,
    line: OnceLock<LineIndex>,
    point_grids: Mutex<HashMap<u64, Arc<HashGrid<D>>>>,
    site_grids: Mutex<HashMap<u64, Arc<HashGrid<D>>>>,
    /// Technique-1 sample sets, built once per `(radius, config, colored)`
    /// key and then queried read-only via [`SampleSet::peek_best`].
    sample_sets: Mutex<HashMap<SampleSetKey, Arc<SampleSet<D>>>>,
    /// Point ids sorted by one coordinate (`(coordinate, id)` order), one
    /// array per axis — the shared substrate of the planar sweep solvers.
    projections: Mutex<HashMap<usize, Arc<[u32]>>>,
    coord_scale: OnceLock<f64>,
    builds: AtomicUsize,
    build_time: Mutex<Duration>,
}

/// Cache key of one Technique-1 sample set: the query radius, whether the
/// set was fed colored or weighted balls, and every field of the
/// [`SamplingConfig`] it was built with (bit-exact, so two configs that
/// would sample differently never share a set).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
struct SampleSetKey {
    radius_bits: u64,
    colored: bool,
    eps_bits: u64,
    seed: u64,
    sample_constant_bits: u64,
    min_samples: usize,
    max_samples: usize,
    max_grids: Option<usize>,
}

impl SampleSetKey {
    fn new(radius: f64, colored: bool, config: &SamplingConfig) -> Self {
        Self {
            radius_bits: radius.to_bits(),
            colored,
            eps_bits: config.eps.to_bits(),
            seed: config.seed,
            sample_constant_bits: config.sample_constant.to_bits(),
            min_samples: config.min_samples_per_cell,
            max_samples: config.max_samples_per_cell,
            max_grids: config.max_grids,
        }
    }
}

/// The certification surface of an index: exact-recount *bounds* under
/// endpoint slack, plus direct access to the indexed sets for shapes with no
/// shared structure (boxes).
///
/// Two implementors exist: [`SharedIndex`] (an immutable snapshot — the
/// bounds go through its own grids and Fenwick tree) and
/// [`super::VersionedView`] (one version of an updatable dataset — the
/// bounds go through a *delta overlay* on the base generation's structures,
/// so certifying after an update never rebuilds an index).  The executor's
/// [`certify_answer`](super::certify_answer) is generic over this trait, so
/// every answer is certified against exactly the contents it was computed
/// from.
pub trait AnswerIndex<const D: usize>: Send + Sync {
    /// Largest absolute coordinate across the indexed points and sites (the
    /// magnitude certification slack scales with).
    fn coord_scale(&self) -> f64;

    /// The weighted points the answers were computed over.
    fn points(&self) -> &[WeightedPoint<D>];

    /// The colored sites the answers were computed over.
    fn sites(&self) -> &[ColoredSite<D>];

    /// Lower/upper bounds on the weight in the closed interval `[lo, hi]`
    /// under endpoint slack (see [`SharedIndex::interval_weight_bounds`] for
    /// the contract).
    fn interval_weight_bounds(&self, lo: f64, hi: f64, slack: f64) -> (f64, f64);

    /// Lower/upper bounds on the weight inside the closed ball at `center`
    /// under endpoint slack.
    fn ball_weight_bounds(&self, center: &Point<D>, radius: f64, slack: f64) -> (f64, f64);

    /// Lower/upper bounds on the distinct colors inside the closed ball at
    /// `center` under endpoint slack.
    fn ball_distinct_bounds(&self, center: &Point<D>, radius: f64, slack: f64) -> (usize, usize);
}

impl<const D: usize> AnswerIndex<D> for SharedIndex<D> {
    fn coord_scale(&self) -> f64 {
        SharedIndex::coord_scale(self)
    }

    fn points(&self) -> &[WeightedPoint<D>] {
        SharedIndex::points(self)
    }

    fn sites(&self) -> &[ColoredSite<D>] {
        SharedIndex::sites(self)
    }

    fn interval_weight_bounds(&self, lo: f64, hi: f64, slack: f64) -> (f64, f64) {
        SharedIndex::interval_weight_bounds(self, lo, hi, slack)
    }

    fn ball_weight_bounds(&self, center: &Point<D>, radius: f64, slack: f64) -> (f64, f64) {
        SharedIndex::ball_weight_bounds(self, center, radius, slack)
    }

    fn ball_distinct_bounds(&self, center: &Point<D>, radius: f64, slack: f64) -> (usize, usize) {
        SharedIndex::ball_distinct_bounds(self, center, radius, slack)
    }
}

impl<const D: usize> SharedIndex<D> {
    /// An index over the given shared point and site sets.  Nothing is built
    /// until a query asks for a structure.
    pub fn new(points: Arc<[WeightedPoint<D>]>, sites: Arc<[ColoredSite<D>]>) -> Self {
        Self {
            points,
            sites,
            line: OnceLock::new(),
            point_grids: Mutex::new(HashMap::new()),
            site_grids: Mutex::new(HashMap::new()),
            sample_sets: Mutex::new(HashMap::new()),
            projections: Mutex::new(HashMap::new()),
            coord_scale: OnceLock::new(),
            builds: AtomicUsize::new(0),
            build_time: Mutex::new(Duration::ZERO),
        }
    }

    /// Largest absolute coordinate across the indexed points and sites.
    /// Certification slack scales with this: the rounding carried by a
    /// reported center is relative to the coordinate magnitude, not to the
    /// query radius.
    pub fn coord_scale(&self) -> f64 {
        *self.coord_scale.get_or_init(|| {
            let mut scale = 0.0f64;
            for wp in self.points.iter() {
                for i in 0..D {
                    scale = scale.max(wp.point[i].abs());
                }
            }
            for s in self.sites.iter() {
                for i in 0..D {
                    scale = scale.max(s.point[i].abs());
                }
            }
            scale
        })
    }

    /// The weighted points the index was built over.
    pub fn points(&self) -> &[WeightedPoint<D>] {
        &self.points
    }

    /// The colored sites the index was built over.
    pub fn sites(&self) -> &[ColoredSite<D>] {
        &self.sites
    }

    /// The shared handle to the indexed point set (`O(1)` to clone).  Request
    /// builders use this to guarantee they query the exact set the index was
    /// built over.
    pub fn shared_points(&self) -> Arc<[WeightedPoint<D>]> {
        Arc::clone(&self.points)
    }

    /// The shared handle to the indexed site set (`O(1)` to clone).
    pub fn shared_sites(&self) -> Arc<[ColoredSite<D>]> {
        Arc::clone(&self.sites)
    }

    /// Structures built so far (sorted line and Fenwick tree count once
    /// each; every distinct-radius hash grid counts once).  Monotone over the
    /// index's lifetime — a resident index that has warmed up stops counting.
    pub fn builds(&self) -> usize {
        self.builds.load(Ordering::Relaxed)
    }

    /// Total wall-clock time spent building structures.
    pub fn build_time(&self) -> Duration {
        *self.build_time.lock().expect("build-time lock poisoned")
    }

    fn record_build(&self, structures: usize, elapsed: Duration) {
        self.builds.fetch_add(structures, Ordering::Relaxed);
        *self.build_time.lock().expect("build-time lock poisoned") += elapsed;
    }

    fn line_index(&self) -> &LineIndex {
        self.line.get_or_init(|| {
            let start = Instant::now();
            let line_points: Vec<LinePoint> =
                self.points.iter().map(|wp| LinePoint::new(wp.point[0], wp.weight)).collect();
            let line = SortedLine::new(&line_points);
            let weights: Vec<f64> = line.prefix().windows(2).map(|w| w[1] - w[0]).collect();
            let fenwick = Fenwick::from_values(&weights);
            self.record_build(2, start.elapsed());
            LineIndex { line, weights, fenwick }
        })
    }

    /// The shared sorted event list over the points' first coordinate — the
    /// build the Section 5 batched interval solver amortizes.  Built on
    /// first use, meaningful for `D = 1` workloads.
    pub fn sorted_line(&self) -> &SortedLine {
        &self.line_index().line
    }

    /// Seeds the line index with an externally built [`SortedLine`] — the
    /// incremental path of a versioned dataset, which *merges* the previous
    /// generation's order with a small sorted delta in `O(n)` instead of
    /// re-sorting.  The per-point weights and the Fenwick tree are derived
    /// from the seeded line exactly as [`Self::sorted_line`] would derive
    /// them, so every downstream query is identical.  No-op (returns
    /// `false`) if the line was already built.
    pub(super) fn seed_sorted_line(&self, line: SortedLine) -> bool {
        let start = Instant::now();
        let weights: Vec<f64> = line.prefix().windows(2).map(|w| w[1] - w[0]).collect();
        let fenwick = Fenwick::from_values(&weights);
        let seeded = self.line.set(LineIndex { line, weights, fenwick }).is_ok();
        if seeded {
            self.record_build(2, start.elapsed());
        }
        seeded
    }

    /// Seeds the sorted projection for `axis` with an externally merged
    /// order (see [`Self::seed_sorted_line`] for the contract).  No-op if
    /// the projection was already built.
    pub(super) fn seed_projection(&self, axis: usize, order: Arc<[u32]>) -> bool {
        assert!(axis < D, "axis {axis} out of range for dimension {D}");
        assert_eq!(order.len(), self.points.len(), "one order entry per point");
        let mut map = self.projections.lock().expect("projection lock poisoned");
        if map.contains_key(&axis) {
            return false;
        }
        map.insert(axis, order);
        self.builds.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// Total weight of points whose first coordinate lies in the closed
    /// interval `[lo, hi]`, in `O(log n)` via the shared Fenwick tree.
    pub fn interval_weight(&self, lo: f64, hi: f64) -> f64 {
        let index = self.line_index();
        let xs = index.line.xs();
        let a = xs.partition_point(|&v| v < lo - 1e-12);
        let b = xs.partition_point(|&v| v <= hi + 1e-12);
        if a >= b {
            0.0
        } else {
            index.fenwick.range_sum(a, b - 1)
        }
    }

    fn grid_for(
        &self,
        grids: &Mutex<HashMap<u64, Arc<HashGrid<D>>>>,
        radius: f64,
        coords: impl Fn() -> Vec<Point<D>>,
    ) -> Arc<HashGrid<D>> {
        let mut map = grids.lock().expect("grid lock poisoned");
        if let Some(grid) = map.get(&radius.to_bits()) {
            return Arc::clone(grid);
        }
        let start = Instant::now();
        let grid = Arc::new(HashGrid::build(radius, &coords()));
        self.record_build(1, start.elapsed());
        map.insert(radius.to_bits(), Arc::clone(&grid));
        grid
    }

    /// The hash grid over the weighted points at cell side `radius`, built
    /// once per distinct radius.
    pub fn point_grid(&self, radius: f64) -> Arc<HashGrid<D>> {
        self.grid_for(&self.point_grids, radius, || self.points.iter().map(|wp| wp.point).collect())
    }

    /// The hash grid over the colored sites at cell side `radius`, built
    /// once per distinct radius.
    pub fn site_grid(&self, radius: f64) -> Arc<HashGrid<D>> {
        self.grid_for(&self.site_grids, radius, || self.sites.iter().map(|s| s.point).collect())
    }

    /// The point ids sorted by coordinate `axis` (ties by id), built once per
    /// axis — the shared sorted-projection substrate of the planar rectangle
    /// sweep (and any future sweep that needs one coordinate order).  The
    /// order comes from [`crate::exact::rect2d::sorted_order_by_axis`], the
    /// same function the per-query sweep sorts with, so the presorted path
    /// stays byte-identical by construction.
    pub fn sorted_projection(&self, axis: usize) -> Arc<[u32]> {
        assert!(axis < D, "axis {axis} out of range for dimension {D}");
        let mut map = self.projections.lock().expect("projection lock poisoned");
        if let Some(order) = map.get(&axis) {
            return Arc::clone(order);
        }
        let start = Instant::now();
        let order: Arc<[u32]> =
            crate::exact::rect2d::sorted_order_by_axis(&self.points, axis).into();
        self.record_build(1, start.elapsed());
        map.insert(axis, Arc::clone(&order));
        order
    }

    /// The Technique-1 *weighted* sample set for query radius `radius` under
    /// `config`, built exactly once per `(radius, config)` and shared by
    /// every query that asks for it.  The set is fed the dual unit balls of
    /// the indexed points in input order (exactly what a fresh
    /// `approx_static_ball` run would build), so querying it via
    /// [`SampleSet::peek_best`] reproduces the per-query solver bit for bit.
    pub fn weighted_sample_set(&self, radius: f64, config: &SamplingConfig) -> Arc<SampleSet<D>> {
        self.sample_set(radius, false, config, |set| {
            let inv = 1.0 / radius;
            for wp in self.points.iter() {
                set.insert_ball(&Ball::unit(wp.point.scale(inv)), wp.weight);
            }
        })
    }

    /// The Technique-1 *colored* sample set for query radius `radius` under
    /// `config`: dual unit balls of the indexed sites, inserted grouped by
    /// color (Section 3.2's ordering requirement), exactly as a fresh
    /// `approx_colored_ball` run would insert them.
    pub fn colored_sample_set(&self, radius: f64, config: &SamplingConfig) -> Arc<SampleSet<D>> {
        self.sample_set(radius, true, config, |set| {
            let inv = 1.0 / radius;
            let mut dual: Vec<(Point<D>, usize)> =
                self.sites.iter().map(|s| (s.point.scale(inv), s.color)).collect();
            dual.sort_by_key(|(_, color)| *color);
            for (center, color) in dual {
                set.insert_colored_ball(&Ball::unit(center), color);
            }
        })
    }

    fn sample_set(
        &self,
        radius: f64,
        colored: bool,
        config: &SamplingConfig,
        fill: impl FnOnce(&mut SampleSet<D>),
    ) -> Arc<SampleSet<D>> {
        let key = SampleSetKey::new(radius, colored, config);
        let mut map = self.sample_sets.lock().expect("sample-set lock poisoned");
        if let Some(set) = map.get(&key) {
            return Arc::clone(set);
        }
        let start = Instant::now();
        let expected = if colored { self.sites.len() } else { self.points.len() };
        let mut set = SampleSet::new(*config, expected);
        fill(&mut set);
        let set = Arc::new(set);
        self.record_build(1, start.elapsed());
        map.insert(key, Arc::clone(&set));
        set
    }

    /// Total weight inside the closed ball of the given radius at `center`,
    /// answered through the shared per-radius hash grid.
    pub fn ball_weight(&self, center: &Point<D>, radius: f64) -> f64 {
        let grid = self.point_grid(radius);
        let mut total = 0.0;
        grid.for_each_within(center, radius, |id| total += self.points[id].weight);
        total
    }

    /// Distinct colors inside the closed ball of the given radius at
    /// `center`, answered through the shared per-radius site grid.
    pub fn ball_distinct(&self, center: &Point<D>, radius: f64) -> usize {
        let grid = self.site_grid(radius);
        let mut colors: Vec<usize> = Vec::new();
        grid.for_each_within(center, radius, |id| colors.push(self.sites[id].color));
        colors.sort_unstable();
        colors.dedup();
        colors.len()
    }

    /// Lower/upper bounds on the weight in the closed interval `[lo, hi]`
    /// when endpoint comparisons may be off by `slack`: points deeper than
    /// `slack` inside count definitely, points within `slack` of an endpoint
    /// contribute their negative weight to the lower bound and their
    /// positive weight to the upper bound (correct under mixed-sign
    /// weights).  This is the certification primitive: a reported center
    /// carries rounding proportional to the coordinate magnitude, so exact
    /// boundary membership is not re-decidable.
    pub fn interval_weight_bounds(&self, lo: f64, hi: f64, slack: f64) -> (f64, f64) {
        let index = self.line_index();
        let xs = index.line.xs();
        let outer_a = xs.partition_point(|&v| v < lo - slack);
        let outer_b = xs.partition_point(|&v| v <= hi + slack);
        let inner_a = xs.partition_point(|&v| v < lo + slack).max(outer_a);
        let inner_b = xs.partition_point(|&v| v <= hi - slack).min(outer_b);
        let definite =
            if inner_a < inner_b { index.fenwick.range_sum(inner_a, inner_b - 1) } else { 0.0 };
        let mut lo_sum = definite;
        let mut hi_sum = definite;
        for i in (outer_a..inner_a).chain(inner_b.max(inner_a)..outer_b) {
            let w = index.weights[i];
            if w < 0.0 {
                lo_sum += w;
            } else {
                hi_sum += w;
            }
        }
        (lo_sum, hi_sum)
    }

    /// Lower/upper bounds on the weight inside the closed ball at `center`
    /// under endpoint slack, through the shared per-radius grid.  See
    /// [`Self::interval_weight_bounds`] for the contract.
    pub fn ball_weight_bounds(&self, center: &Point<D>, radius: f64, slack: f64) -> (f64, f64) {
        let grid = self.point_grid(radius);
        let r_in = (radius - slack).max(0.0);
        let mut definite = 0.0;
        let mut neg = 0.0;
        let mut pos = 0.0;
        grid.for_each_within(center, radius + slack, |id| {
            let wp = &self.points[id];
            if wp.point.dist_sq(center) <= r_in * r_in {
                definite += wp.weight;
            } else if wp.weight < 0.0 {
                neg += wp.weight;
            } else {
                pos += wp.weight;
            }
        });
        (definite + neg, definite + pos)
    }

    /// Lower/upper bounds on the distinct colors inside the closed ball at
    /// `center` under endpoint slack, through the shared per-radius site
    /// grid.
    pub fn ball_distinct_bounds(
        &self,
        center: &Point<D>,
        radius: f64,
        slack: f64,
    ) -> (usize, usize) {
        let grid = self.site_grid(radius);
        let r_in = (radius - slack).max(0.0);
        let mut definite: Vec<usize> = Vec::new();
        let mut boundary: Vec<usize> = Vec::new();
        grid.for_each_within(center, radius + slack, |id| {
            let s = &self.sites[id];
            if s.point.dist_sq(center) <= r_in * r_in {
                definite.push(s.color);
            } else {
                boundary.push(s.color);
            }
        });
        definite.sort_unstable();
        definite.dedup();
        let lo = definite.len();
        let mut all = definite;
        all.extend(boundary);
        all.sort_unstable();
        all.dedup();
        (lo, all.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_index_structures_are_built_once_per_radius() {
        let points: Arc<[WeightedPoint<1>]> = (0..64)
            .map(|i| WeightedPoint::new(Point::new([i as f64 * 0.25]), 1.0 + (i % 3) as f64))
            .collect::<Vec<_>>()
            .into();
        let index = SharedIndex::new(Arc::clone(&points), Vec::new().into());
        assert_eq!(index.builds(), 0);
        // The line index (sorted event list + Fenwick) builds once.
        let total: f64 = points.iter().map(|p| p.weight).sum();
        assert!((index.interval_weight(-1.0, 1000.0) - total).abs() < 1e-9);
        assert!(
            (index.interval_weight(0.0, 0.5) - index.sorted_line().weight_in(0.0, 0.5)).abs()
                < 1e-12
        );
        assert_eq!(index.builds(), 2);
        // Ball queries build one grid per distinct radius, then reuse it.
        let _ = index.ball_weight(&Point::new([1.0]), 0.5);
        let _ = index.ball_weight(&Point::new([2.0]), 0.5);
        assert_eq!(index.builds(), 3);
        let _ = index.ball_weight(&Point::new([2.0]), 0.75);
        assert_eq!(index.builds(), 4);
        // Fenwick slab and grid ball agree in 1-D.
        let a = index.interval_weight(1.0, 3.0);
        let b = index.ball_weight(&Point::new([2.0]), 1.0);
        assert!((a - b).abs() < 1e-9, "{a} vs {b}");
    }

    #[test]
    fn weight_bounds_handle_boundary_and_signs() {
        let points: Arc<[WeightedPoint<1>]> = vec![
            WeightedPoint::new(Point::new([0.0]), 2.0),
            WeightedPoint::new(Point::new([1.0]), -1.0), // exactly on the hi endpoint
            WeightedPoint::new(Point::new([2.0]), 4.0),
        ]
        .into();
        let index = SharedIndex::new(Arc::clone(&points), Vec::new().into());
        let slack = 1e-9;
        // [0, 1]: the weight-2 point is definite; the -1 point sits on the
        // boundary, so it widens the bounds downward only.
        let (lo, hi) = index.interval_weight_bounds(0.0 - 0.5, 1.0, slack);
        assert!((lo - 1.0).abs() < 1e-9, "{lo}");
        assert!((hi - 2.0).abs() < 1e-9, "{hi}");
        // Ball version agrees in 1-D.
        let (blo, bhi) = index.ball_weight_bounds(&Point::new([0.25]), 0.75, slack);
        assert!((blo - 1.0).abs() < 1e-9, "{blo}");
        assert!((bhi - 2.0).abs() < 1e-9, "{bhi}");
    }

    #[test]
    fn shared_handles_point_at_the_indexed_sets() {
        let points: Arc<[WeightedPoint<2>]> =
            vec![WeightedPoint::unit(mrs_geom::Point2::xy(0.0, 0.0))].into();
        let sites: Arc<[ColoredSite<2>]> = Vec::new().into();
        let index = SharedIndex::new(Arc::clone(&points), Arc::clone(&sites));
        assert!(Arc::ptr_eq(&index.shared_points(), &points));
        assert!(Arc::ptr_eq(&index.shared_sites(), &sites));
    }
}
