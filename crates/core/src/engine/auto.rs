//! The `auto` meta-solver: route each query to the predicted-cheapest
//! capable built-in solver, using the [`cost`](super::cost) model.
//!
//! `auto` registers under one name for both problem kinds.  Per query it
//! profiles the instance once, prices every capable concrete built-in
//! ([`SolverDescriptor::supports`]), and dispatches to the cheapest
//! prediction (ties break toward registry order, which lists exact solvers
//! first).  The inner report is forwarded with three provenance fields
//! stamped into its [`SolveStats`](super::SolveStats): `auto_choice` (the
//! chosen solver's name), `auto_predicted_work`, and `auto_actual_work` —
//! so callers can audit the router's accuracy query by query, and the
//! batch/server layers can aggregate it.
//!
//! Contract notes:
//!
//! * the descriptor claims [`ShapeClass::Any`] / [`DimSupport::Any`]; when
//!   no concrete solver is capable of a shape in the instance's dimension
//!   (e.g. boxes outside the plane), dispatch fails with a typed
//!   [`EngineError::UnsupportedShape`];
//! * the descriptor's guarantee class is [`GuaranteeClass::HalfMinusEps`],
//!   the honest floor across everything `auto` may pick; each report's
//!   per-solve [`Guarantee`](super::Guarantee) is the chosen solver's own
//!   (often `Exact`);
//! * negative weights are refused up front (`negative_weights: false`):
//!   routing them would silently restrict the candidate set to the 1-D
//!   interval solver, and a meta-solver that sometimes accepts what it
//!   usually refuses is worse than a typed error;
//! * `auto` picks among *built-ins* only — externally registered solvers
//!   have no committed cost row.

use std::time::Instant;

use super::cancel;
use super::cost::{self, InstanceProfile};
use super::descriptor::{
    BatchCapability, DimSupport, GuaranteeClass, ProblemKind, ShapeClass, SolverDescriptor,
};
use super::index::SharedIndex;
use super::instance::{ColoredInstance, RangeShape, WeightedInstance};
use super::registry::{
    concrete_colored, concrete_weighted, EngineConfig, SharedColoredSolver, SharedWeightedSolver,
};
use super::report::SolverReport;
use super::{ColoredSolver, EngineError, EngineResult, WeightedSolver};
use crate::input::{ColoredPlacement, Placement};

const AUTO_REFERENCE: &str = "cost-model router over the registered solvers";

fn stamp<P>(report: &mut SolverReport<P>, choice: &'static str, predicted: f64, n: usize) {
    let actual = cost::actual_work(&report.stats, n);
    report.solver = "auto";
    report.stats.auto_choice = Some(choice);
    report.stats.auto_predicted_work = Some(predicted);
    report.stats.auto_actual_work = Some(actual);
    report.stats.degraded = cancel::degraded();
}

/// Under overload degradation the router drops the `Exact` guarantee tier —
/// whose hardness-walled worst cases (the (min,+)-convolution-hard rectangle
/// sweep among them) are exactly what an overloaded server cannot afford —
/// as long as at least one approximate solver stays capable.  With no
/// capable approximate solver the full candidate set is kept: shedding a
/// query entirely is the admission layer's job, not the router's.
fn degrade_candidates<S>(candidates: &mut Vec<S>, guarantee_of: impl Fn(&S) -> GuaranteeClass) {
    if !cancel::degraded() {
        return;
    }
    if candidates.iter().any(|s| guarantee_of(s) != GuaranteeClass::Exact) {
        candidates.retain(|s| guarantee_of(s) != GuaranteeClass::Exact);
    }
}

/// The cost-routed weighted meta-solver.  See the module docs.
#[derive(Clone, Copy, Debug)]
pub struct AutoWeightedSolver {
    config: EngineConfig,
}

impl AutoWeightedSolver {
    /// Capability record.
    pub const DESCRIPTOR: SolverDescriptor = SolverDescriptor {
        name: "auto",
        problem: ProblemKind::Weighted,
        shape: ShapeClass::Any,
        dims: DimSupport::Any,
        guarantee: GuaranteeClass::HalfMinusEps,
        dynamic: false,
        batch: BatchCapability::IndexShared,
        negative_weights: false,
        reference: AUTO_REFERENCE,
    };

    /// A router whose candidate solvers run with `config`.
    pub fn new(config: EngineConfig) -> Self {
        Self { config }
    }

    fn pick<const D: usize>(
        &self,
        shape: &RangeShape<D>,
        profile: &InstanceProfile<D>,
    ) -> Option<(SharedWeightedSolver<D>, f64)> {
        let features = profile.features(shape);
        let mut candidates: Vec<SharedWeightedSolver<D>> = concrete_weighted::<D>(&self.config)
            .into_iter()
            .filter(|s| s.descriptor().supports(ProblemKind::Weighted, shape.class(), D))
            .collect();
        degrade_candidates(&mut candidates, |s| s.descriptor().guarantee);
        candidates
            .into_iter()
            .map(|s| {
                let work = cost::predicted_work(s.name(), &features);
                (s, work)
            })
            .min_by(|a, b| a.1.total_cmp(&b.1))
    }
}

impl Default for AutoWeightedSolver {
    fn default() -> Self {
        Self::new(EngineConfig::default())
    }
}

impl<const D: usize> WeightedSolver<D> for AutoWeightedSolver {
    fn descriptor(&self) -> &SolverDescriptor {
        &Self::DESCRIPTOR
    }

    fn solve(&self, instance: &WeightedInstance<D>) -> EngineResult<SolverReport<Placement<D>>> {
        let name = Self::DESCRIPTOR.name;
        if instance.has_negative_weights() {
            return Err(EngineError::NegativeWeights { solver: name });
        }
        let start = Instant::now();
        let profile = InstanceProfile::of_points(instance.points());
        let Some((solver, predicted)) = self.pick(instance.shape(), &profile) else {
            return Err(EngineError::UnsupportedShape {
                solver: name,
                shape: instance.shape().class(),
            });
        };
        let mut report = solver.solve(instance)?;
        stamp(&mut report, solver.name(), predicted, instance.len());
        report.stats.elapsed = start.elapsed();
        Ok(report)
    }

    fn solve_all(
        &self,
        base: &WeightedInstance<D>,
        shapes: &[RangeShape<D>],
        index: &SharedIndex<D>,
        threads: usize,
    ) -> Vec<EngineResult<SolverReport<Placement<D>>>> {
        let name = Self::DESCRIPTOR.name;
        if base.has_negative_weights() {
            return shapes
                .iter()
                .map(|_| Err(EngineError::NegativeWeights { solver: name }))
                .collect();
        }
        let profile = InstanceProfile::of_points(base.points());
        let mut results: Vec<Option<EngineResult<SolverReport<Placement<D>>>>> =
            (0..shapes.len()).map(|_| None).collect();
        struct Route<const D: usize> {
            solver: SharedWeightedSolver<D>,
            predicted: Vec<f64>,
            indices: Vec<usize>,
            shapes: Vec<RangeShape<D>>,
        }
        let mut routes: Vec<Route<D>> = Vec::new();
        for (i, shape) in shapes.iter().enumerate() {
            match self.pick(shape, &profile) {
                None => {
                    results[i] = Some(Err(EngineError::UnsupportedShape {
                        solver: name,
                        shape: shape.class(),
                    }));
                }
                Some((solver, predicted)) => {
                    match routes.iter_mut().find(|r| r.solver.name() == solver.name()) {
                        Some(route) => {
                            route.predicted.push(predicted);
                            route.indices.push(i);
                            route.shapes.push(*shape);
                        }
                        None => routes.push(Route {
                            solver,
                            predicted: vec![predicted],
                            indices: vec![i],
                            shapes: vec![*shape],
                        }),
                    }
                }
            }
        }
        for route in routes {
            let inner = if route.solver.descriptor().batch.is_shared() {
                route.solver.solve_all(base, &route.shapes, index, threads)
            } else {
                route.shapes.iter().map(|s| route.solver.solve(&base.with_shape(*s))).collect()
            };
            for ((&i, &predicted), result) in route.indices.iter().zip(&route.predicted).zip(inner)
            {
                results[i] = Some(result.map(|mut report| {
                    stamp(&mut report, route.solver.name(), predicted, base.len());
                    report
                }));
            }
        }
        results.into_iter().map(|r| r.expect("every shape was routed")).collect()
    }
}

/// The cost-routed colored meta-solver.  See the module docs.
#[derive(Clone, Copy, Debug)]
pub struct AutoColoredSolver {
    config: EngineConfig,
}

impl AutoColoredSolver {
    /// Capability record.
    pub const DESCRIPTOR: SolverDescriptor = SolverDescriptor {
        name: "auto",
        problem: ProblemKind::Colored,
        shape: ShapeClass::Any,
        dims: DimSupport::Any,
        guarantee: GuaranteeClass::HalfMinusEps,
        dynamic: false,
        batch: BatchCapability::IndexShared,
        // Vacuous, as for every colored solver: sites carry no weights.
        negative_weights: true,
        reference: AUTO_REFERENCE,
    };

    /// A router whose candidate solvers run with `config`.
    pub fn new(config: EngineConfig) -> Self {
        Self { config }
    }

    fn pick<const D: usize>(
        &self,
        shape: &RangeShape<D>,
        profile: &InstanceProfile<D>,
    ) -> Option<(SharedColoredSolver<D>, f64)> {
        let features = profile.features(shape);
        let mut candidates: Vec<SharedColoredSolver<D>> = concrete_colored::<D>(&self.config)
            .into_iter()
            .filter(|s| s.descriptor().supports(ProblemKind::Colored, shape.class(), D))
            .collect();
        degrade_candidates(&mut candidates, |s| s.descriptor().guarantee);
        candidates
            .into_iter()
            .map(|s| {
                let work = cost::predicted_work(s.name(), &features);
                (s, work)
            })
            .min_by(|a, b| a.1.total_cmp(&b.1))
    }
}

impl Default for AutoColoredSolver {
    fn default() -> Self {
        Self::new(EngineConfig::default())
    }
}

impl<const D: usize> ColoredSolver<D> for AutoColoredSolver {
    fn descriptor(&self) -> &SolverDescriptor {
        &Self::DESCRIPTOR
    }

    fn solve(
        &self,
        instance: &ColoredInstance<D>,
    ) -> EngineResult<SolverReport<ColoredPlacement<D>>> {
        let name = Self::DESCRIPTOR.name;
        let start = Instant::now();
        let profile = InstanceProfile::of_sites(instance.sites());
        let Some((solver, predicted)) = self.pick(instance.shape(), &profile) else {
            return Err(EngineError::UnsupportedShape {
                solver: name,
                shape: instance.shape().class(),
            });
        };
        let mut report = solver.solve(instance)?;
        stamp(&mut report, solver.name(), predicted, instance.len());
        report.stats.elapsed = start.elapsed();
        Ok(report)
    }

    fn solve_all(
        &self,
        base: &ColoredInstance<D>,
        shapes: &[RangeShape<D>],
        index: &SharedIndex<D>,
        threads: usize,
    ) -> Vec<EngineResult<SolverReport<ColoredPlacement<D>>>> {
        let name = Self::DESCRIPTOR.name;
        let profile = InstanceProfile::of_sites(base.sites());
        let mut results: Vec<Option<EngineResult<SolverReport<ColoredPlacement<D>>>>> =
            (0..shapes.len()).map(|_| None).collect();
        struct Route<const D: usize> {
            solver: SharedColoredSolver<D>,
            predicted: Vec<f64>,
            indices: Vec<usize>,
            shapes: Vec<RangeShape<D>>,
        }
        let mut routes: Vec<Route<D>> = Vec::new();
        for (i, shape) in shapes.iter().enumerate() {
            match self.pick(shape, &profile) {
                None => {
                    results[i] = Some(Err(EngineError::UnsupportedShape {
                        solver: name,
                        shape: shape.class(),
                    }));
                }
                Some((solver, predicted)) => {
                    match routes.iter_mut().find(|r| r.solver.name() == solver.name()) {
                        Some(route) => {
                            route.predicted.push(predicted);
                            route.indices.push(i);
                            route.shapes.push(*shape);
                        }
                        None => routes.push(Route {
                            solver,
                            predicted: vec![predicted],
                            indices: vec![i],
                            shapes: vec![*shape],
                        }),
                    }
                }
            }
        }
        for route in routes {
            let inner = if route.solver.descriptor().batch.is_shared() {
                route.solver.solve_all(base, &route.shapes, index, threads)
            } else {
                route.shapes.iter().map(|s| route.solver.solve(&base.with_shape(*s))).collect()
            };
            for ((&i, &predicted), result) in route.indices.iter().zip(&route.predicted).zip(inner)
            {
                results[i] = Some(result.map(|mut report| {
                    stamp(&mut report, route.solver.name(), predicted, base.len());
                    report
                }));
            }
        }
        results.into_iter().map(|r| r.expect("every shape was routed")).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrs_geom::{ColoredSite, Point, Point2, WeightedPoint};

    fn planar_cluster() -> WeightedInstance<2> {
        WeightedInstance::ball(
            vec![
                WeightedPoint::unit(Point2::xy(0.0, 0.0)),
                WeightedPoint::unit(Point2::xy(0.5, 0.0)),
                WeightedPoint::unit(Point2::xy(0.0, 0.5)),
                WeightedPoint::unit(Point2::xy(9.0, 9.0)),
            ],
            1.0,
        )
    }

    #[test]
    fn auto_routes_and_stamps_provenance() {
        let report = AutoWeightedSolver::default().solve(&planar_cluster()).unwrap();
        assert_eq!(report.solver, "auto");
        let choice = report.stats.auto_choice.expect("auto stamps its choice");
        assert_ne!(choice, "auto");
        let predicted = report.stats.auto_predicted_work.expect("predicted work stamped");
        let actual = report.stats.auto_actual_work.expect("actual work stamped");
        assert!(predicted >= 1.0 && actual >= 4.0, "{predicted} {actual}");
        // The answer is certified whatever the route: re-evaluating the
        // reported center reproduces the reported value.
        let instance = planar_cluster();
        assert_eq!(instance.value_at(&report.placement.center), report.placement.value);
    }

    #[test]
    fn auto_picks_the_exact_interval_sweep_on_the_line() {
        let points = [0.0, 0.4, 0.9, 3.0].iter().map(|&x| WeightedPoint::unit(Point::new([x])));
        let instance = WeightedInstance::<1>::new(points.collect(), RangeShape::interval(1.0));
        let report = AutoWeightedSolver::default().solve(&instance).unwrap();
        assert_eq!(report.stats.auto_choice, Some("exact-interval-1d"));
        assert!(report.guarantee.is_exact());
        assert_eq!(report.placement.value, 3.0);
    }

    #[test]
    fn auto_routes_boxes_to_the_rect_sweep() {
        let instance = WeightedInstance::axis_box(
            vec![
                WeightedPoint::unit(Point2::xy(0.0, 0.0)),
                WeightedPoint::unit(Point2::xy(0.6, 0.4)),
                WeightedPoint::unit(Point2::xy(5.0, 5.0)),
            ],
            [1.0, 1.0],
        );
        let report = AutoWeightedSolver::default().solve(&instance).unwrap();
        assert_eq!(report.stats.auto_choice, Some("exact-rect-2d"));
        assert_eq!(report.placement.value, 2.0);
    }

    #[test]
    fn auto_refuses_negative_weights_up_front() {
        let line = WeightedInstance::<1>::new(
            vec![WeightedPoint::new(Point::new([0.0]), -1.0)],
            RangeShape::interval(1.0),
        );
        assert!(matches!(
            AutoWeightedSolver::default().solve(&line),
            Err(EngineError::NegativeWeights { solver: "auto" })
        ));
    }

    #[test]
    fn auto_fails_typed_on_uncoverable_shapes() {
        // Boxes outside the plane have no capable solver.
        let instance = WeightedInstance::<3>::axis_box(
            vec![WeightedPoint::unit(Point::new([0.0, 0.0, 0.0]))],
            [1.0, 1.0, 1.0],
        );
        assert!(matches!(
            AutoWeightedSolver::default().solve(&instance),
            Err(EngineError::UnsupportedShape { solver: "auto", shape: ShapeClass::AxisBox })
        ));
    }

    #[test]
    fn auto_colored_routes_and_certifies() {
        let instance = ColoredInstance::ball(
            vec![
                ColoredSite::new(Point2::xy(0.0, 0.0), 0),
                ColoredSite::new(Point2::xy(0.5, 0.0), 1),
                ColoredSite::new(Point2::xy(0.1, 0.6), 2),
                ColoredSite::new(Point2::xy(5.0, 5.0), 3),
            ],
            1.0,
        );
        let report = AutoColoredSolver::default().solve(&instance).unwrap();
        assert_eq!(report.solver, "auto");
        assert!(report.stats.auto_choice.is_some());
        assert_eq!(instance.distinct_at(&report.placement.center), report.placement.distinct);
    }

    #[test]
    fn auto_in_high_dimension_routes_to_a_sampler() {
        let instance = WeightedInstance::<4>::ball(
            vec![
                WeightedPoint::unit(Point::new([0.0, 0.0, 0.0, 0.0])),
                WeightedPoint::unit(Point::new([0.1, 0.0, 0.0, 0.0])),
            ],
            1.0,
        );
        let report =
            AutoWeightedSolver::new(EngineConfig::practical(0.25)).solve(&instance).unwrap();
        let choice = report.stats.auto_choice.unwrap();
        assert!(
            choice == "approx-static-ball" || choice == "dynamic-ball",
            "only the samplers are capable in d = 4, got {choice}"
        );
        assert!(!report.guarantee.is_exact());
    }
}
