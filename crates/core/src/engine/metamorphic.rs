//! Metamorphic equivalence harness for the solver family.
//!
//! Nothing tests the registry as a *whole* unless something drives every
//! solver through identity-preserving transforms and checks that the
//! answers transform accordingly.  This module provides the three pieces
//! the `metamorphic_equivalence` integration test composes:
//!
//! 1. **Generators** — [`dyadic_points`] / [`dyadic_sites`] produce
//!    instances on a dyadic lattice (coordinates are multiples of `1/8`,
//!    weights small positive integers).  On this family every transform
//!    below is *exact* in f64 arithmetic and every optimal score is an
//!    integer-valued sum, so equivalence is assertable with `==`, not with
//!    tolerances that could mask real bugs.
//! 2. **Transforms** — [`weighted_variants`] / [`colored_variants`] derive
//!    one instance per transform class: `translate`, `scale` (powers of
//!    two), `reflect` (all via [`SimilarityMap`], see
//!    `mrs_geom::transform`), `permute` (input order), `dup-zero-weight`
//!    (weighted) / `color-remap` (colored).  The sixth class,
//!    *split-into-script* (replaying the instance as insert mutations
//!    through [`VersionedDataset`](super::VersionedDataset)), lives in the
//!    integration test because it exercises the executor layer.
//! 3. **Verifiers** — [`verify_weighted`] / [`verify_colored`] compare a
//!    solver's report on the base instance against its report on a
//!    variant: both answers must be *certified* (re-evaluating the
//!    reported center reproduces the reported score), the variant's
//!    placement pulled back through the inverse map must cover the same
//!    score on the base instance, exact solvers must report identical
//!    scores across frames, and — when an exact reference optimum is
//!    supplied — every report must respect its declared guarantee ratio.
//!
//! The vendored `proptest` subset drives case generation with fixed seeds
//! but performs no shrinking; the harness compensates by generating sizes
//! smallest-first, so the first reported violation is already near-minimal.

use mrs_geom::{ColoredSite, Point, SimilarityMap, WeightedPoint};

use super::instance::{ColoredInstance, RangeShape, WeightedInstance};
use super::report::SolverReport;
use crate::input::{ColoredPlacement, Placement};

/// One transformed instance plus the exact map that produced it (identity
/// for the order/attribute transforms), so answers can be pulled back.
#[derive(Clone, Debug)]
pub struct Variant<I, const D: usize> {
    /// Transform-class label (`"translate"`, `"permute"`, …) for messages.
    pub label: &'static str,
    /// The transformed instance.
    pub instance: I,
    /// The similarity that maps base-frame geometry into this variant's
    /// frame ([`SimilarityMap::identity`] for non-geometric transforms).
    pub map: SimilarityMap<D>,
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn dyadic_coord(rng: &mut u64) -> f64 {
    // Multiples of 1/8 in [-8, 8]: exactly representable, and exact under
    // every map the harness applies.
    (splitmix(rng) % 129) as f64 * 0.125 - 8.0
}

/// `n` weighted points on the dyadic lattice with integer weights in
/// `1..=8`, deterministically derived from `seed`.
pub fn dyadic_points<const D: usize>(seed: u64, n: usize) -> Vec<WeightedPoint<D>> {
    let mut rng = seed ^ 0xD1B5_4A32_D192_ED03;
    (0..n)
        .map(|_| {
            let mut coords = [0.0; D];
            for c in &mut coords {
                *c = dyadic_coord(&mut rng);
            }
            WeightedPoint::new(Point::new(coords), (splitmix(&mut rng) % 8 + 1) as f64)
        })
        .collect()
}

/// `n` colored sites on the dyadic lattice with colors in `0..palette`,
/// deterministically derived from `seed`.
pub fn dyadic_sites<const D: usize>(seed: u64, n: usize, palette: usize) -> Vec<ColoredSite<D>> {
    let mut rng = seed ^ 0xA076_1D64_78BD_642F;
    let palette = palette.max(1);
    (0..n)
        .map(|_| {
            let mut coords = [0.0; D];
            for c in &mut coords {
                *c = dyadic_coord(&mut rng);
            }
            ColoredSite::new(Point::new(coords), (splitmix(&mut rng) as usize) % palette)
        })
        .collect()
}

/// Applies an exact similarity to a range shape: radii and box extents pick
/// up the scale; axis-aligned flips and translations leave them unchanged.
pub fn map_shape<const D: usize>(shape: &RangeShape<D>, map: &SimilarityMap<D>) -> RangeShape<D> {
    match shape.ball_radius() {
        Some(radius) => RangeShape::ball(map.apply_length(radius)),
        None => {
            let extents = shape.box_extents().expect("a range is a ball or a box");
            let mut mapped = [0.0; D];
            for axis in 0..D {
                mapped[axis] = map.apply_length(extents[axis]);
            }
            RangeShape::axis_box(mapped)
        }
    }
}

/// Applies an exact similarity to a weighted instance (weights unchanged).
pub fn map_weighted<const D: usize>(
    instance: &WeightedInstance<D>,
    map: &SimilarityMap<D>,
) -> WeightedInstance<D> {
    let points = instance
        .points()
        .iter()
        .map(|wp| WeightedPoint::new(map.apply(&wp.point), wp.weight))
        .collect();
    WeightedInstance::new(points, map_shape(instance.shape(), map))
}

/// Applies an exact similarity to a colored instance (colors unchanged).
pub fn map_colored<const D: usize>(
    instance: &ColoredInstance<D>,
    map: &SimilarityMap<D>,
) -> ColoredInstance<D> {
    let sites =
        instance.sites().iter().map(|s| ColoredSite::new(map.apply(&s.point), s.color)).collect();
    ColoredInstance::new(sites, map_shape(instance.shape(), map))
}

fn similarity_maps<const D: usize>(seed: u64) -> [(&'static str, SimilarityMap<D>); 3] {
    let mut rng = seed ^ 0x2545_F491_4F6C_DD1D;
    let mut shift = [0.0; D];
    for s in &mut shift {
        // Multiples of 1/4 in [-16, 16]: dyadic, bounded, exact.
        *s = (splitmix(&mut rng) % 129) as f64 * 0.25 - 16.0;
    }
    let scale = [0.25, 0.5, 2.0, 4.0][(splitmix(&mut rng) % 4) as usize];
    let mut flip = [false; D];
    for f in &mut flip {
        *f = splitmix(&mut rng) % 2 == 1;
    }
    if flip.iter().all(|f| !f) {
        flip[0] = true;
    }
    [
        ("translate", SimilarityMap::translation(shift)),
        ("scale", SimilarityMap::scaling(scale)),
        ("reflect", SimilarityMap::reflection(flip)),
    ]
}

fn permutation(seed: u64, n: usize) -> Vec<usize> {
    let mut rng = seed ^ 0x9FB2_1C65_1E98_DF25;
    let mut order: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        order.swap(i, (splitmix(&mut rng) as usize) % (i + 1));
    }
    order
}

/// The weighted transform catalog: `translate`, `scale`, `reflect`,
/// `permute`, `dup-zero-weight`.  Every variant preserves the optimum
/// score; geometric variants carry the map that relocates it.
pub fn weighted_variants<const D: usize>(
    base: &WeightedInstance<D>,
    seed: u64,
) -> Vec<Variant<WeightedInstance<D>, D>> {
    let mut out: Vec<Variant<WeightedInstance<D>, D>> = similarity_maps::<D>(seed)
        .into_iter()
        .map(|(label, map)| Variant { label, instance: map_weighted(base, &map), map })
        .collect();

    let order = permutation(seed, base.len());
    let permuted: Vec<WeightedPoint<D>> = order.iter().map(|&i| base.points()[i]).collect();
    out.push(Variant {
        label: "permute",
        instance: WeightedInstance::new(permuted, *base.shape()),
        map: SimilarityMap::identity(),
    });

    if !base.is_empty() {
        let mut dup = base.points().to_vec();
        let pick = dup[(seed as usize) % dup.len()].point;
        dup.push(WeightedPoint::new(pick, 0.0));
        out.push(Variant {
            label: "dup-zero-weight",
            instance: WeightedInstance::new(dup, *base.shape()),
            map: SimilarityMap::identity(),
        });
    }
    out
}

/// The colored transform catalog: `translate`, `scale`, `reflect`,
/// `permute`, `color-remap` (a bijective rotation of the palette).
pub fn colored_variants<const D: usize>(
    base: &ColoredInstance<D>,
    seed: u64,
) -> Vec<Variant<ColoredInstance<D>, D>> {
    let mut out: Vec<Variant<ColoredInstance<D>, D>> = similarity_maps::<D>(seed)
        .into_iter()
        .map(|(label, map)| Variant { label, instance: map_colored(base, &map), map })
        .collect();

    let order = permutation(seed, base.len());
    let permuted: Vec<ColoredSite<D>> = order.iter().map(|&i| base.sites()[i]).collect();
    out.push(Variant {
        label: "permute",
        instance: ColoredInstance::new(permuted, *base.shape()),
        map: SimilarityMap::identity(),
    });

    let mut palette: Vec<usize> = base.sites().iter().map(|s| s.color).collect();
    palette.sort_unstable();
    palette.dedup();
    if !palette.is_empty() {
        let rot = 1 + (seed as usize) % palette.len().max(1);
        let remap = |color: usize| {
            let at = palette.binary_search(&color).expect("color drawn from the palette");
            // Rotate within the palette, then lift out of it so remapped ids
            // are disjoint from the originals — a stricter bijection test
            // than a pure rotation.
            palette[(at + rot) % palette.len()] + 1_000_000
        };
        let remapped: Vec<ColoredSite<D>> =
            base.sites().iter().map(|s| ColoredSite::new(s.point, remap(s.color))).collect();
        out.push(Variant {
            label: "color-remap",
            instance: ColoredInstance::new(remapped, *base.shape()),
            map: SimilarityMap::identity(),
        });
    }
    out
}

fn fail(
    solver: &str,
    label: &str,
    what: &str,
    detail: std::fmt::Arguments<'_>,
) -> Result<(), String> {
    Err(format!("[{solver} / {label}] {what}: {detail}"))
}

/// Verifies one weighted base/variant report pair.  `exact_opt` is the true
/// optimum of the *base* instance when an exact reference solver exists for
/// its shape and dimension (the optimum is invariant under every catalog
/// transform); pass `None` to skip the guarantee-ratio floor.
pub fn verify_weighted<const D: usize>(
    base: &WeightedInstance<D>,
    base_report: &SolverReport<Placement<D>>,
    variant: &Variant<WeightedInstance<D>, D>,
    variant_report: &SolverReport<Placement<D>>,
    exact_opt: Option<f64>,
) -> Result<(), String> {
    let solver = base_report.solver;
    let label = variant.label;

    // 1. Both reports are certified: the reported score is the true score
    //    of the reported center, in each frame.
    let base_true = base.value_at(&base_report.placement.center);
    if base_true != base_report.placement.value {
        return fail(
            solver,
            label,
            "base report is not certified",
            format_args!("reported {}, recount {}", base_report.placement.value, base_true),
        );
    }
    let variant_true = variant.instance.value_at(&variant_report.placement.center);
    if variant_true != variant_report.placement.value {
        return fail(
            solver,
            label,
            "variant report is not certified",
            format_args!("reported {}, recount {}", variant_report.placement.value, variant_true),
        );
    }

    // 2. The variant's placement pulled back through the inverse map covers
    //    the same score on the base instance.
    let back = variant.map.inverse().apply(&variant_report.placement.center);
    let pulled = base.value_at(&back);
    if pulled != variant_report.placement.value {
        return fail(
            solver,
            label,
            "pulled-back placement does not reproduce the variant score",
            format_args!("variant {}, base recount {}", variant_report.placement.value, pulled),
        );
    }

    // 3. Exact runs must agree bit for bit across frames (integer-valued
    //    scores on the dyadic family, so == is legitimate).
    if base_report.guarantee.is_exact()
        && variant_report.guarantee.is_exact()
        && base_report.placement.value != variant_report.placement.value
    {
        return fail(
            solver,
            label,
            "exact scores diverge across frames",
            format_args!(
                "base {}, variant {}",
                base_report.placement.value, variant_report.placement.value
            ),
        );
    }

    // 4. Deterministic solvers must keep their guarantee across frames
    //    (`auto` may legitimately re-route, so it is exempt).
    if solver != "auto" && base_report.guarantee != variant_report.guarantee {
        return fail(
            solver,
            label,
            "guarantee changed across frames",
            format_args!(
                "base {:?}, variant {:?}",
                base_report.guarantee, variant_report.guarantee
            ),
        );
    }

    // 5. Against an exact reference: every report respects its ratio.
    if let Some(opt) = exact_opt {
        for (frame, report) in [("base", base_report), ("variant", variant_report)] {
            let floor = report.guarantee.ratio() * opt;
            if report.placement.value < floor - 1e-9 {
                return fail(
                    solver,
                    label,
                    "guarantee ratio violated",
                    format_args!(
                        "{frame} score {} < {} (= {:.3} × opt {})",
                        report.placement.value,
                        floor,
                        report.guarantee.ratio(),
                        opt
                    ),
                );
            }
        }
    }
    Ok(())
}

/// Verifies one colored base/variant report pair; see [`verify_weighted`].
pub fn verify_colored<const D: usize>(
    base: &ColoredInstance<D>,
    base_report: &SolverReport<ColoredPlacement<D>>,
    variant: &Variant<ColoredInstance<D>, D>,
    variant_report: &SolverReport<ColoredPlacement<D>>,
    exact_opt: Option<usize>,
) -> Result<(), String> {
    let solver = base_report.solver;
    let label = variant.label;

    let base_true = base.distinct_at(&base_report.placement.center);
    if base_true != base_report.placement.distinct {
        return fail(
            solver,
            label,
            "base report is not certified",
            format_args!("reported {}, recount {}", base_report.placement.distinct, base_true),
        );
    }
    let variant_true = variant.instance.distinct_at(&variant_report.placement.center);
    if variant_true != variant_report.placement.distinct {
        return fail(
            solver,
            label,
            "variant report is not certified",
            format_args!(
                "reported {}, recount {}",
                variant_report.placement.distinct, variant_true
            ),
        );
    }

    let back = variant.map.inverse().apply(&variant_report.placement.center);
    let pulled = base.distinct_at(&back);
    if pulled != variant_report.placement.distinct {
        return fail(
            solver,
            label,
            "pulled-back placement does not reproduce the variant count",
            format_args!("variant {}, base recount {}", variant_report.placement.distinct, pulled),
        );
    }

    if base_report.guarantee.is_exact()
        && variant_report.guarantee.is_exact()
        && base_report.placement.distinct != variant_report.placement.distinct
    {
        return fail(
            solver,
            label,
            "exact counts diverge across frames",
            format_args!(
                "base {}, variant {}",
                base_report.placement.distinct, variant_report.placement.distinct
            ),
        );
    }

    if solver != "auto" && base_report.guarantee != variant_report.guarantee {
        return fail(
            solver,
            label,
            "guarantee changed across frames",
            format_args!(
                "base {:?}, variant {:?}",
                base_report.guarantee, variant_report.guarantee
            ),
        );
    }

    if let Some(opt) = exact_opt {
        for (frame, report) in [("base", base_report), ("variant", variant_report)] {
            let floor = report.guarantee.ratio() * opt as f64;
            if (report.placement.distinct as f64) < floor - 1e-9 {
                return fail(
                    solver,
                    label,
                    "guarantee ratio violated",
                    format_args!(
                        "{frame} count {} < {} (= {:.3} × opt {})",
                        report.placement.distinct,
                        floor,
                        report.guarantee.ratio(),
                        opt
                    ),
                );
            }
        }
    }
    Ok(())
}

/// The pull-back of a color remap is identity on geometry, so colored
/// remap variants reuse [`verify_colored`] unchanged: counts are compared,
/// never color ids.
#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::ColoredSolver as _;
    use crate::engine::{ExactDiskSolver, OutputSensitiveColoredDiskSolver, WeightedSolver};

    #[test]
    fn dyadic_generators_are_deterministic_and_on_lattice() {
        let a = dyadic_points::<2>(7, 12);
        let b = dyadic_points::<2>(7, 12);
        assert_eq!(a, b);
        for wp in &a {
            for axis in 0..2 {
                let scaled = wp.point[axis] * 8.0;
                assert_eq!(scaled, scaled.round(), "coordinates live on the 1/8 lattice");
            }
            assert!(wp.weight >= 1.0 && wp.weight <= 8.0 && wp.weight.fract() == 0.0);
        }
        let sites = dyadic_sites::<2>(7, 12, 4);
        assert!(sites.iter().all(|s| s.color < 4));
    }

    #[test]
    fn weighted_catalog_has_five_instance_transforms() {
        let base = WeightedInstance::<2>::ball(dyadic_points(3, 8), 1.25);
        let variants = weighted_variants(&base, 3);
        let labels: Vec<&str> = variants.iter().map(|v| v.label).collect();
        assert_eq!(labels, vec!["translate", "scale", "reflect", "permute", "dup-zero-weight"]);
        for v in &variants {
            assert!(v.map.is_exact(), "{}: catalog maps must be exact", v.label);
        }
        assert_eq!(variants[4].instance.len(), base.len() + 1);
        assert_eq!(variants[4].instance.total_weight(), base.total_weight());
    }

    #[test]
    fn colored_catalog_remap_is_bijective() {
        let base = ColoredInstance::<2>::ball(dyadic_sites(11, 10, 3), 1.25);
        let variants = colored_variants(&base, 11);
        let labels: Vec<&str> = variants.iter().map(|v| v.label).collect();
        assert_eq!(labels, vec!["translate", "scale", "reflect", "permute", "color-remap"]);
        let remapped = &variants[4].instance;
        assert_eq!(remapped.distinct_colors(), base.distinct_colors());
        // Remapped ids are disjoint from the original palette.
        assert!(remapped.sites().iter().all(|s| s.color >= 1_000_000));
    }

    #[test]
    fn exact_solver_passes_its_own_catalog() {
        let base = WeightedInstance::<2>::ball(dyadic_points(5, 16), 1.25);
        let base_report = ExactDiskSolver.solve(&base).unwrap();
        for variant in weighted_variants(&base, 5) {
            let variant_report = ExactDiskSolver.solve(&variant.instance).unwrap();
            verify_weighted(
                &base,
                &base_report,
                &variant,
                &variant_report,
                Some(base_report.placement.value),
            )
            .unwrap();
        }
        let herd = ColoredInstance::<2>::ball(dyadic_sites(5, 14, 4), 1.25);
        let herd_report = OutputSensitiveColoredDiskSolver.solve(&herd).unwrap();
        for variant in colored_variants(&herd, 5) {
            let variant_report = OutputSensitiveColoredDiskSolver.solve(&variant.instance).unwrap();
            verify_colored(
                &herd,
                &herd_report,
                &variant,
                &variant_report,
                Some(herd_report.placement.distinct),
            )
            .unwrap();
        }
    }

    #[test]
    fn verifier_catches_a_fabricated_violation() {
        let base = WeightedInstance::<2>::ball(dyadic_points(9, 10), 1.25);
        let base_report = ExactDiskSolver.solve(&base).unwrap();
        let variant = &weighted_variants(&base, 9)[0];
        let mut bad = ExactDiskSolver.solve(&variant.instance).unwrap();
        bad.placement.value += 1.0; // an uncertified, inflated score
        let err = verify_weighted(&base, &base_report, variant, &bad, None).unwrap_err();
        assert!(err.contains("not certified"), "{err}");
    }
}
