//! Colored MaxRS with a `d`-ball via point sampling (Theorem 1.5).
//!
//! A randomized `(1/2 − ε)`-approximation running in `O(ε^{-2d-2} n log n)`
//! time.  The sampling structure is the same as in the weighted case; only the
//! depth computation differs: the dual balls are processed grouped by color
//! and every sample point carries a "last color seen" flag, so each color
//! contributes at most one unit to a sample's colored depth (Section 3.2).

use crate::config::SamplingConfig;
use crate::input::{ColoredBallInstance, ColoredPlacement};
use crate::technique1::sample_set::SampleSet;

/// Computes a `(1/2 − ε)`-approximate placement for colored MaxRS with a
/// `d`-ball (Theorem 1.5).
///
/// The returned `distinct` count is the exact colored depth of the returned
/// center, so it is always a valid lower bound on `opt`; the theorem
/// guarantees it is at least `(1/2 − ε)·opt` with high probability.
pub fn approx_colored_ball<const D: usize>(
    instance: &ColoredBallInstance<D>,
    config: SamplingConfig,
) -> ColoredPlacement<D> {
    if instance.is_empty() {
        return ColoredPlacement::empty();
    }
    let mut dual = instance.dual_unit_balls();
    // Group by color (any order within a group works; sorting is the paper's
    // "order the set B by color index" step).
    dual.sort_by_key(|(_, color)| *color);

    let mut set = SampleSet::<D>::new(config, instance.len());
    for (ball, color) in &dual {
        set.insert_colored_ball(ball, *color);
    }
    match set.best() {
        Some((scaled_center, _sampled_depth)) => {
            let center = instance.unscale(scaled_center);
            // Report the true colored depth of the chosen center so the result
            // is a certified placement (it equals the sampled depth up to
            // floating-point boundary ties).
            let distinct = instance.distinct_at(&center);
            ColoredPlacement { center, distinct }
        }
        None => ColoredPlacement::empty(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::colored_disk2d::exact_colored_disk;
    use mrs_geom::{ColoredSite, Point, Point2};
    use rand::prelude::*;

    fn cfg(seed: u64) -> SamplingConfig {
        SamplingConfig::practical(0.25).with_seed(seed)
    }

    fn site(x: f64, y: f64, color: usize) -> ColoredSite<2> {
        ColoredSite::new(Point2::xy(x, y), color)
    }

    #[test]
    fn empty_instance() {
        let inst = ColoredBallInstance::<2>::new(vec![], 1.0);
        assert_eq!(approx_colored_ball(&inst, cfg(1)).distinct, 0);
    }

    #[test]
    fn duplicates_of_a_color_do_not_inflate_the_count() {
        let sites = vec![
            site(0.0, 0.0, 0),
            site(0.05, 0.0, 0),
            site(0.10, 0.0, 0),
            site(0.0, 0.05, 1),
            site(0.0, 0.10, 2),
        ];
        let inst = ColoredBallInstance::new(sites, 1.0);
        let res = approx_colored_ball(&inst, cfg(2));
        assert_eq!(res.distinct, 3);
        assert_eq!(inst.distinct_at(&res.center), 3);
    }

    #[test]
    fn far_apart_color_groups_cannot_be_merged() {
        let sites = vec![site(0.0, 0.0, 0), site(100.0, 0.0, 1), site(200.0, 0.0, 2)];
        let inst = ColoredBallInstance::new(sites, 1.0);
        let res = approx_colored_ball(&inst, cfg(3));
        assert_eq!(res.distinct, 1);
    }

    #[test]
    fn ratio_holds_against_exact_in_2d() {
        let mut rng = StdRng::seed_from_u64(31);
        for round in 0..5 {
            let n = 150;
            let m = 12;
            let sites: Vec<ColoredSite<2>> = (0..n)
                .map(|_| {
                    site(rng.gen_range(0.0..6.0), rng.gen_range(0.0..6.0), rng.gen_range(0..m))
                })
                .collect();
            let inst = ColoredBallInstance::new(sites.clone(), 1.0);
            let eps = 0.25;
            let approx = approx_colored_ball(&inst, cfg(round));
            let exact = exact_colored_disk(&sites, 1.0);
            assert!(
                approx.distinct as f64 >= (0.5 - eps) * exact.distinct as f64 - 1e-9,
                "round {round}: approx {} vs exact {}",
                approx.distinct,
                exact.distinct
            );
            assert!(approx.distinct <= exact.distinct);
            assert_eq!(inst.distinct_at(&approx.center), approx.distinct);
        }
    }

    #[test]
    fn trajectory_style_instance_in_3d() {
        // Three "animals" (colors) whose trajectory samples pass near the
        // origin, plus one far away: the best tracking-ball position covers 3.
        let mut sites: Vec<ColoredSite<3>> = Vec::new();
        for step in 0..10 {
            let t = step as f64 * 0.05;
            sites.push(ColoredSite::new(Point::new([t, 0.0, 0.0]), 0));
            sites.push(ColoredSite::new(Point::new([0.0, t, 0.0]), 1));
            sites.push(ColoredSite::new(Point::new([0.0, 0.0, t]), 2));
            sites.push(ColoredSite::new(Point::new([50.0 + t, 50.0, 50.0]), 3));
        }
        let inst = ColoredBallInstance::new(sites, 1.0);
        let mut config = SamplingConfig::practical(0.3).with_seed(4);
        config.max_grids = Some(4);
        config.max_samples_per_cell = 32;
        let res = approx_colored_ball(&inst, config);
        assert!(res.distinct >= 2, "guarantee is ≥ (1/2 − ε)·3; found {}", res.distinct);
        assert_eq!(inst.distinct_at(&res.center), res.distinct);
    }

    #[test]
    fn single_color_everywhere_gives_one() {
        let sites: Vec<ColoredSite<2>> = (0..30).map(|i| site(i as f64 * 0.1, 0.0, 5)).collect();
        let inst = ColoredBallInstance::new(sites, 1.0);
        assert_eq!(approx_colored_ball(&inst, cfg(8)).distinct, 1);
    }
}
