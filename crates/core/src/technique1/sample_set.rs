//! The shared sampling structure of Technique 1 (Section 3).
//!
//! The structure keeps, for every shifted grid of the Lemma 2.1 family and
//! every *non-empty* cell (a cell intersected by at least one dual ball), a
//! set of `t = Θ(ε^{-2} log n)` points sampled uniformly on the cell's
//! circumsphere, together with the current (weighted or colored) depth of each
//! sample point.  Inserting or deleting a ball touches only the samples of the
//! `O(ε^{-2d})` cells it intersects, which is what gives the
//! `O(ε^{-2d-2} log n)` update time of Theorem 1.1; the maximum-depth sample is
//! tracked with a per-cell maximum plus a lazily validated global heap.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap};

use rand::rngs::StdRng;
use rand::SeedableRng;

use mrs_geom::grid::CellCoord;
use mrs_geom::sphere::sample_points_on_boundary;
use mrs_geom::{Ball, Point, ShiftedGrids};

use crate::config::SamplingConfig;

/// Identifies one cell of one grid in the shifted family.
pub type CellKey<const D: usize> = (u32, CellCoord<D>);

/// Sentinel for "no color seen yet" in the colored-depth flag.
const NO_COLOR: i64 = -1;

#[derive(Clone, Debug)]
struct CellSamples<const D: usize> {
    points: Vec<Point<D>>,
    depth: Vec<f64>,
    /// Most recent color that contributed to each sample (colored mode only).
    flag: Vec<i64>,
    max_depth: f64,
    argmax: u32,
}

impl<const D: usize> CellSamples<D> {
    fn new(points: Vec<Point<D>>) -> Self {
        let len = points.len();
        Self { points, depth: vec![0.0; len], flag: vec![NO_COLOR; len], max_depth: 0.0, argmax: 0 }
    }

    fn recompute_max(&mut self) {
        let mut best = f64::NEG_INFINITY;
        let mut arg = 0u32;
        for (i, &d) in self.depth.iter().enumerate() {
            if d > best {
                best = d;
                arg = i as u32;
            }
        }
        self.max_depth = best;
        self.argmax = arg;
    }
}

#[derive(Clone, Debug)]
struct HeapEntry<const D: usize> {
    value: f64,
    key: CellKey<D>,
}

impl<const D: usize> PartialEq for HeapEntry<D> {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl<const D: usize> Eq for HeapEntry<D> {}
impl<const D: usize> PartialOrd for HeapEntry<D> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<const D: usize> Ord for HeapEntry<D> {
    fn cmp(&self, other: &Self) -> Ordering {
        self.value
            .total_cmp(&other.value)
            .then_with(|| self.key.0.cmp(&other.key.0))
            .then_with(|| self.key.1.cmp(&other.key.1))
    }
}

/// The point-sampling structure shared by the static, dynamic and colored
/// variants of Technique 1.  Operates entirely in the *dual, unit-radius*
/// coordinate system (see `WeightedBallInstance::dual_unit_balls`).
#[derive(Clone, Debug)]
pub struct SampleSet<const D: usize> {
    config: SamplingConfig,
    grids: ShiftedGrids<D>,
    samples_per_cell: usize,
    cells: HashMap<CellKey<D>, CellSamples<D>>,
    heap: BinaryHeap<HeapEntry<D>>,
    rng: StdRng,
    total_samples: usize,
}

impl<const D: usize> SampleSet<D> {
    /// Creates an empty structure sized for roughly `expected_n` balls.
    pub fn new(config: SamplingConfig, expected_n: usize) -> Self {
        let side = config.grid_side(D);
        let delta = config.grid_delta();
        let grids = match config.max_grids {
            Some(limit) => ShiftedGrids::with_limit(side, delta, limit),
            None => ShiftedGrids::full(side, delta),
        };
        let samples_per_cell = config.samples_per_cell(expected_n);
        Self {
            config,
            grids,
            samples_per_cell,
            cells: HashMap::new(),
            heap: BinaryHeap::new(),
            rng: StdRng::seed_from_u64(config.seed),
            total_samples: 0,
        }
    }

    /// The configuration this structure was built with.
    pub fn config(&self) -> &SamplingConfig {
        &self.config
    }

    /// Number of shifted grids in use.
    pub fn grid_count(&self) -> usize {
        self.grids.len()
    }

    /// Number of sample points drawn per non-empty cell.
    pub fn samples_per_cell(&self) -> usize {
        self.samples_per_cell
    }

    /// Number of non-empty cells currently materialized (across all grids).
    pub fn cell_count(&self) -> usize {
        self.cells.len()
    }

    /// Total number of sample points currently maintained.
    pub fn total_samples(&self) -> usize {
        self.total_samples
    }

    /// Applies `f` to every `(key, sample index)` pair whose sample point lies
    /// inside `ball`, materializing cells on first touch.  Cell enumeration
    /// goes through the allocation-free grid visitor, so an update allocates
    /// only when it materializes a new cell.
    fn for_each_sample_in_ball<F: FnMut(&mut CellSamples<D>, usize)>(
        &mut self,
        ball: &Ball<D>,
        mut f: F,
    ) -> Vec<CellKey<D>> {
        let mut touched = Vec::new();
        let Self { grids, cells, rng, samples_per_cell, total_samples, .. } = self;
        for (gi, grid) in grids.grids().iter().enumerate() {
            grid.for_each_cell_intersecting_ball(ball, |cell| {
                let key: CellKey<D> = (gi as u32, cell);
                let entry = cells.entry(key).or_insert_with(|| {
                    let circumball = grid.cell_circumball(&cell);
                    let pts = sample_points_on_boundary(&circumball, *samples_per_cell, rng);
                    *total_samples += pts.len();
                    CellSamples::new(pts)
                });
                let mut any = false;
                for i in 0..entry.points.len() {
                    if ball.contains(&entry.points[i]) {
                        f(entry, i);
                        any = true;
                    }
                }
                if any {
                    touched.push(key);
                }
            });
        }
        touched
    }

    fn refresh_cell_max(&mut self, key: CellKey<D>) {
        if let Some(cell) = self.cells.get_mut(&key) {
            cell.recompute_max();
            let value = cell.max_depth;
            self.heap.push(HeapEntry { value, key });
        }
    }

    /// Adds a weighted ball: the weighted depth of every sample point inside
    /// it increases by `weight`.
    pub fn insert_ball(&mut self, ball: &Ball<D>, weight: f64) {
        let touched = self.for_each_sample_in_ball(ball, |cell, i| {
            cell.depth[i] += weight;
        });
        for key in touched {
            self.refresh_cell_max(key);
        }
    }

    /// Removes a weighted ball previously added with [`Self::insert_ball`].
    pub fn remove_ball(&mut self, ball: &Ball<D>, weight: f64) {
        let touched = self.for_each_sample_in_ball(ball, |cell, i| {
            cell.depth[i] -= weight;
        });
        for key in touched {
            self.refresh_cell_max(key);
        }
    }

    /// Adds a colored ball.  Balls **must** be inserted grouped by color
    /// (Section 3.2): the per-sample flag records the last color seen, so the
    /// colored depth counts each color at most once per sample.
    pub fn insert_colored_ball(&mut self, ball: &Ball<D>, color: usize) {
        let color = color as i64;
        let touched = self.for_each_sample_in_ball(ball, |cell, i| {
            if cell.flag[i] != color {
                cell.flag[i] = color;
                cell.depth[i] += 1.0;
            }
        });
        for key in touched {
            self.refresh_cell_max(key);
        }
    }

    /// The deepest sample point and its depth without mutating the structure:
    /// a scan over the per-cell maxima, `O(cells)`.  This is the read-only
    /// query path of a *build-once, query-many* sample set (the engine caches
    /// one per query radius in its `SharedIndex`); ties are broken by the
    /// same `(depth, grid, cell)` total order the heap of [`Self::best`]
    /// uses, so both report the same sample.
    pub fn peek_best(&self) -> Option<(Point<D>, f64)> {
        let mut best: Option<(&CellSamples<D>, CellKey<D>)> = None;
        for (key, cell) in &self.cells {
            let better = match &best {
                None => true,
                Some((champion, champion_key)) => {
                    match cell.max_depth.total_cmp(&champion.max_depth) {
                        Ordering::Greater => true,
                        Ordering::Less => false,
                        Ordering::Equal => {
                            key.0.cmp(&champion_key.0).then_with(|| key.1.cmp(&champion_key.1))
                                == Ordering::Greater
                        }
                    }
                }
            };
            if better {
                best = Some((cell, *key));
            }
        }
        best.map(|(cell, _)| (cell.points[cell.argmax as usize], cell.max_depth))
    }

    /// The deepest sample point and its depth, or `None` if no cell has been
    /// materialized yet.  Coordinates are in the dual (scaled) system.
    pub fn best(&mut self) -> Option<(Point<D>, f64)> {
        while let Some(top) = self.heap.peek() {
            let Some(cell) = self.cells.get(&top.key) else {
                self.heap.pop();
                continue;
            };
            if (cell.max_depth - top.value).abs() > 1e-9 {
                // Stale entry: the cell's maximum has changed since it was pushed.
                self.heap.pop();
                continue;
            }
            let point = cell.points[cell.argmax as usize];
            return Some((point, cell.max_depth));
        }
        // Heap exhausted (e.g. every insertion was later removed): fall back to
        // a scan so the structure stays usable.
        let mut best: Option<(Point<D>, f64)> = None;
        for cell in self.cells.values() {
            if best.as_ref().is_none_or(|(_, v)| cell.max_depth > *v) {
                best = Some((cell.points[cell.argmax as usize], cell.max_depth));
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrs_geom::Point2;

    fn config() -> SamplingConfig {
        SamplingConfig::practical(0.25).with_seed(42)
    }

    #[test]
    fn empty_structure_has_no_best() {
        let mut set = SampleSet::<2>::new(config(), 16);
        assert!(set.best().is_none());
        assert_eq!(set.cell_count(), 0);
    }

    #[test]
    fn single_ball_depth_is_its_weight() {
        let mut set = SampleSet::<2>::new(config(), 16);
        set.insert_ball(&Ball::unit(Point2::xy(0.0, 0.0)), 3.5);
        let (p, v) = set.best().unwrap();
        assert_eq!(v, 3.5);
        // The best sample must genuinely lie inside the ball.
        assert!(Ball::unit(Point2::xy(0.0, 0.0)).contains(&p));
        assert!(set.total_samples() > 0);
    }

    #[test]
    fn overlapping_balls_accumulate_weight() {
        let mut set = SampleSet::<2>::new(config(), 16);
        let a = Ball::unit(Point2::xy(0.0, 0.0));
        let b = Ball::unit(Point2::xy(0.2, 0.0));
        let c = Ball::unit(Point2::xy(10.0, 0.0));
        set.insert_ball(&a, 1.0);
        set.insert_ball(&b, 2.0);
        set.insert_ball(&c, 10.0);
        let (_, v) = set.best().unwrap();
        // The isolated heavy ball dominates.
        assert_eq!(v, 10.0);
        set.remove_ball(&c, 10.0);
        let (p, v) = set.best().unwrap();
        assert_eq!(v, 3.0);
        assert!(a.contains(&p) && b.contains(&p));
    }

    #[test]
    fn deletion_restores_previous_best() {
        let mut set = SampleSet::<2>::new(config(), 16);
        let a = Ball::unit(Point2::xy(0.0, 0.0));
        set.insert_ball(&a, 1.0);
        let b = Ball::unit(Point2::xy(0.1, 0.1));
        set.insert_ball(&b, 1.0);
        assert_eq!(set.best().unwrap().1, 2.0);
        set.remove_ball(&b, 1.0);
        assert_eq!(set.best().unwrap().1, 1.0);
        set.remove_ball(&a, 1.0);
        assert_eq!(set.best().unwrap().1, 0.0);
    }

    #[test]
    fn colored_insertions_count_each_color_once() {
        let mut set = SampleSet::<2>::new(config(), 16);
        let here = Point2::xy(0.0, 0.0);
        // Two balls of color 0 and one of color 1, all covering the origin
        // area; inserted grouped by color.
        set.insert_colored_ball(&Ball::unit(here), 0);
        set.insert_colored_ball(&Ball::unit(Point2::xy(0.05, 0.0)), 0);
        set.insert_colored_ball(&Ball::unit(Point2::xy(0.0, 0.05)), 1);
        let (_, v) = set.best().unwrap();
        assert_eq!(v, 2.0, "duplicate color must not be double counted");
    }

    #[test]
    fn best_is_a_true_depth_lower_bound() {
        // Whatever sample the structure reports, its reported depth must equal
        // the true weighted depth of that point with respect to the inserted
        // balls (the structure never over-reports).
        let mut set = SampleSet::<2>::new(config(), 32);
        let balls: Vec<Ball<2>> = (0..20)
            .map(|i| Ball::unit(Point2::xy((i % 5) as f64 * 0.3, (i / 5) as f64 * 0.3)))
            .collect();
        for b in &balls {
            set.insert_ball(b, 1.0);
        }
        let (p, v) = set.best().unwrap();
        let true_depth = balls.iter().filter(|b| b.contains(&p)).count() as f64;
        assert_eq!(v, true_depth);
    }

    #[test]
    fn peek_best_matches_best_without_mutation() {
        let mut set = SampleSet::<2>::new(config(), 32);
        assert!(set.peek_best().is_none());
        for i in 0..20 {
            let c = Point2::xy((i % 5) as f64 * 0.3, (i / 5) as f64 * 0.3);
            set.insert_ball(&Ball::unit(c), 1.0 + (i % 3) as f64);
        }
        let peeked = set.peek_best().expect("non-empty");
        let heaped = set.best().expect("non-empty");
        assert_eq!(peeked.0, heaped.0, "read-only query must select the same sample");
        assert_eq!(peeked.1, heaped.1);
        // Peeking again after the heap-based query still agrees.
        assert_eq!(set.peek_best(), Some(heaped));
    }

    #[test]
    fn works_in_three_dimensions() {
        let mut set = SampleSet::<3>::new(SamplingConfig::practical(0.35).with_seed(7), 8);
        let a = Ball::unit(Point::new([0.0, 0.0, 0.0]));
        let b = Ball::unit(Point::new([0.3, 0.0, 0.0]));
        set.insert_ball(&a, 1.0);
        set.insert_ball(&b, 1.0);
        let (p, v) = set.best().unwrap();
        assert_eq!(v, 2.0);
        assert!(a.contains(&p) && b.contains(&p));
    }
}
