//! Static MaxRS with a `d`-ball via point sampling (Theorem 1.2).
//!
//! A randomized `(1/2 − ε)`-approximation running in `O(ε^{-2d-2} n log n)`
//! time: build the sampling structure once, insert every dual unit ball, and
//! report the deepest sample.  Unlike the `(1 − ε)` schemes based on sampling
//! *input objects*, the running time has no `log^{Θ(d)} n` factor.

use crate::config::SamplingConfig;
use crate::input::{Placement, WeightedBallInstance};
use crate::technique1::sample_set::SampleSet;

/// Statistics reported alongside the placement, useful for the experiments.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SamplingStats {
    /// Number of shifted grids used.
    pub grids: usize,
    /// Number of non-empty cells materialized.
    pub cells: usize,
    /// Total number of sample points maintained.
    pub samples: usize,
    /// Sample points per cell.
    pub samples_per_cell: usize,
}

/// Computes a `(1/2 − ε)`-approximate placement of a ball of the instance's
/// radius (Theorem 1.2).
///
/// The returned value is the *exact* covered weight of the returned center, so
/// it is always a valid lower bound on `opt`; the theorem guarantees it is at
/// least `(1/2 − ε)·opt` with high probability.
pub fn approx_static_ball<const D: usize>(
    instance: &WeightedBallInstance<D>,
    config: SamplingConfig,
) -> Placement<D> {
    approx_static_ball_with_stats(instance, config).0
}

/// Like [`approx_static_ball`] but also reports sampling statistics.
pub fn approx_static_ball_with_stats<const D: usize>(
    instance: &WeightedBallInstance<D>,
    config: SamplingConfig,
) -> (Placement<D>, SamplingStats) {
    let mut set = SampleSet::<D>::new(config, instance.len());
    for (ball, weight) in instance.dual_unit_balls() {
        set.insert_ball(&ball, weight);
    }
    let stats = SamplingStats {
        grids: set.grid_count(),
        cells: set.cell_count(),
        samples: set.total_samples(),
        samples_per_cell: set.samples_per_cell(),
    };
    let placement = match set.best() {
        Some((scaled_center, _sampled_depth)) => {
            let center = instance.unscale(scaled_center);
            // Report the true covered weight of the chosen center so the
            // result is a certified placement.  The sampled depth equals it
            // only up to floating-point boundary ties: samples sit exactly on
            // dual ball boundaries, and on clustered inputs several input
            // points can land within the scaled-vs-original rounding window
            // of the returned ball's boundary (the colored sampler recounts
            // for the same reason).
            Placement { center, value: instance.value_at(&center) }
        }
        None => Placement::empty(),
    };
    (placement, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::disk2d::max_disk_placement;
    use mrs_geom::{Point, Point2, WeightedPoint};
    use rand::prelude::*;

    fn cfg(eps: f64, seed: u64) -> SamplingConfig {
        SamplingConfig::practical(eps).with_seed(seed)
    }

    #[test]
    fn empty_instance() {
        let inst = WeightedBallInstance::<2>::new(vec![], 1.0);
        let res = approx_static_ball(&inst, cfg(0.25, 1));
        assert_eq!(res.value, 0.0);
    }

    #[test]
    fn single_cluster_is_found() {
        let pts: Vec<WeightedPoint<2>> = (0..20)
            .map(|i| WeightedPoint::unit(Point2::xy((i % 5) as f64 * 0.1, (i / 5) as f64 * 0.1)))
            .collect();
        let inst = WeightedBallInstance::new(pts, 1.0);
        let res = approx_static_ball(&inst, cfg(0.25, 2));
        // All 20 points fit in one unit disk; the sampling scheme should find
        // essentially all of them (and certainly at least half).
        assert!(res.value >= 10.0, "found {}", res.value);
        assert_eq!(inst.value_at(&res.center), res.value);
    }

    #[test]
    fn reported_value_matches_true_coverage_and_ratio_holds_2d() {
        let mut rng = StdRng::seed_from_u64(77);
        for round in 0..5 {
            let n = 120;
            let pts: Vec<WeightedPoint<2>> = (0..n)
                .map(|_| {
                    WeightedPoint::new(
                        Point2::xy(rng.gen_range(0.0..6.0), rng.gen_range(0.0..6.0)),
                        rng.gen_range(0.5..2.0),
                    )
                })
                .collect();
            let inst = WeightedBallInstance::new(pts.clone(), 1.0);
            let eps = 0.25;
            let res = approx_static_ball(&inst, cfg(eps, round));
            let exact = max_disk_placement(&pts, 1.0);
            // Value must be a genuine coverage of the reported center...
            assert!((inst.value_at(&res.center) - res.value).abs() < 1e-9);
            // ...and within the (1/2 − ε) guarantee of the true optimum.
            assert!(
                res.value >= (0.5 - eps) * exact.value - 1e-9,
                "round {round}: approx {} vs opt {}",
                res.value,
                exact.value
            );
            assert!(res.value <= exact.value + 1e-9);
        }
    }

    #[test]
    fn respects_non_unit_radius() {
        // Two clusters: a tight pair reachable with radius 0.5 and a wide pair
        // needing radius 3; with radius 0.5 only the tight pair is coverable.
        let pts = vec![
            WeightedPoint::unit(Point2::xy(0.0, 0.0)),
            WeightedPoint::unit(Point2::xy(0.4, 0.0)),
            WeightedPoint::unit(Point2::xy(10.0, 0.0)),
            WeightedPoint::unit(Point2::xy(14.0, 0.0)),
        ];
        let inst = WeightedBallInstance::new(pts, 0.5);
        let res = approx_static_ball(&inst, cfg(0.25, 3));
        assert_eq!(res.value, 2.0);
        assert!(res.center.dist(&Point2::xy(0.2, 0.0)) < 1.0);
    }

    #[test]
    fn works_in_four_dimensions() {
        // A clustered workload in R^4: twenty points in a tiny cluster, a few
        // scattered far away.
        let mut rng = StdRng::seed_from_u64(5);
        let mut pts: Vec<WeightedPoint<4>> = Vec::new();
        for _ in 0..20 {
            let p = Point::new([
                rng.gen_range(0.0..0.3),
                rng.gen_range(0.0..0.3),
                rng.gen_range(0.0..0.3),
                rng.gen_range(0.0..0.3),
            ]);
            pts.push(WeightedPoint::unit(p));
        }
        for i in 0..4 {
            let far = 10.0 + 5.0 * i as f64;
            pts.push(WeightedPoint::unit(Point::new([far, far, far, far])));
        }
        let inst = WeightedBallInstance::new(pts, 1.0);
        let mut config = SamplingConfig::new(0.4).with_seed(9);
        config.max_grids = Some(4);
        config.max_samples_per_cell = 16;
        let res = approx_static_ball(&inst, config);
        // The cluster of 20 is the optimum; the guarantee demands ≥ (1/2 − ε)·20 = 2.
        assert!(res.value >= 10.0, "found {}", res.value);
        assert_eq!(inst.value_at(&res.center), res.value);
    }

    #[test]
    fn stats_are_populated() {
        let pts = vec![WeightedPoint::unit(Point2::xy(0.0, 0.0))];
        let inst = WeightedBallInstance::new(pts, 1.0);
        let (_, stats) = approx_static_ball_with_stats(&inst, cfg(0.25, 4));
        assert!(stats.grids >= 1);
        assert!(stats.cells >= 1);
        assert_eq!(stats.samples, stats.cells * stats.samples_per_cell);
    }
}
