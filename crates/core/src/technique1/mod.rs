//! Technique 1 — sampling points in `R^d` (Section 3 of the paper).
//!
//! Instead of sampling the input objects (which leads to `log^{Θ(d)} n`
//! factors for balls), the technique samples a small set of *locations*:
//! `Θ(ε^{-2} log n)` points on the circumsphere of every non-empty cell of a
//! family of shifted grids (Lemma 2.1, `s = 2ε/√d`, `Δ = ε²`), maintains their
//! depth in the dual unit-ball arrangement, and reports the deepest sample.
//! The randomized game of Lemma 3.1 plus the spherical-cap bound of Lemma 3.2
//! show the deepest sample has depth at least `(1/2 − ε)·opt` with high
//! probability.
//!
//! * [`static_ball`] — Theorem 1.2, the static `(1/2 − ε)`-approximation;
//! * [`dynamic_ball`] — Theorem 1.1, insertions/deletions in amortized
//!   `O_ε(log n)` time via epochs;
//! * [`colored_ball`] — Theorem 1.5, the colored variant.

pub mod colored_ball;
pub mod dynamic_ball;
pub mod sample_set;
pub mod static_ball;

pub use colored_ball::approx_colored_ball;
pub use dynamic_ball::{DynamicBallMaxRS, PointId};
pub use sample_set::SampleSet;
pub use static_ball::{approx_static_ball, approx_static_ball_with_stats, SamplingStats};
