//! Dynamic MaxRS with a `d`-ball (Theorem 1.1).
//!
//! Points (dual unit balls) are inserted and deleted; the structure maintains
//! a `(1/2 − ε)`-approximate placement with amortized `O(ε^{-2d-2} log n)`
//! update time.  The algorithm proceeds in *epochs* (Section 3.1.1): at the
//! start of epoch `j` the sampling structure is rebuilt from scratch for the
//! current ball set `B_j`; the epoch ends when the number of live balls leaves
//! the window `[|B_j|/2, 2|B_j|]`, and the rebuild cost is charged to the at
//! least `|B_j|/2` updates that must have happened in between.

use mrs_geom::{Ball, Point};

use crate::config::SamplingConfig;
use crate::input::Placement;
use crate::technique1::sample_set::SampleSet;

/// Handle returned by [`DynamicBallMaxRS::insert`]; pass it to
/// [`DynamicBallMaxRS::remove`] to delete the point again.
pub type PointId = usize;

/// The dynamic `(1/2 − ε)`-approximate MaxRS structure of Theorem 1.1.
///
/// # Example
/// ```
/// use mrs_core::config::SamplingConfig;
/// use mrs_core::technique1::DynamicBallMaxRS;
/// use mrs_geom::Point2;
///
/// let mut tracker = DynamicBallMaxRS::<2>::new(1.0, SamplingConfig::practical(0.25));
/// let a = tracker.insert(Point2::xy(0.0, 0.0), 1.0);
/// let _b = tracker.insert(Point2::xy(0.3, 0.0), 1.0);
/// assert_eq!(tracker.best().unwrap().value, 2.0);
/// tracker.remove(a);
/// assert_eq!(tracker.best().unwrap().value, 1.0);
/// ```
///
#[derive(Clone, Debug)]
pub struct DynamicBallMaxRS<const D: usize> {
    config: SamplingConfig,
    radius: f64,
    /// Scaled (dual) centers and weights by id; `None` marks deleted slots.
    entries: Vec<Option<(Point<D>, f64)>>,
    free_ids: Vec<PointId>,
    live: usize,
    samples: SampleSet<D>,
    /// `|B_j|` at the start of the current epoch.
    epoch_base: usize,
    /// Number of epochs started so far (including the initial empty one).
    epochs: usize,
}

impl<const D: usize> DynamicBallMaxRS<D> {
    /// Creates an empty structure for a query ball of radius `radius`.
    ///
    /// # Panics
    /// Panics if `radius` is not strictly positive.
    pub fn new(radius: f64, config: SamplingConfig) -> Self {
        assert!(radius.is_finite() && radius > 0.0, "query radius must be positive");
        Self {
            config,
            radius,
            entries: Vec::new(),
            free_ids: Vec::new(),
            live: 0,
            samples: SampleSet::new(config, 2),
            epoch_base: 1,
            epochs: 1,
        }
    }

    /// Number of live points.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Returns `true` if no points are live.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Number of epochs started so far.
    pub fn epochs(&self) -> usize {
        self.epochs
    }

    /// Inserts a weighted point and returns its handle.
    ///
    /// # Panics
    /// Panics if the weight is negative or not finite.
    pub fn insert(&mut self, point: Point<D>, weight: f64) -> PointId {
        assert!(weight.is_finite() && weight >= 0.0, "weights must be finite and non-negative");
        let scaled = point.scale(1.0 / self.radius);
        let id = match self.free_ids.pop() {
            Some(id) => {
                self.entries[id] = Some((scaled, weight));
                id
            }
            None => {
                self.entries.push(Some((scaled, weight)));
                self.entries.len() - 1
            }
        };
        self.live += 1;
        self.samples.insert_ball(&Ball::unit(scaled), weight);
        self.maybe_start_new_epoch();
        id
    }

    /// Removes a previously inserted point.  Returns `false` if the handle was
    /// already removed.
    pub fn remove(&mut self, id: PointId) -> bool {
        let Some(slot) = self.entries.get_mut(id) else { return false };
        let Some((scaled, weight)) = slot.take() else { return false };
        self.free_ids.push(id);
        self.live -= 1;
        self.samples.remove_ball(&Ball::unit(scaled), weight);
        self.maybe_start_new_epoch();
        true
    }

    /// The current `(1/2 − ε)`-approximate placement, or `None` while empty.
    /// The reported value is the exact covered weight of the reported center.
    pub fn best(&mut self) -> Option<Placement<D>> {
        if self.live == 0 {
            return None;
        }
        self.samples.best().map(|(scaled_center, value)| Placement {
            center: scaled_center.scale(self.radius),
            value,
        })
    }

    /// The current `(1/2 − ε)`-approximate placement without mutating the
    /// structure, or `None` while empty — the concurrent-read query path of
    /// a server-resident tracker (shared behind a lock, peeked by many
    /// readers).  Ties are broken by the same `(depth, grid, cell)` total
    /// order [`Self::best`]'s heap uses (see
    /// [`SampleSet::peek_best`]), so both report the same sample.
    pub fn peek_best(&self) -> Option<Placement<D>> {
        if self.live == 0 {
            return None;
        }
        self.samples.peek_best().map(|(scaled_center, value)| Placement {
            center: scaled_center.scale(self.radius),
            value,
        })
    }

    /// Starts a new epoch (rebuilding the sampling structure) if the live
    /// count has left the `[base/2, 2·base]` window of the current epoch.
    fn maybe_start_new_epoch(&mut self) {
        let lower = self.epoch_base / 2;
        let upper = self.epoch_base * 2;
        if self.live >= lower.max(1) && self.live <= upper {
            return;
        }
        self.rebuild();
    }

    fn rebuild(&mut self) {
        self.epoch_base = self.live.max(1);
        self.epochs += 1;
        self.samples = SampleSet::new(self.config, self.epoch_base);
        for entry in self.entries.iter().flatten() {
            let (scaled, weight) = *entry;
            self.samples.insert_ball(&Ball::unit(scaled), weight);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::disk2d::max_disk_placement;
    use crate::input::WeightedBallInstance;
    use crate::technique1::static_ball::approx_static_ball;
    use mrs_geom::{Point2, WeightedPoint};
    use rand::prelude::*;

    fn cfg(seed: u64) -> SamplingConfig {
        SamplingConfig::practical(0.25).with_seed(seed)
    }

    #[test]
    fn starts_empty_and_handles_removal_of_unknown_ids() {
        let mut dyn_mrs = DynamicBallMaxRS::<2>::new(1.0, cfg(1));
        assert!(dyn_mrs.is_empty());
        assert!(dyn_mrs.best().is_none());
        assert!(!dyn_mrs.remove(17));
    }

    #[test]
    fn insert_then_remove_round_trip() {
        let mut dyn_mrs = DynamicBallMaxRS::<2>::new(1.0, cfg(2));
        let a = dyn_mrs.insert(Point2::xy(0.0, 0.0), 1.0);
        let b = dyn_mrs.insert(Point2::xy(0.2, 0.0), 2.0);
        assert_eq!(dyn_mrs.len(), 2);
        let best = dyn_mrs.best().unwrap();
        assert_eq!(best.value, 3.0);
        assert!(dyn_mrs.remove(b));
        assert!(!dyn_mrs.remove(b), "double removal must be rejected");
        assert_eq!(dyn_mrs.best().unwrap().value, 1.0);
        assert!(dyn_mrs.remove(a));
        assert!(dyn_mrs.best().is_none());
    }

    #[test]
    fn epochs_advance_as_the_set_grows_and_shrinks() {
        let mut dyn_mrs = DynamicBallMaxRS::<2>::new(1.0, cfg(3));
        let ids: Vec<_> =
            (0..64).map(|i| dyn_mrs.insert(Point2::xy(i as f64 * 0.01, 0.0), 1.0)).collect();
        let grown_epochs = dyn_mrs.epochs();
        assert!(grown_epochs > 1, "growing from 0 to 64 must trigger rebuilds");
        for id in &ids[..60] {
            dyn_mrs.remove(*id);
        }
        assert!(dyn_mrs.epochs() > grown_epochs, "shrinking by 94% must trigger rebuilds");
        assert_eq!(dyn_mrs.len(), 4);
        assert_eq!(dyn_mrs.best().unwrap().value, 4.0);
    }

    #[test]
    fn tracks_a_moving_hotspot() {
        // Insert a cluster at A, then delete it while inserting a cluster at B:
        // the reported placement must follow the live hotspot.
        let mut dyn_mrs = DynamicBallMaxRS::<2>::new(1.0, cfg(4));
        let a_ids: Vec<_> =
            (0..20).map(|i| dyn_mrs.insert(Point2::xy(0.0 + 0.01 * i as f64, 0.0), 1.0)).collect();
        let best = dyn_mrs.best().unwrap();
        assert!(best.center.dist(&Point2::xy(0.1, 0.0)) < 1.5);
        assert_eq!(best.value, 20.0);

        for (i, id) in a_ids.iter().enumerate() {
            dyn_mrs.remove(*id);
            dyn_mrs.insert(Point2::xy(50.0 + 0.01 * i as f64, 0.0), 1.0);
        }
        let best = dyn_mrs.best().unwrap();
        assert_eq!(best.value, 20.0);
        assert!(best.center.dist(&Point2::xy(50.1, 0.0)) < 1.5, "hotspot must move to B");
    }

    #[test]
    fn agrees_with_static_rebuild_after_random_update_sequence() {
        let mut rng = StdRng::seed_from_u64(55);
        let mut dyn_mrs = DynamicBallMaxRS::<2>::new(1.0, cfg(5));
        let mut live: Vec<(PointId, WeightedPoint<2>)> = Vec::new();
        for _ in 0..300 {
            if live.is_empty() || rng.gen_bool(0.6) {
                let wp = WeightedPoint::new(
                    Point2::xy(rng.gen_range(0.0..5.0), rng.gen_range(0.0..5.0)),
                    rng.gen_range(0.5..2.0),
                );
                let id = dyn_mrs.insert(wp.point, wp.weight);
                live.push((id, wp));
            } else {
                let k = rng.gen_range(0..live.len());
                let (id, _) = live.swap_remove(k);
                assert!(dyn_mrs.remove(id));
            }
        }
        assert_eq!(dyn_mrs.len(), live.len());
        let dyn_best = dyn_mrs.best().unwrap();
        // The dynamic answer is a genuine placement...
        let points: Vec<WeightedPoint<2>> = live.iter().map(|(_, wp)| *wp).collect();
        let inst = WeightedBallInstance::new(points.clone(), 1.0);
        assert!((inst.value_at(&dyn_best.center) - dyn_best.value).abs() < 1e-9);
        // ...within the guarantee of the true optimum...
        let exact = max_disk_placement(&points, 1.0);
        assert!(
            dyn_best.value >= (0.5 - 0.25) * exact.value - 1e-9,
            "dynamic {} vs exact {}",
            dyn_best.value,
            exact.value
        );
        // ...and comparable to what a static run of the same technique finds.
        let static_best = approx_static_ball(&inst, cfg(5));
        assert!(dyn_best.value >= (0.5 - 0.25) * static_best.value - 1e-9);
    }

    #[test]
    fn peek_best_matches_best_through_updates() {
        let mut dyn_mrs = DynamicBallMaxRS::<2>::new(1.0, cfg(8));
        assert!(dyn_mrs.peek_best().is_none());
        let mut ids = Vec::new();
        for i in 0..40 {
            ids.push(dyn_mrs.insert(Point2::xy(0.07 * i as f64, 0.0), 1.0 + (i % 4) as f64));
            if i % 3 == 0 && ids.len() > 1 {
                let victim = ids.remove(ids.len() / 2);
                assert!(dyn_mrs.remove(victim));
            }
            let peeked = dyn_mrs.peek_best().expect("non-empty");
            let heaped = dyn_mrs.best().expect("non-empty");
            assert_eq!(peeked.center, heaped.center, "step {i}: same tie-breaking");
            assert_eq!(peeked.value, heaped.value, "step {i}");
            // Peeking must not have mutated anything: peek again agrees.
            assert_eq!(dyn_mrs.peek_best().unwrap().center, heaped.center);
        }
    }

    #[test]
    fn works_in_three_dimensions() {
        let mut config = SamplingConfig::practical(0.35).with_seed(6);
        config.max_grids = Some(4);
        config.max_samples_per_cell = 16;
        let mut dyn_mrs = DynamicBallMaxRS::<3>::new(2.0, config);
        for i in 0..10 {
            dyn_mrs.insert(Point::new([0.1 * i as f64, 0.0, 0.0]), 1.0);
        }
        let far = dyn_mrs.insert(Point::new([100.0, 100.0, 100.0]), 100.0);
        assert_eq!(dyn_mrs.best().unwrap().value, 100.0);
        dyn_mrs.remove(far);
        let best = dyn_mrs.best().unwrap();
        assert_eq!(best.value, 10.0);
        assert!(best.center.dist(&Point::new([0.45, 0.0, 0.0])) < 2.5);
    }
}
