//! Prior-work approximation baselines the paper compares its techniques
//! against.
//!
//! Section 1.5 contrasts Technique 1 with the classical `(1 − ε)` recipe of
//! \[AHR+02\]/\[AH08\]/\[THCC13\]: sample the *input objects*, run an exact
//! algorithm on the sample, and argue by concentration that deep points stay
//! deep.  For a disk in the plane that recipe is perfectly practical (the
//! exact algorithm is the `O(n² log n)` sweep), and having it implemented
//! makes the trade-off the paper describes measurable: input sampling gets a
//! better approximation factor, but its running time inherits the exact
//! algorithm's dependence on the sample size, which is what blows up to
//! `log^{Θ(d)} n` in higher dimensions.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use mrs_geom::WeightedPoint;

use crate::config::SamplingConfig;
use crate::exact::disk2d::max_disk_placement;
use crate::input::{Placement, WeightedBallInstance};
use crate::technique1::static_ball::approx_static_ball;

/// Configuration for the input-sampling baseline.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct InputSamplingConfig {
    /// Approximation parameter `ε ∈ (0, 1)`.
    pub eps: f64,
    /// Seed for the point sample.
    pub seed: u64,
    /// Constant `c` in the per-point keep probability `c·log n / (ε² opt')`.
    pub c: f64,
    /// Configuration of the Technique 1 estimator used to guess `opt`.
    pub estimator: SamplingConfig,
}

impl InputSamplingConfig {
    /// A default configuration for the given `ε`.
    ///
    /// # Panics
    /// Panics unless `0 < ε < 1`.
    pub fn new(eps: f64) -> Self {
        assert!(eps > 0.0 && eps < 1.0, "ε must lie in (0, 1), got {eps}");
        Self { eps, seed: 0xABCD, c: 2.0, estimator: SamplingConfig::practical(0.25) }
    }

    /// Overrides the random seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self.estimator = self.estimator.with_seed(seed ^ 0x51AB);
        self
    }
}

/// The classical `(1 − ε)`-style baseline for disk MaxRS in the plane:
/// estimate `opt` with Technique 1, keep each (unit-weight share of a) point
/// with probability `min(1, c·log n / (ε² opt'))`, run the exact planar sweep
/// on the sample, and report the chosen center with its *true* covered weight.
///
/// For small instances (or small `opt`) the sample is the whole input and the
/// answer is exact.
pub fn approx_disk_by_input_sampling(
    instance: &WeightedBallInstance<2>,
    config: InputSamplingConfig,
) -> Placement<2> {
    let n = instance.len();
    if n == 0 {
        return Placement::empty();
    }
    // Step 1: constant-factor estimate of opt (Theorem 1.2 with ε = 1/4).
    let estimator_cfg = SamplingConfig { eps: 0.25, ..config.estimator };
    let estimate = approx_static_ball(instance, estimator_cfg).value.max(1e-9);

    // Step 2: keep probability.  `estimate` is at least opt/4 w.h.p., so the
    // expected sampled weight near the optimum is Θ(c·log n / ε²).
    let n_f = (n.max(2)) as f64;
    let keep = (config.c * n_f.ln() / (config.eps * config.eps * estimate)).min(1.0);

    let mut rng = StdRng::seed_from_u64(config.seed);
    let sample: Vec<WeightedPoint<2>> =
        instance.points.iter().copied().filter(|_| rng.gen_bool(keep)).collect();
    if sample.is_empty() {
        // Degenerate draw: fall back to the estimator's placement.
        let center = approx_static_ball(instance, estimator_cfg).center;
        return Placement { center, value: instance.value_at(&center) };
    }

    // Step 3: exact sweep on the sample, then certify the chosen center
    // against the full input.
    let on_sample = max_disk_placement(&sample, instance.radius);
    Placement { center: on_sample.center, value: instance.value_at(&on_sample.center) }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrs_geom::Point2;

    #[test]
    fn empty_instance() {
        let inst = WeightedBallInstance::<2>::new(vec![], 1.0);
        assert_eq!(approx_disk_by_input_sampling(&inst, InputSamplingConfig::new(0.2)).value, 0.0);
    }

    #[test]
    fn small_instances_are_answered_exactly() {
        // With few points the keep probability saturates at 1, so the answer
        // matches the exact sweep.
        let points = vec![
            WeightedPoint::unit(Point2::xy(0.0, 0.0)),
            WeightedPoint::unit(Point2::xy(0.5, 0.0)),
            WeightedPoint::unit(Point2::xy(4.0, 0.0)),
        ];
        let inst = WeightedBallInstance::new(points.clone(), 1.0);
        let res = approx_disk_by_input_sampling(&inst, InputSamplingConfig::new(0.3).with_seed(1));
        let exact = max_disk_placement(&points, 1.0);
        assert_eq!(res.value, exact.value);
    }

    #[test]
    fn stays_close_to_optimal_on_dense_instances() {
        // A dense hotspot plus background noise; the (1 − ε) recipe should land
        // well above the (1/2 − ε) floor of Technique 1.
        let mut rng = StdRng::seed_from_u64(8);
        let mut points = Vec::new();
        for _ in 0..400 {
            points.push(WeightedPoint::unit(Point2::xy(
                rng.gen_range(0.0..0.8),
                rng.gen_range(0.0..0.8),
            )));
        }
        for _ in 0..400 {
            points.push(WeightedPoint::unit(Point2::xy(
                rng.gen_range(5.0..25.0),
                rng.gen_range(5.0..25.0),
            )));
        }
        let inst = WeightedBallInstance::new(points.clone(), 1.0);
        let exact = max_disk_placement(&points, 1.0);
        let res = approx_disk_by_input_sampling(&inst, InputSamplingConfig::new(0.2).with_seed(2));
        assert!(
            res.value >= 0.8 * exact.value,
            "input sampling found {} vs exact {}",
            res.value,
            exact.value
        );
        // And the reported value is certified against the full input.
        assert!((inst.value_at(&res.center) - res.value).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "ε must lie in (0, 1)")]
    fn rejects_bad_epsilon() {
        InputSamplingConfig::new(1.5);
    }
}
