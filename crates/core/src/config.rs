//! Tuning knobs for the randomized algorithms.
//!
//! The paper's sample sizes (`t = Θ(ε^{-2} log n)` points per non-empty cell)
//! and grid-family sizes (`(2/ε)^d` shifted grids, Lemma 2.1) hide constants
//! that matter enormously in practice.  `SamplingConfig` exposes them: the
//! defaults follow the theory, and the benchmark harness uses documented caps
//! (see DESIGN.md, "Substitutions") whose effect on the measured approximation
//! ratio EXPERIMENTS.md reports.

/// Configuration of the point-sampling technique (Section 3).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SamplingConfig {
    /// Approximation parameter `ε ∈ (0, 1/2)`; the guarantee is `(1/2 − ε)`.
    pub eps: f64,
    /// Seed for all randomness, so runs are reproducible.
    pub seed: u64,
    /// The constant `c` in `t = c · ε^{-2} · ln n` samples per non-empty cell.
    pub sample_constant: f64,
    /// Lower clamp on the per-cell sample count.
    pub min_samples_per_cell: usize,
    /// Upper clamp on the per-cell sample count (guards against runaway memory
    /// when `ε` is very small).
    pub max_samples_per_cell: usize,
    /// Maximum number of shifted grids to keep from the Lemma 2.1 family.
    /// `None` keeps the full family (the theoretical guarantee); the
    /// benchmarks cap it for speed.
    pub max_grids: Option<usize>,
}

impl SamplingConfig {
    /// A theory-faithful configuration for the given `ε`.
    ///
    /// # Panics
    /// Panics unless `0 < ε < 1/2`.
    pub fn new(eps: f64) -> Self {
        assert!(eps > 0.0 && eps < 0.5, "ε must lie in (0, 1/2), got {eps}");
        Self {
            eps,
            seed: 0xC0FFEE,
            sample_constant: 1.0,
            min_samples_per_cell: 4,
            max_samples_per_cell: 4096,
            max_grids: None,
        }
    }

    /// A configuration with practical caps, suitable for benchmarks and large
    /// inputs: at most `max_grids` shifted grids and at most 64 samples per
    /// cell.  The worst-case guarantee of Lemma 2.1 is traded for speed; the
    /// measured ratios in EXPERIMENTS.md quantify the effect.
    pub fn practical(eps: f64) -> Self {
        let mut cfg = Self::new(eps);
        cfg.max_grids = Some(8);
        cfg.max_samples_per_cell = 64;
        cfg
    }

    /// Overrides the random seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the grid-family cap.
    pub fn with_max_grids(mut self, max_grids: Option<usize>) -> Self {
        self.max_grids = max_grids;
        self
    }

    /// Number of sample points per non-empty cell for an instance of size `n`
    /// (`t = c · ε^{-2} · ln n`, clamped to the configured bounds).
    pub fn samples_per_cell(&self, n: usize) -> usize {
        let n = n.max(2) as f64;
        let t = self.sample_constant * n.ln() / (self.eps * self.eps);
        (t.ceil() as usize).clamp(self.min_samples_per_cell, self.max_samples_per_cell)
    }

    /// Grid cell side `s = 2ε/√d` used by Technique 1.
    pub fn grid_side(&self, d: usize) -> f64 {
        2.0 * self.eps / (d as f64).sqrt()
    }

    /// Grid nearness parameter `Δ = ε²` used by Technique 1.
    pub fn grid_delta(&self) -> f64 {
        self.eps * self.eps
    }
}

impl Default for SamplingConfig {
    fn default() -> Self {
        Self::new(0.25)
    }
}

/// Configuration of the color-sampling technique (Section 4.4).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ColorSamplingConfig {
    /// Approximation parameter `ε ∈ (0, 1)`; the guarantee is `(1 − ε)`.
    pub eps: f64,
    /// Seed for all randomness.
    pub seed: u64,
    /// The constant `c₁` in the threshold `c₁ ε^{-2} log n` and the sampling
    /// probability `λ = c₁ log n / (ε² opt')`.
    pub c1: f64,
    /// Configuration of the Technique 1 estimator used to obtain `opt'`
    /// (the paper fixes its ε to 1/4).
    pub estimator: SamplingConfig,
}

impl ColorSamplingConfig {
    /// A default configuration for the given `ε`.
    ///
    /// # Panics
    /// Panics unless `0 < ε < 1`.
    pub fn new(eps: f64) -> Self {
        assert!(eps > 0.0 && eps < 1.0, "ε must lie in (0, 1), got {eps}");
        Self { eps, seed: 0xBEEF, c1: 2.0, estimator: SamplingConfig::practical(0.25) }
    }

    /// Overrides the random seed (also reseeds the estimator).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self.estimator = self.estimator.with_seed(seed ^ 0x9E3779B97F4A7C15);
        self
    }

    /// The exact/approximate switch-over threshold `c₁ ε^{-2} ln n`.
    pub fn threshold(&self, n: usize) -> f64 {
        let n = n.max(2) as f64;
        self.c1 * n.ln() / (self.eps * self.eps)
    }

    /// The per-color sampling probability `λ = c₁ ln n / (ε² opt')`, clamped
    /// to `(0, 1]`.
    pub fn sampling_probability(&self, n: usize, opt_estimate: f64) -> f64 {
        if opt_estimate <= 0.0 {
            return 1.0;
        }
        (self.threshold(n) / opt_estimate).min(1.0)
    }
}

impl Default for ColorSamplingConfig {
    fn default() -> Self {
        Self::new(0.25)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_count_grows_with_n_and_shrinks_with_eps() {
        let tight = SamplingConfig::new(0.1);
        let loose = SamplingConfig::new(0.4);
        assert!(tight.samples_per_cell(1000) > loose.samples_per_cell(1000));
        assert!(loose.samples_per_cell(100_000) >= loose.samples_per_cell(100));
    }

    #[test]
    fn sample_count_respects_clamps() {
        let mut cfg = SamplingConfig::new(0.01);
        cfg.max_samples_per_cell = 100;
        assert_eq!(cfg.samples_per_cell(1_000_000), 100);
        let mut cfg = SamplingConfig::new(0.45);
        cfg.min_samples_per_cell = 10;
        assert_eq!(cfg.samples_per_cell(2), 10);
    }

    #[test]
    fn grid_parameters_follow_the_paper() {
        let cfg = SamplingConfig::new(0.2);
        assert!((cfg.grid_side(4) - 2.0 * 0.2 / 2.0).abs() < 1e-12);
        assert!((cfg.grid_delta() - 0.04).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "ε must lie in (0, 1/2)")]
    fn rejects_out_of_range_eps() {
        SamplingConfig::new(0.75);
    }

    #[test]
    fn color_sampling_probability_clamped() {
        let cfg = ColorSamplingConfig::new(0.5);
        assert_eq!(cfg.sampling_probability(100, 0.0), 1.0);
        assert!(cfg.sampling_probability(100, 1e9) < 1e-4);
        assert!(cfg.sampling_probability(100, 1.0) <= 1.0);
    }

    #[test]
    fn practical_config_caps_grids() {
        let cfg = SamplingConfig::practical(0.3);
        assert_eq!(cfg.max_grids, Some(8));
        assert!(cfg.max_samples_per_cell <= 64);
    }
}
