//! # mrs-core — maximum range sum algorithms
//!
//! This crate implements the algorithmic contributions of *"A Bouquet of
//! Results on Maximum Range Sum: General Techniques and Hardness Reductions"*
//! (PODS 2025) together with the exact baselines they are measured against:
//!
//! | Paper result | API |
//! |---|---|
//! | Theorem 1.1 — dynamic `(1/2 − ε)`-approx MaxRS with a `d`-ball | [`technique1::DynamicBallMaxRS`] |
//! | Theorem 1.2 — static `(1/2 − ε)`-approx MaxRS with a `d`-ball | [`technique1::approx_static_ball`] |
//! | Theorem 1.5 — colored `(1/2 − ε)`-approx MaxRS with a `d`-ball | [`technique1::approx_colored_ball`] |
//! | Lemma 4.2 — exact colored disk MaxRS via union boundaries | [`technique2::exact_colored_disk_by_union`] |
//! | Theorem 4.6 — output-sensitive exact colored disk MaxRS | [`technique2::output_sensitive_colored_disk`] |
//! | Theorem 1.6 — `(1 − ε)`-approx colored disk MaxRS by color sampling | [`technique2::approx_colored_disk_sampling`] |
//! | Exact baselines (\[IA83\], \[NB95\], \[CL86\], \[ZGH+22\]-style colored rectangles) | [`exact`] |
//! | Prior-work input-sampling (1 − ε) baseline (\[AHR+02\]/\[AH08\]) | [`baselines`] |
//!
//! The batched problems and the hardness-reduction chains of Sections 5–6 live
//! in the sibling crates `mrs-batched` and `mrs-hardness`.
//!
//! All of the above are also dispatchable through the **solver engine**
//! ([`engine`]): one instance model ([`engine::WeightedInstance`] /
//! [`engine::ColoredInstance`]), object-safe [`engine::WeightedSolver`] /
//! [`engine::ColoredSolver`] traits, and a capability [`engine::registry`]
//! so callers select exact-vs-approximate per workload and downstream crates
//! plug in their own solvers.
//!
//! ## Quick start
//!
//! ```
//! use mrs_core::config::SamplingConfig;
//! use mrs_core::input::WeightedBallInstance;
//! use mrs_core::technique1::approx_static_ball;
//! use mrs_geom::{Point2, WeightedPoint};
//!
//! let points = vec![
//!     WeightedPoint::unit(Point2::xy(0.0, 0.0)),
//!     WeightedPoint::unit(Point2::xy(0.5, 0.0)),
//!     WeightedPoint::unit(Point2::xy(9.0, 9.0)),
//! ];
//! let instance = WeightedBallInstance::new(points, 1.0);
//! let placement = approx_static_ball(&instance, SamplingConfig::practical(0.25));
//! assert!(placement.value >= 2.0);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod baselines;
pub mod config;
pub mod engine;
pub mod exact;
pub mod input;
pub mod technique1;
pub mod technique2;

pub use config::{ColorSamplingConfig, SamplingConfig};
pub use engine::{
    registry, ColoredInstance, ColoredSolver, EngineConfig, EngineError, Guarantee, RangeShape,
    Registry, SolveStats, SolverDescriptor, SolverReport, WeightedInstance, WeightedSolver,
};
pub use input::{ColoredBallInstance, ColoredPlacement, Placement, WeightedBallInstance};
pub use technique1::{approx_colored_ball, approx_static_ball, DynamicBallMaxRS};
pub use technique2::{approx_colored_disk_sampling, output_sensitive_colored_disk};
