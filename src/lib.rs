//! # maxrs — maximum range sum algorithms, batched problems and hardness reductions
//!
//! A Rust implementation of *"A Bouquet of Results on Maximum Range Sum:
//! General Techniques and Hardness Reductions"* (PODS 2025).  This facade
//! crate re-exports the whole workspace behind one dependency:
//!
//! * [`geom`] — geometric substrate (points, balls, boxes, shifted grids,
//!   sphere sampling, disk-union boundaries, sweep structures);
//! * [`core`] — the MaxRS algorithms themselves: exact baselines, the
//!   point-sampling technique (static / dynamic / colored, Theorems 1.1, 1.2,
//!   1.5) and the output-sensitive + color-sampling technique (Theorems 4.6,
//!   1.6);
//! * [`batched`] — batched 1-D MaxRS and the batched smallest-k-enclosing
//!   interval problem (the upper bounds matched by Theorems 1.3 and 1.4);
//! * [`hardness`] — the (min,+)-convolution family and the executable
//!   reduction chains of Sections 5 and 6.
//!
//! The [`prelude`] pulls in the types and entry points most applications need.
//!
//! ```
//! use maxrs::prelude::*;
//!
//! // Where should a store with a 1 km catchment radius go?
//! let customers = vec![
//!     WeightedPoint::unit(Point2::xy(0.1, 0.2)),
//!     WeightedPoint::unit(Point2::xy(0.4, 0.1)),
//!     WeightedPoint::unit(Point2::xy(8.0, 8.0)),
//! ];
//! let instance = WeightedBallInstance::new(customers, 1.0);
//! let placement = approx_static_ball(&instance, SamplingConfig::practical(0.25));
//! assert_eq!(placement.value, 2.0);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cli;

pub use mrs_batched as batched;
pub use mrs_core as core;
pub use mrs_geom as geom;
pub use mrs_hardness as hardness;

/// The most commonly used types and functions from across the workspace.
pub mod prelude {
    pub use mrs_batched::{BatchedMaxRS1D, BatchedSei, IntervalPlacement, LinePoint};
    pub use mrs_core::config::{ColorSamplingConfig, SamplingConfig};
    pub use mrs_core::exact::{max_disk_placement, max_interval_placement, max_rect_placement};
    pub use mrs_core::input::{
        ColoredBallInstance, ColoredPlacement, Placement, WeightedBallInstance,
    };
    pub use mrs_core::technique1::{approx_colored_ball, approx_static_ball, DynamicBallMaxRS};
    pub use mrs_core::technique2::{
        approx_colored_disk_sampling, exact_colored_disk_by_union, output_sensitive_colored_disk,
    };
    pub use mrs_geom::{Aabb, Ball, ColoredSite, Interval, Point, Point2, Rect, WeightedPoint};
    pub use mrs_hardness::{min_plus_convolution, min_plus_via_batched_maxrs, min_plus_via_bsei};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_re_exports_are_usable_together() {
        let sites = vec![
            ColoredSite::new(Point2::xy(0.0, 0.0), 0),
            ColoredSite::new(Point2::xy(0.5, 0.0), 1),
        ];
        let exact = output_sensitive_colored_disk(&sites, 1.0);
        assert_eq!(exact.distinct, 2);

        let conv = min_plus_convolution(&[1.0, 2.0], &[3.0, 0.0]);
        assert_eq!(conv, vec![4.0, 1.0]);
    }
}
