//! # maxrs — maximum range sum algorithms, batched problems and hardness reductions
//!
//! A Rust implementation of *"A Bouquet of Results on Maximum Range Sum:
//! General Techniques and Hardness Reductions"* (PODS 2025).  This facade
//! crate re-exports the whole workspace behind one dependency:
//!
//! * [`geom`] — geometric substrate (points, balls, boxes, shifted grids,
//!   sphere sampling, disk-union boundaries, sweep structures);
//! * [`core`] — the MaxRS algorithms themselves: exact baselines, the
//!   point-sampling technique (static / dynamic / colored, Theorems 1.1, 1.2,
//!   1.5) and the output-sensitive + color-sampling technique (Theorems 4.6,
//!   1.6);
//! * [`batched`] — batched 1-D MaxRS and the batched smallest-k-enclosing
//!   interval problem (the upper bounds matched by Theorems 1.3 and 1.4);
//! * [`hardness`] — the (min,+)-convolution family and the executable
//!   reduction chains of Sections 5 and 6;
//! * [`server`] — the long-lived query service behind `maxrs serve`: a
//!   dataset catalog with resident shared indexes, a sharded answer cache,
//!   and a std-only HTTP/1.1 runtime.
//!
//! ## The solver engine
//!
//! Every algorithm is also dispatchable through the **engine**
//! ([`engine`], re-exported from `mrs_core` and wired up with the batched
//! solvers): one instance model ([`engine::WeightedInstance`] /
//! [`engine::ColoredInstance`]), two object-safe solver traits
//! ([`engine::WeightedSolver`] / [`engine::ColoredSolver`]), and a
//! [`engine::registry`] that enumerates solvers by name and capability so a
//! caller can pick exact-vs-approximate per workload.  Every solve returns a
//! [`engine::SolverReport`] carrying the placement, its certified
//! value/distinct-count, the approximation [`engine::Guarantee`], and
//! timing/sample statistics.
//!
//! The [`prelude`] pulls in the types and entry points most applications need.
//!
//! ```
//! use maxrs::prelude::*;
//!
//! // Where should a store with a 1 km catchment radius go?
//! let customers = vec![
//!     WeightedPoint::unit(Point2::xy(0.1, 0.2)),
//!     WeightedPoint::unit(Point2::xy(0.4, 0.1)),
//!     WeightedPoint::unit(Point2::xy(8.0, 8.0)),
//! ];
//! let instance = WeightedInstance::ball(customers, 1.0);
//! let solver = engine::registry().weighted::<2>("exact-disk-2d").unwrap();
//! let report = solver.solve(&instance).unwrap();
//! assert_eq!(report.placement.value, 2.0);
//! assert!(report.guarantee.is_exact());
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cli;

pub use mrs_batched as batched;
pub use mrs_core as core;
pub use mrs_geom as geom;
pub use mrs_hardness as hardness;
pub use mrs_server as server;

/// The solver engine, fully wired: the `mrs_core` dispatch layer plus every
/// solver the other workspace crates contribute.
pub mod engine {
    pub use mrs_core::engine::*;

    pub use mrs_batched::engine::BatchedIntervalSolver;

    /// The full workspace registry: the `mrs_core` built-ins plus the
    /// solvers of `mrs_batched` (shadows the core-only
    /// [`mrs_core::engine::registry`]).
    pub fn registry() -> Registry {
        registry_with(EngineConfig::default())
    }

    /// Like [`registry`], with an explicit engine configuration.  The
    /// wiring lives in [`mrs_batched::engine::full_registry`] so the CLI
    /// and the query service can never drift apart on which solvers exist.
    pub fn registry_with(config: EngineConfig) -> Registry {
        mrs_batched::engine::full_registry(config)
    }
}

/// The most commonly used types and functions from across the workspace.
pub mod prelude {
    pub use crate::engine;
    pub use mrs_batched::{BatchedMaxRS1D, BatchedSei, IntervalPlacement, LinePoint};
    pub use mrs_core::config::{ColorSamplingConfig, SamplingConfig};
    pub use mrs_core::engine::{
        BatchAnswer, BatchCapability, BatchExecutor, BatchQuery, BatchReport, BatchRequest,
        BatchStats, ColoredInstance, ColoredSolver, EngineConfig, EngineError, ExecutorConfig,
        Guarantee, RangeShape, Registry, SharedIndex, SolveStats, SolverDescriptor, SolverReport,
        WeightedInstance, WeightedSolver,
    };
    pub use mrs_core::exact::{max_disk_placement, max_interval_placement, max_rect_placement};
    pub use mrs_core::input::{
        ColoredBallInstance, ColoredPlacement, Placement, WeightedBallInstance,
    };
    pub use mrs_core::technique1::{approx_colored_ball, approx_static_ball, DynamicBallMaxRS};
    pub use mrs_core::technique2::{
        approx_colored_disk_sampling, exact_colored_disk_by_union, output_sensitive_colored_disk,
    };
    pub use mrs_geom::{Aabb, Ball, ColoredSite, Interval, Point, Point2, Rect, WeightedPoint};
    pub use mrs_hardness::{min_plus_convolution, min_plus_via_batched_maxrs, min_plus_via_bsei};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_re_exports_are_usable_together() {
        let sites = vec![
            ColoredSite::new(Point2::xy(0.0, 0.0), 0),
            ColoredSite::new(Point2::xy(0.5, 0.0), 1),
        ];
        let exact = output_sensitive_colored_disk(&sites, 1.0);
        assert_eq!(exact.distinct, 2);

        let conv = min_plus_convolution(&[1.0, 2.0], &[3.0, 0.0]);
        assert_eq!(conv, vec![4.0, 1.0]);
    }

    #[test]
    fn full_registry_includes_batched_solvers() {
        let reg = engine::registry();
        assert!(reg.descriptors().len() >= 8);
        assert!(reg.weighted::<1>("batched-interval-1d").is_some());
        assert!(reg.weighted::<2>("exact-disk-2d").is_some());
    }
}
