//! The `maxrs` command-line tool: maximum range sum queries over CSV point
//! files.  All parsing and query logic lives in [`maxrs::cli`]; this binary
//! only wires it to the process arguments, the filesystem and the exit code.

use std::process::ExitCode;

use maxrs::cli::{
    input_path, parse_args, queries_path, run_batch_on_text, run_on_text, Command, USAGE,
};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let command = match parse_args(&args) {
        Ok(command) => command,
        Err(error) => {
            eprintln!("error: {error}");
            eprintln!("{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let file_text = match input_path(&command) {
        None => String::new(),
        Some(path) => match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(error) => {
                eprintln!("error: cannot read {path}: {error}");
                return ExitCode::FAILURE;
            }
        },
    };
    // Batch commands read a second file (the query list) and run through the
    // shared-index executor; everything else is a single engine dispatch.
    let outcome = match &command {
        Command::Batch { threads, eps, .. } => {
            let queries = queries_path(&command).expect("batch commands carry a query path");
            match std::fs::read_to_string(queries) {
                Err(error) => {
                    eprintln!("error: cannot read {queries}: {error}");
                    return ExitCode::FAILURE;
                }
                Ok(queries_text) => run_batch_on_text(&file_text, &queries_text, *threads, *eps),
            }
        }
        _ => run_on_text(&command, &file_text),
    };
    match outcome {
        Ok(report) => {
            println!("{report}");
            ExitCode::SUCCESS
        }
        Err(error) => {
            eprintln!("error: {error}");
            ExitCode::FAILURE
        }
    }
}
