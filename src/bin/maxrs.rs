//! The `maxrs` command-line tool: maximum range sum queries over CSV point
//! files.  All parsing and query logic lives in [`maxrs::cli`]; this binary
//! only wires it to the process arguments, the filesystem and the exit code.

use std::process::ExitCode;

use maxrs::cli::{
    input_path, parse_args, queries_path, run_batch_on_text, run_on_text, Command, USAGE,
};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let command = match parse_args(&args) {
        Ok(command) => command,
        Err(error) => {
            eprintln!("error: {error}");
            eprintln!("{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let file_text = match input_path(&command) {
        None => String::new(),
        Some(path) => match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(error) => {
                eprintln!("error: cannot read {path}: {error}");
                return ExitCode::FAILURE;
            }
        },
    };
    // Serve is the one long-lived command: load the startup datasets, bind,
    // and park on the runtime until a `POST /shutdown` arrives.
    if let Command::Serve { addr, threads, eps, seed, datasets } = &command {
        return run_server(addr, *threads, *eps, *seed, datasets);
    }
    // Batch commands read a second file (the query list) and run through the
    // shared-index executor; everything else is a single engine dispatch.
    let outcome = match &command {
        Command::Batch { threads, eps, .. } => {
            let queries = queries_path(&command).expect("batch commands carry a query path");
            match std::fs::read_to_string(queries) {
                Err(error) => {
                    eprintln!("error: cannot read {queries}: {error}");
                    return ExitCode::FAILURE;
                }
                Ok(queries_text) => run_batch_on_text(&file_text, &queries_text, *threads, *eps),
            }
        }
        _ => run_on_text(&command, &file_text),
    };
    match outcome {
        Ok(report) => {
            println!("{report}");
            ExitCode::SUCCESS
        }
        Err(error) => {
            eprintln!("error: {error}");
            ExitCode::FAILURE
        }
    }
}

/// Boots the query service: loads every `--dataset name=path` into the
/// catalog, binds the address, prints one line per loaded dataset plus the
/// bound address, then blocks until shutdown.
fn run_server(
    addr: &str,
    threads: Option<usize>,
    eps: f64,
    seed: Option<u64>,
    datasets: &[(String, String, usize)],
) -> ExitCode {
    use maxrs::server::{serve_with, ServerConfig, Service};
    use std::sync::Arc;

    let config = ServerConfig {
        addr: addr.to_string(),
        threads: threads.unwrap_or(0),
        eps,
        seed,
        ..ServerConfig::default()
    };
    let service = Arc::new(Service::new(config));
    for (name, path, dim) in datasets {
        let csv = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(error) => {
                eprintln!("error: cannot read {path}: {error}");
                return ExitCode::FAILURE;
            }
        };
        let loaded = if *dim == 1 {
            service.catalog().load_line_csv(name, &csv)
        } else {
            service.catalog().load_planar_csv(name, &csv)
        };
        match loaded {
            Ok(dataset) => eprintln!(
                "loaded {}-D dataset `{name}` from {path}: {} points, {} sites (epoch {})",
                dataset.dim(),
                dataset.point_count(),
                dataset.site_count(),
                dataset.epoch()
            ),
            Err(error) => {
                eprintln!("error: dataset `{name}` ({path}): {error}");
                return ExitCode::FAILURE;
            }
        }
    }
    match serve_with(service) {
        Err(error) => {
            eprintln!("error: cannot bind {addr}: {error}");
            ExitCode::FAILURE
        }
        Ok(handle) => {
            eprintln!(
                "maxrs serve listening on {} ({} workers); POST /shutdown to stop",
                handle.addr(),
                handle.service().config().resolved_threads()
            );
            handle.join();
            eprintln!("maxrs serve: shut down cleanly");
            ExitCode::SUCCESS
        }
    }
}
