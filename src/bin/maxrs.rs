//! The `maxrs` command-line tool: maximum range sum queries over CSV point
//! files.  All parsing and query logic lives in [`maxrs::cli`]; this binary
//! only wires it to the process arguments, the filesystem and the exit code.

use std::process::ExitCode;

use maxrs::cli::{
    input_path, parse_args, queries_path, run_batch_on_text, run_on_text, Command, USAGE,
};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let command = match parse_args(&args) {
        Ok(command) => command,
        Err(error) => {
            eprintln!("error: {error}");
            eprintln!("{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let file_text = match input_path(&command) {
        None => String::new(),
        Some(path) => match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(error) => {
                eprintln!("error: cannot read {path}: {error}");
                return ExitCode::FAILURE;
            }
        },
    };
    // Serve is the one long-lived command: load the startup datasets, bind,
    // and park on the runtime until a `POST /shutdown` arrives.
    if let Command::Serve { .. } = &command {
        return run_server(&command);
    }
    // Mutate posts the file to a running server's insert/delete endpoint.
    if let Command::Mutate { addr, dataset, delete, .. } = &command {
        return run_mutate(addr, dataset, *delete, &file_text);
    }
    // Batch commands read a second file (the query list) and run through the
    // shared-index executor; everything else is a single engine dispatch.
    let outcome = match &command {
        Command::Batch { threads, eps, deadline_ms, trace, .. } => {
            let queries = queries_path(&command).expect("batch commands carry a query path");
            match std::fs::read_to_string(queries) {
                Err(error) => {
                    eprintln!("error: cannot read {queries}: {error}");
                    return ExitCode::FAILURE;
                }
                Ok(queries_text) => run_batch_on_text(
                    &file_text,
                    &queries_text,
                    *threads,
                    *eps,
                    *deadline_ms,
                    *trace,
                ),
            }
        }
        _ => run_on_text(&command, &file_text),
    };
    match outcome {
        Ok(report) => {
            println!("{report}");
            ExitCode::SUCCESS
        }
        Err(error) => {
            eprintln!("error: {error}");
            ExitCode::FAILURE
        }
    }
}

/// Posts a mutation body to a running server: `POST
/// /datasets/{name}/insert` (or `/delete`), then prints the server's
/// summary — new version, what was inserted/deleted, and how many stale
/// cached answers were invalidated.
fn run_mutate(addr: &str, dataset: &str, delete: bool, body: &str) -> ExitCode {
    use maxrs::server::{Client, Json};

    let mut client = match Client::connect(addr) {
        Ok(client) => client,
        Err(error) => {
            eprintln!("error: cannot connect to {addr}: {error}");
            return ExitCode::FAILURE;
        }
    };
    let action = if delete { "delete" } else { "insert" };
    let path = format!("/datasets/{dataset}/{action}");
    let (status, response) = match client.post(&path, body) {
        Ok(result) => result,
        Err(error) => {
            eprintln!("error: {path}: {error}");
            return ExitCode::FAILURE;
        }
    };
    if status != 200 {
        eprintln!("error: {path} answered {status}: {response}");
        return ExitCode::FAILURE;
    }
    match Json::parse(&response) {
        Ok(parsed) => {
            let field = |path: &[&str]| {
                let mut node = Some(&parsed);
                for key in path {
                    node = node.and_then(|n| n.get(key));
                }
                node.and_then(Json::as_f64).unwrap_or(f64::NAN)
            };
            println!(
                "{action}: +{} −{} (missed {}) → version {} | delta {} | compactions {} | \
                 cache entries invalidated: {}",
                field(&["mutated", "inserted"]),
                field(&["mutated", "deleted"]),
                field(&["mutated", "missed"]),
                field(&["mutated", "version"]),
                field(&["dataset", "delta"]),
                field(&["dataset", "compactions"]),
                field(&["mutated", "cache_invalidated"]),
            );
            ExitCode::SUCCESS
        }
        Err(_) => {
            println!("{response}");
            ExitCode::SUCCESS
        }
    }
}

/// Boots the query service: loads every `--dataset name=path` into the
/// catalog, binds the address, prints one line per loaded dataset plus the
/// bound address, then blocks until shutdown.
fn run_server(command: &Command) -> ExitCode {
    use maxrs::server::{serve_with, RuntimeKind, ServerConfig, Service};
    use std::sync::Arc;
    use std::time::Duration;

    let Command::Serve {
        addr,
        threads,
        eps,
        seed,
        slow_query_ms,
        request_timeout_ms,
        queue_capacity,
        max_inflight,
        overload_watermark,
        chaos_solver,
        runtime,
        datasets,
    } = command
    else {
        unreachable!("run_server is only called on Command::Serve");
    };
    let defaults = ServerConfig::default();
    let config = ServerConfig {
        addr: addr.to_string(),
        threads: threads.unwrap_or(0),
        eps: *eps,
        seed: *seed,
        slow_query: slow_query_ms.map(Duration::from_millis),
        request_timeout: request_timeout_ms.map(Duration::from_millis),
        queue_capacity: queue_capacity.unwrap_or(defaults.queue_capacity),
        max_inflight: max_inflight.unwrap_or(defaults.max_inflight),
        overload_watermark: overload_watermark.unwrap_or(defaults.overload_watermark),
        chaos_solver: *chaos_solver,
        // The CLI already validated the spelling; `None` keeps the
        // platform default (epoll on Linux, threaded elsewhere).
        runtime: runtime.as_deref().and_then(RuntimeKind::parse).unwrap_or(defaults.runtime),
        ..defaults
    };
    let service = Arc::new(Service::new(config));
    for (name, path, dim) in datasets {
        let csv = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(error) => {
                eprintln!("error: cannot read {path}: {error}");
                return ExitCode::FAILURE;
            }
        };
        let loaded = if *dim == 1 {
            service.catalog().load_line_csv(name, &csv)
        } else {
            service.catalog().load_planar_csv(name, &csv)
        };
        match loaded {
            Ok(dataset) => eprintln!(
                "loaded {}-D dataset `{name}` from {path}: {} points, {} sites (epoch {})",
                dataset.dim(),
                dataset.point_count(),
                dataset.site_count(),
                dataset.epoch()
            ),
            Err(error) => {
                eprintln!("error: dataset `{name}` ({path}): {error}");
                return ExitCode::FAILURE;
            }
        }
    }
    match serve_with(service) {
        Err(error) => {
            eprintln!("error: cannot bind {addr}: {error}");
            ExitCode::FAILURE
        }
        Ok(handle) => {
            eprintln!(
                "maxrs serve listening on {} ({} workers, {} runtime); POST /shutdown to stop",
                handle.addr(),
                handle.service().config().resolved_threads(),
                handle.service().config().runtime.name()
            );
            handle.join();
            eprintln!("maxrs serve: shut down cleanly");
            ExitCode::SUCCESS
        }
    }
}
