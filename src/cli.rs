//! Parsing and formatting helpers for the `maxrs` command-line tool.
//!
//! The binary (`src/bin/maxrs.rs`) is a thin wrapper around these functions so
//! that everything interesting — CSV parsing, query-spec parsing, result
//! formatting — is unit-testable without spawning processes.

use std::fmt;
use std::str::FromStr;

use mrs_geom::{ColoredSite, WeightedPoint};

use crate::engine::{
    registry_with, BatchAnswer, BatchExecutor, BatchQuery, ColoredInstance, DimSupport,
    EngineConfig, EngineError, ExecutorConfig, Mutation, Phase, RangeShape, ScriptOutcome,
    ScriptStep, SolveStats, TraceRecorder, VersionedDataset, WeightedInstance,
};

/// A parsed command line.
#[derive(Clone, Debug, PartialEq)]
pub enum Command {
    /// Exact disk MaxRS (`disk --radius R <file>`).
    Disk {
        /// Query radius.
        radius: f64,
        /// Input CSV path.
        path: String,
    },
    /// Approximate disk MaxRS via Technique 1 (`disk-approx --radius R --eps E <file>`).
    DiskApprox {
        /// Query radius.
        radius: f64,
        /// Approximation parameter.
        eps: f64,
        /// Input CSV path.
        path: String,
    },
    /// Exact rectangle MaxRS (`rect --width W --height H <file>`).
    Rect {
        /// Rectangle width.
        width: f64,
        /// Rectangle height.
        height: f64,
        /// Input CSV path.
        path: String,
    },
    /// Exact colored disk MaxRS (`colored-disk --radius R <file>`).
    ColoredDisk {
        /// Query radius.
        radius: f64,
        /// Input CSV path.
        path: String,
    },
    /// Approximate colored disk MaxRS via color sampling
    /// (`colored-disk-approx --radius R --eps E <file>`).
    ColoredDiskApprox {
        /// Query radius.
        radius: f64,
        /// Approximation parameter.
        eps: f64,
        /// Input CSV path.
        path: String,
    },
    /// Batch execution: many queries over one point set through the
    /// shared-index executor (`batch --queries Q [--threads N] [--eps E]
    /// [--deadline-ms MS] [--trace] <file>`).
    Batch {
        /// Path of the query-list file.
        queries: String,
        /// Worker threads (`None` lets the executor pick).
        threads: Option<usize>,
        /// Approximation parameter for the approximate solvers in the batch.
        eps: f64,
        /// Compute deadline for the whole batch, in milliseconds; queries
        /// still unanswered at the deadline fail typed (`None` disables it).
        deadline_ms: Option<u64>,
        /// Print one phase-timed trace line per executed query.
        trace: bool,
        /// Input CSV path.
        path: String,
    },
    /// Long-lived query service (`serve --addr HOST:PORT [--threads N]
    /// [--eps E] [--seed S] [--slow-query-ms MS] [--request-timeout-ms MS]
    /// [--queue-capacity N] [--max-inflight N] [--overload-watermark F]
    /// [--dataset name=path]...`).
    Serve {
        /// Address to bind, `HOST:PORT`.
        addr: String,
        /// Worker threads (`None` lets the server pick).
        threads: Option<usize>,
        /// Approximation parameter for the approximate solvers.
        eps: f64,
        /// Seed for the randomized solvers (`None` = entropy-seeded).
        seed: Option<u64>,
        /// Slow-query log threshold in milliseconds (`None` disables it).
        slow_query_ms: Option<u64>,
        /// Default per-request compute deadline in milliseconds (`None`
        /// disables it; `X-Deadline-Ms` overrides per request).
        request_timeout_ms: Option<u64>,
        /// Bounded accepted-connection queue capacity (`None` = default).
        queue_capacity: Option<usize>,
        /// Global in-flight query/batch limit (`None` = default).
        max_inflight: Option<usize>,
        /// Overload watermark in `[0, 1]` (`None` = default).
        overload_watermark: Option<f64>,
        /// Register the test-only always-panicking `chaos-panic` solver
        /// (fault-injection harness only).
        chaos_solver: bool,
        /// Connection-I/O runtime, `"threaded"` or `"epoll"` (`None` lets
        /// the server pick: epoll on Linux, threaded elsewhere).
        runtime: Option<String>,
        /// Datasets to load into the catalog at startup, as
        /// `(name, path, dim)` where `dim` is 1 (`name=path@1d`, 1-D
        /// `x[,weight]` CSV) or 2 (`name=path`, planar batch CSV).
        datasets: Vec<(String, String, usize)>,
    },
    /// Mutate a dataset resident in a running `maxrs serve` instance
    /// (`mutate --addr HOST:PORT --dataset NAME [--delete] <records.csv>`).
    Mutate {
        /// Address of the running server, `HOST:PORT`.
        addr: String,
        /// Name of the resident dataset to mutate.
        dataset: String,
        /// `true` to delete the records (bare coordinates); `false` to
        /// insert them (the dataset's own CSV record shape).
        delete: bool,
        /// Path of the mutation CSV file.
        path: String,
    },
    /// List the solvers registered with the engine (`solvers`).
    Solvers,
    /// Print usage.
    Help,
}

/// Errors produced while parsing arguments or input files.
#[derive(Clone, Debug, PartialEq)]
pub struct CliError(pub String);

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CliError {}

fn err<T>(message: impl Into<String>) -> Result<T, CliError> {
    Err(CliError(message.into()))
}

/// The usage string printed by `maxrs help`.
pub const USAGE: &str = "\
maxrs — maximum range sum queries over CSV point files

USAGE:
    maxrs disk                --radius R            <points.csv>
    maxrs disk-approx         --radius R --eps E    <points.csv>
    maxrs rect                --width W --height H  <points.csv>
    maxrs colored-disk        --radius R            <colored.csv>
    maxrs colored-disk-approx --radius R --eps E    <colored.csv>
    maxrs batch --queries <script.txt> [--threads N] [--eps E]
                [--deadline-ms MS] [--trace] <points.csv>
    maxrs serve --addr HOST:PORT [--threads N] [--eps E] [--seed S]
                [--slow-query-ms MS] [--request-timeout-ms MS]
                [--queue-capacity N] [--max-inflight N]
                [--overload-watermark F] [--runtime threaded|epoll]
                [--dataset name=path[@1d]]...
    maxrs mutate --addr HOST:PORT --dataset NAME [--delete] <records.csv>
    maxrs solvers

Every query dispatches through the solver engine; `maxrs solvers` lists the
registered solvers with their capabilities and guarantees.  `maxrs batch`
answers a whole file of queries over one point set through the shared-index
batch executor (spatial indexes built once, queries fanned out over a
worker pool).  `maxrs serve` keeps datasets resident behind an HTTP/1.1
query service with per-dataset shared indexes and an answer cache; datasets
are loaded at startup with repeated `--dataset name=path` flags (planar
batch CSV; append `@1d` for 1-D `x[,weight]` CSV) or uploaded later via
`POST /datasets/{name}[?dim=1]`.  Resident datasets are *versioned and
mutable*: `maxrs mutate` posts a CSV of records to a running server's
`POST /datasets/{name}/insert` (or `/delete` with `--delete`), bumping the
dataset version and invalidating exactly the stale cached answers.

Observability: `maxrs batch --trace` prints one phase-timed line per
executed query (plan | index build | solve | certify); `maxrs serve`
exposes Prometheus text at `GET /metrics`, recent phase-timed traces at
`GET /debug/traces`, and — with `--slow-query-ms MS` — logs one structured
stderr line per query whose phases sum past the threshold.

Overload safety: `maxrs serve` sheds work past its limits instead of
queueing unboundedly.  `--queue-capacity N` bounds the accepted-connection
queue and `--max-inflight N` the concurrently-handled query/batch requests
(both shed with `503` + `Retry-After`); `--request-timeout-ms MS` sets the
default compute deadline (a request's `X-Deadline-Ms` header overrides it;
expired queries fail with a typed `504`); `--overload-watermark F` (default
0.75) picks the in-flight fraction past which the `auto` router restricts
itself to predicted-cheap solvers.  `maxrs batch --deadline-ms MS` applies
the same cooperative-cancellation deadline to an offline batch.

INPUT FORMATS (one record per line, '#' starts a comment):
    weighted points:  x,y[,weight]          (weight defaults to 1)
    colored sites:    x,y,color             (color is a non-negative integer)
    batch points:     x,y[,weight[,color]]  (weighted and colored views of
                                             one point set; lines with a 4th
                                             field double as colored sites)
    batch scripts:    one step per line; queries run at the dataset's
                      then-current version, and update steps mutate it
                      in between (the interleaved update+query setting):
                          disk,R
                          disk-approx,R
                          disk-auto,R              (cost-model routed)
                          disk-dynamic,R           (incrementally maintained)
                          rect,W,H
                          rect-auto,W,H            (cost-model routed)
                          colored-disk,R
                          colored-disk-approx,R
                          colored-disk-auto,R      (cost-model routed)
                          insert,x,y[,weight[,color]]
                          delete,x,y
";

/// Parses the command-line arguments (excluding the program name).
pub fn parse_args(args: &[String]) -> Result<Command, CliError> {
    let Some(command) = args.first() else {
        return Ok(Command::Help);
    };
    let mut radius = None;
    let mut eps = None;
    let mut width = None;
    let mut height = None;
    let mut queries = None;
    let mut threads = None;
    let mut addr = None;
    let mut seed = None;
    let mut slow_query_ms = None;
    let mut request_timeout_ms = None;
    let mut deadline_ms = None;
    let mut queue_capacity = None;
    let mut max_inflight = None;
    let mut overload_watermark = None;
    let mut chaos_solver = false;
    let mut runtime: Option<String> = None;
    let mut trace = false;
    let mut raw_datasets: Vec<String> = Vec::new();
    let mut delete = false;
    let mut path = None;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--addr" => {
                let Some(value) = args.get(i + 1) else {
                    return err("--addr requires HOST:PORT");
                };
                addr = Some(value.clone());
                i += 2;
            }
            "--seed" => {
                let Some(raw) = args.get(i + 1) else {
                    return err("--seed requires a value");
                };
                let value: u64 =
                    raw.parse().map_err(|_| CliError(format!("--seed: invalid seed {raw}")))?;
                seed = Some(value);
                i += 2;
            }
            "--dataset" => {
                let Some(value) = args.get(i + 1) else {
                    return err("--dataset requires a value");
                };
                raw_datasets.push(value.clone());
                i += 2;
            }
            "--delete" => {
                delete = true;
                i += 1;
            }
            "--trace" => {
                trace = true;
                i += 1;
            }
            "--slow-query-ms" => {
                let Some(raw) = args.get(i + 1) else {
                    return err("--slow-query-ms requires a value");
                };
                let value: u64 = raw
                    .parse()
                    .map_err(|_| CliError(format!("--slow-query-ms: invalid threshold {raw}")))?;
                slow_query_ms = Some(value);
                i += 2;
            }
            "--request-timeout-ms" => {
                let Some(raw) = args.get(i + 1) else {
                    return err("--request-timeout-ms requires a value");
                };
                let value: u64 = raw.parse().map_err(|_| {
                    CliError(format!("--request-timeout-ms: invalid timeout {raw}"))
                })?;
                request_timeout_ms = Some(value);
                i += 2;
            }
            "--deadline-ms" => {
                let Some(raw) = args.get(i + 1) else {
                    return err("--deadline-ms requires a value");
                };
                let value: u64 = raw
                    .parse()
                    .map_err(|_| CliError(format!("--deadline-ms: invalid deadline {raw}")))?;
                deadline_ms = Some(value);
                i += 2;
            }
            "--queue-capacity" => {
                let Some(raw) = args.get(i + 1) else {
                    return err("--queue-capacity requires a value");
                };
                let value: usize =
                    raw.parse().ok().filter(|&n| n >= 1).ok_or_else(|| {
                        CliError(format!("--queue-capacity: invalid capacity {raw}"))
                    })?;
                queue_capacity = Some(value);
                i += 2;
            }
            "--max-inflight" => {
                let Some(raw) = args.get(i + 1) else {
                    return err("--max-inflight requires a value");
                };
                let value: usize = raw
                    .parse()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| CliError(format!("--max-inflight: invalid limit {raw}")))?;
                max_inflight = Some(value);
                i += 2;
            }
            "--overload-watermark" => {
                let Some(raw) = args.get(i + 1) else {
                    return err("--overload-watermark requires a value");
                };
                let value: f64 =
                    raw.parse().ok().filter(|w: &f64| w.is_finite() && *w > 0.0).ok_or_else(
                        || CliError(format!("--overload-watermark: invalid fraction {raw}")),
                    )?;
                overload_watermark = Some(value);
                i += 2;
            }
            "--chaos-solver" => {
                chaos_solver = true;
                i += 1;
            }
            "--runtime" => {
                let Some(raw) = args.get(i + 1) else {
                    return err("--runtime requires a value");
                };
                if raw != "threaded" && raw != "epoll" {
                    return err(format!(
                        "--runtime: unknown runtime `{raw}` (expected threaded or epoll)"
                    ));
                }
                runtime = Some(raw.clone());
                i += 2;
            }
            "--radius" => {
                radius = Some(parse_flag_value(args, &mut i, "--radius")?);
            }
            "--eps" => {
                eps = Some(parse_flag_value(args, &mut i, "--eps")?);
            }
            "--width" => {
                width = Some(parse_flag_value(args, &mut i, "--width")?);
            }
            "--height" => {
                height = Some(parse_flag_value(args, &mut i, "--height")?);
            }
            "--queries" => {
                let Some(value) = args.get(i + 1) else {
                    return err("--queries requires a file path");
                };
                queries = Some(value.clone());
                i += 2;
            }
            "--threads" => {
                let Some(raw) = args.get(i + 1) else {
                    return err("--threads requires a value");
                };
                let value: usize = raw
                    .parse()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| CliError(format!("--threads: invalid count {raw}")))?;
                threads = Some(value);
                i += 2;
            }
            flag if flag.starts_with("--") => {
                return err(format!("unknown flag {flag}"));
            }
            positional => {
                if path.is_some() {
                    return err(format!("unexpected extra argument {positional}"));
                }
                path = Some(positional.to_string());
                i += 1;
            }
        }
    }
    let need_path = |path: Option<String>| -> Result<String, CliError> {
        path.ok_or_else(|| CliError("missing input file path".into()))
    };
    // Reject flags the selected subcommand does not consume, so a typo like
    // `colored-disk --eps 0.3` (instead of `colored-disk-approx`) errors
    // instead of silently ignoring the flag.
    let reject_unused = |command: &str, unused: &[(&str, bool)]| -> Result<(), CliError> {
        for (flag, present) in unused {
            if *present {
                return err(format!("{flag} does not apply to `{command}`"));
            }
        }
        Ok(())
    };
    if command != "batch" && command != "serve" {
        reject_unused(
            command,
            &[("--queries", queries.is_some()), ("--threads", threads.is_some())],
        )?;
    }
    if command != "serve" && command != "mutate" {
        reject_unused(
            command,
            &[
                ("--addr", addr.is_some()),
                ("--dataset", !raw_datasets.is_empty()),
                ("--delete", delete),
            ],
        )?;
    }
    if command != "serve" {
        reject_unused(
            command,
            &[
                ("--seed", seed.is_some()),
                ("--slow-query-ms", slow_query_ms.is_some()),
                ("--request-timeout-ms", request_timeout_ms.is_some()),
                ("--queue-capacity", queue_capacity.is_some()),
                ("--max-inflight", max_inflight.is_some()),
                ("--overload-watermark", overload_watermark.is_some()),
                ("--chaos-solver", chaos_solver),
                ("--runtime", runtime.is_some()),
            ],
        )?;
    }
    if command != "mutate" {
        reject_unused(command, &[("--delete", delete)])?;
    }
    if command != "batch" {
        reject_unused(command, &[("--trace", trace), ("--deadline-ms", deadline_ms.is_some())])?;
    }
    match command.as_str() {
        "help" | "--help" | "-h" => Ok(Command::Help),
        "solvers" => Ok(Command::Solvers),
        "serve" => {
            reject_unused(
                "serve",
                &[
                    ("--radius", radius.is_some()),
                    ("--width", width.is_some()),
                    ("--height", height.is_some()),
                    ("--queries", queries.is_some()),
                ],
            )?;
            if let Some(extra) = path {
                return err(format!(
                    "serve takes no positional file (got `{extra}`); use --dataset name=path"
                ));
            }
            let mut datasets: Vec<(String, String, usize)> = Vec::new();
            for value in &raw_datasets {
                let Some((name, file)) = value.split_once('=') else {
                    return err(format!("--dataset: expected name=path, got `{value}`"));
                };
                let (file, dim) = match file.strip_suffix("@1d") {
                    Some(stripped) => (stripped, 1),
                    None => (file, 2),
                };
                if name.is_empty() || file.is_empty() {
                    return err(format!("--dataset: expected name=path, got `{value}`"));
                }
                datasets.push((name.to_string(), file.to_string(), dim));
            }
            let eps = eps.unwrap_or(0.25);
            // Same validation as the query subcommands: a bad ε must be a
            // CLI error, not an engine-config panic at startup.
            check_eps(eps, 1.0)?;
            Ok(Command::Serve {
                addr: addr.ok_or_else(|| CliError("serve requires --addr HOST:PORT".into()))?,
                threads,
                eps,
                seed,
                slow_query_ms,
                request_timeout_ms,
                queue_capacity,
                max_inflight,
                overload_watermark,
                chaos_solver,
                runtime,
                datasets,
            })
        }
        "mutate" => {
            reject_unused(
                "mutate",
                &[
                    ("--radius", radius.is_some()),
                    ("--eps", eps.is_some()),
                    ("--width", width.is_some()),
                    ("--height", height.is_some()),
                    ("--queries", queries.is_some()),
                    ("--threads", threads.is_some()),
                ],
            )?;
            let [name] = raw_datasets.as_slice() else {
                return err("mutate requires exactly one --dataset NAME");
            };
            if name.contains('=') {
                return err(format!(
                    "mutate takes a dataset *name* (got `{name}`); the records come from the file"
                ));
            }
            Ok(Command::Mutate {
                addr: addr.ok_or_else(|| CliError("mutate requires --addr HOST:PORT".into()))?,
                dataset: name.clone(),
                delete,
                path: need_path(path)?,
            })
        }
        "batch" => {
            reject_unused(
                "batch",
                &[
                    ("--radius", radius.is_some()),
                    ("--width", width.is_some()),
                    ("--height", height.is_some()),
                ],
            )?;
            Ok(Command::Batch {
                queries: queries.ok_or_else(|| CliError("batch requires --queries".into()))?,
                threads,
                eps: eps.unwrap_or(0.25),
                deadline_ms,
                trace,
                path: need_path(path)?,
            })
        }
        "disk" => {
            reject_unused(
                "disk",
                &[
                    ("--eps", eps.is_some()),
                    ("--width", width.is_some()),
                    ("--height", height.is_some()),
                ],
            )?;
            Ok(Command::Disk {
                radius: radius.ok_or_else(|| CliError("disk requires --radius".into()))?,
                path: need_path(path)?,
            })
        }
        "disk-approx" => {
            reject_unused(
                "disk-approx",
                &[("--width", width.is_some()), ("--height", height.is_some())],
            )?;
            Ok(Command::DiskApprox {
                radius: radius.ok_or_else(|| CliError("disk-approx requires --radius".into()))?,
                eps: eps.unwrap_or(0.25),
                path: need_path(path)?,
            })
        }
        "rect" => {
            reject_unused("rect", &[("--radius", radius.is_some()), ("--eps", eps.is_some())])?;
            Ok(Command::Rect {
                width: width.ok_or_else(|| CliError("rect requires --width".into()))?,
                height: height.ok_or_else(|| CliError("rect requires --height".into()))?,
                path: need_path(path)?,
            })
        }
        "colored-disk" => {
            reject_unused(
                "colored-disk",
                &[
                    ("--eps", eps.is_some()),
                    ("--width", width.is_some()),
                    ("--height", height.is_some()),
                ],
            )?;
            Ok(Command::ColoredDisk {
                radius: radius.ok_or_else(|| CliError("colored-disk requires --radius".into()))?,
                path: need_path(path)?,
            })
        }
        "colored-disk-approx" => {
            reject_unused(
                "colored-disk-approx",
                &[("--width", width.is_some()), ("--height", height.is_some())],
            )?;
            Ok(Command::ColoredDiskApprox {
                radius: radius
                    .ok_or_else(|| CliError("colored-disk-approx requires --radius".into()))?,
                eps: eps.unwrap_or(0.25),
                path: need_path(path)?,
            })
        }
        other => err(format!("unknown command {other}; run `maxrs help`")),
    }
}

fn parse_flag_value(args: &[String], i: &mut usize, flag: &str) -> Result<f64, CliError> {
    let Some(raw) = args.get(*i + 1) else {
        return err(format!("{flag} requires a value"));
    };
    let value =
        f64::from_str(raw).map_err(|_| CliError(format!("{flag}: invalid number {raw}")))?;
    *i += 2;
    Ok(value)
}

/// Parses weighted points from CSV text (`x,y[,weight]` per line).
///
/// Thin wrapper over the shared [`mrs_core::input`] loader, mapping its
/// typed [`mrs_core::input::LoadError`] into the CLI's displayable error.
pub fn parse_weighted_csv(text: &str) -> Result<Vec<WeightedPoint<2>>, CliError> {
    mrs_core::input::parse_weighted_csv(text).map_err(load_error)
}

/// Parses colored sites from CSV text (`x,y,color` per line) via the shared
/// [`mrs_core::input`] loader.
pub fn parse_colored_csv(text: &str) -> Result<Vec<ColoredSite<2>>, CliError> {
    mrs_core::input::parse_colored_csv(text).map_err(load_error)
}

fn load_error(e: mrs_core::input::LoadError) -> CliError {
    CliError(e.to_string())
}

fn parse_number(raw: &str, lineno: usize) -> Result<f64, CliError> {
    // `f64::from_str` happily parses "inf" and "NaN", which the engine's
    // instance constructors reject with a panic; keep the CLI contract of
    // clean line-numbered errors instead.
    f64::from_str(raw)
        .ok()
        .filter(|v| v.is_finite())
        .ok_or_else(|| CliError(format!("line {}: invalid number `{raw}`", lineno + 1)))
}

/// Parses a batch point file (`x,y[,weight[,color]]` per line) into its
/// weighted view (all lines) and its colored view (the lines carrying a
/// color), so one point set serves both query families.  Wraps the shared
/// [`mrs_core::input::parse_point_set_csv`] loader — the same one the
/// server's dataset catalog uses.
pub fn parse_batch_csv(
    text: &str,
) -> Result<(Vec<WeightedPoint<2>>, Vec<ColoredSite<2>>), CliError> {
    let set = mrs_core::input::parse_point_set_csv(text).map_err(load_error)?;
    Ok((set.points, set.sites))
}

/// Parses a batch **script** file: one step per line (`#` starts a
/// comment).  Query steps use `kind,params` with the same kinds and solver
/// mapping as the single-query subcommands (`disk,R`, `disk-approx,R`,
/// `disk-dynamic,R`, `rect,W,H`, `colored-disk,R`,
/// `colored-disk-approx,R`), plus the `-auto` variants (`disk-auto,R`,
/// `rect-auto,W,H`, `colored-disk-auto,R`) that hand the query to the
/// cost-model router; update steps mutate the dataset between
/// queries (`insert,x,y[,weight[,color]]`, `delete,x,y`), so one file
/// expresses the paper's interleaved update+query setting.
pub fn parse_batch_script(text: &str) -> Result<Vec<ScriptStep<2>>, CliError> {
    let mut steps = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split(',').map(str::trim).collect();
        let arity_error =
            |want: &str| CliError(format!("line {}: `{}` expects `{want}`", lineno + 1, fields[0]));
        let step = match (fields[0], fields.len()) {
            ("disk", 2) => ScriptStep::Query(BatchQuery::weighted(
                "exact-disk-2d",
                RangeShape::ball(checked_radius(fields[1], lineno)?),
            )),
            ("disk-approx", 2) => ScriptStep::Query(BatchQuery::weighted(
                "approx-static-ball",
                RangeShape::ball(checked_radius(fields[1], lineno)?),
            )),
            ("disk-auto", 2) => ScriptStep::Query(BatchQuery::weighted(
                "auto",
                RangeShape::ball(checked_radius(fields[1], lineno)?),
            )),
            ("disk-dynamic", 2) => ScriptStep::Query(BatchQuery::weighted(
                "dynamic-ball",
                RangeShape::ball(checked_radius(fields[1], lineno)?),
            )),
            (kind @ ("rect" | "rect-auto"), 3) => {
                let width = parse_number(fields[1], lineno)?;
                let height = parse_number(fields[2], lineno)?;
                if !(width.is_finite() && width > 0.0 && height.is_finite() && height > 0.0) {
                    return err(format!("line {}: rect extents must be positive", lineno + 1));
                }
                let solver = if kind == "rect" { "exact-rect-2d" } else { "auto" };
                ScriptStep::Query(BatchQuery::weighted(solver, RangeShape::rect(width, height)))
            }
            ("colored-disk", 2) => ScriptStep::Query(BatchQuery::colored(
                "output-sensitive-colored-disk",
                RangeShape::ball(checked_radius(fields[1], lineno)?),
            )),
            ("colored-disk-approx", 2) => ScriptStep::Query(BatchQuery::colored(
                "approx-colored-disk-sampling",
                RangeShape::ball(checked_radius(fields[1], lineno)?),
            )),
            ("colored-disk-auto", 2) => ScriptStep::Query(BatchQuery::colored(
                "auto",
                RangeShape::ball(checked_radius(fields[1], lineno)?),
            )),
            // Update records delegate to the shared `mrs_core::input`
            // mutation parsers — the *same* record semantics (weight
            // default, negative-weight rejection, color parsing) the
            // server's mutation bodies use, so CLI scripts and `POST
            // /datasets/{name}/insert|delete` can never drift apart.
            ("insert", 3..=5) => ScriptStep::Mutate(parse_mutation_record(
                mrs_core::input::parse_planar_inserts_csv,
                &fields[1..],
                lineno,
            )?),
            ("delete", 3) => ScriptStep::Mutate(parse_mutation_record(
                mrs_core::input::parse_planar_deletes_csv,
                &fields[1..],
                lineno,
            )?),
            (
                "disk"
                | "disk-approx"
                | "disk-auto"
                | "disk-dynamic"
                | "colored-disk"
                | "colored-disk-approx"
                | "colored-disk-auto",
                _,
            ) => {
                return Err(arity_error("kind,R"));
            }
            ("rect" | "rect-auto", _) => return Err(arity_error("kind,W,H")),
            ("insert", _) => return Err(arity_error("insert,x,y[,weight[,color]]")),
            ("delete", _) => return Err(arity_error("delete,x,y")),
            (other, _) => {
                return err(format!("line {}: unknown step kind `{other}`", lineno + 1));
            }
        };
        steps.push(step);
    }
    Ok(steps)
}

/// Parses one script update record through a shared [`mrs_core::input`]
/// mutation parser, re-anchoring the parser's (record-relative) error line
/// to the script line the record came from.
fn parse_mutation_record(
    parse: fn(&str) -> Result<Vec<Mutation<2>>, mrs_core::input::LoadError>,
    fields: &[&str],
    lineno: usize,
) -> Result<Mutation<2>, CliError> {
    let mut mutations = parse(&fields.join(","))
        .map_err(|e| load_error(mrs_core::input::LoadError { line: lineno + 1, kind: e.kind }))?;
    debug_assert_eq!(mutations.len(), 1, "one record parses to one mutation");
    Ok(mutations.remove(0))
}

fn checked_radius(raw: &str, lineno: usize) -> Result<f64, CliError> {
    let radius = parse_number(raw, lineno)?;
    if radius.is_finite() && radius > 0.0 {
        Ok(radius)
    } else {
        err(format!("line {}: radius must be positive", lineno + 1))
    }
}

/// Executes a batch command against already-loaded file contents: parses
/// the point set and the script, runs the whole thing through the
/// versioned script executor (queries answered and certified at the
/// dataset version they observe, update steps mutating it in between), and
/// renders one line per step plus the batch statistics.
pub fn run_batch_on_text(
    points_text: &str,
    queries_text: &str,
    threads: Option<usize>,
    eps: f64,
    deadline_ms: Option<u64>,
    trace: bool,
) -> Result<String, CliError> {
    check_eps(eps, 1.0)?;
    let (points, sites) = parse_batch_csv(points_text)?;
    let steps = parse_batch_script(queries_text)?;
    if steps.is_empty() {
        return Ok("empty query file: nothing to answer".to_string());
    }
    let dataset = VersionedDataset::new(points, sites);

    let registry = registry_with(cli_config(eps));
    let deadline =
        deadline_ms.map(|ms| std::time::Instant::now() + std::time::Duration::from_millis(ms));
    let executor = BatchExecutor::with_config(
        &registry,
        ExecutorConfig { threads, certify: true, deadline, ..ExecutorConfig::default() },
    );
    let mut recorder = if trace { TraceRecorder::new() } else { TraceRecorder::disabled() };
    let report = executor.execute_script_traced(&dataset, &steps, &mut recorder);

    let mut out = String::new();
    for (i, (step, outcome)) in steps.iter().zip(&report.outcomes).enumerate() {
        let line = match outcome {
            ScriptOutcome::Answer { answer: BatchAnswer::Weighted(r), version, .. } => format!(
                "covered weight = {:.6} at ({:.6}, {:.6})  [{} @v{version}]",
                r.placement.value,
                r.placement.center.x(),
                r.placement.center.y(),
                solver_label(r.solver, &r.stats),
            ),
            ScriptOutcome::Answer { answer: BatchAnswer::Colored(r), version, .. } => format!(
                "distinct colors = {} at ({:.6}, {:.6})  [{} @v{version}]",
                r.placement.distinct,
                r.placement.center.x(),
                r.placement.center.y(),
                solver_label(r.solver, &r.stats),
            ),
            ScriptOutcome::Answer { answer: BatchAnswer::Failed(error), .. } => {
                format!("FAILED: {error}")
            }
            ScriptOutcome::Mutated { version, outcome, compacted } => format!(
                "applied: +{} −{} (missed {}) → v{version}{}",
                outcome.inserted,
                outcome.deleted,
                outcome.missed,
                if *compacted { ", compacted" } else { "" }
            ),
        };
        out.push_str(&format!("[{i:>4}] {:<28} {line}\n", render_step(step)));
    }
    let stats = &report.stats;
    out.push_str(&format!(
        "batch: {} queries ({} failed), {} updates in {:.2} ms | {:.0} queries/s | threads = {} | \
         index builds = {} ({:.2} ms) | certified {}/{} ({} mismatches)\n",
        stats.queries,
        stats.failed,
        report.updates,
        stats.wall.as_secs_f64() * 1e3,
        stats.queries_per_sec(),
        stats.threads,
        stats.index_builds,
        stats.index_build_time.as_secs_f64() * 1e3,
        stats.certified,
        stats.queries - stats.failed,
        stats.certify_failures,
    ));
    // The versioned-dataset counters: where the update path left the data.
    out.push_str(&format!(
        "dataset: version = {} | delta = {} | compactions = {}\n",
        report.final_version,
        dataset.view().delta_size(),
        dataset.compactions(),
    ));
    // Wall-clock-free work counters: what the shared spatial indexes could
    // not prune.  These are the numbers the perf-smoke tests bound.
    out.push_str(&format!(
        "index work: {} candidates examined | {} grid cells visited | {} sieve-rejected\n",
        stats.candidates_examined, stats.grid_cells_visited, stats.sieve_rejected,
    ));
    // Cost-model routing: how many queries the `auto` solver routed and how
    // well its predictions tracked the work the chosen solvers then did.
    if stats.auto_picks > 0 {
        out.push_str(&format!(
            "auto: routed {} | predicted work = {:.0} | actual work = {:.0}\n",
            stats.auto_picks, stats.auto_predicted_work, stats.auto_actual_work,
        ));
    }
    // Per-query wall time — the same `LatencySummary` the server's `/stats`
    // endpoint serializes per HTTP endpoint.
    out.push_str(&format!("per-query: {}\n", report.per_query_latency()));
    // `--trace`: one phase-timed line per executed query, keyed by the
    // step position the query ran at.
    if trace {
        out.push_str("traces:\n");
        for t in recorder.traces() {
            let us = |p: Phase| t.phase(p).as_secs_f64() * 1e6;
            out.push_str(&format!(
                "  [q{:>4}] {:<28} plan {:.1} µs | build {:.1} µs | solve {:.1} µs | certify \
                 {:.1} µs | total {:.1} µs | v{}{}\n",
                t.query,
                match t.routed {
                    Some(choice) => format!("{}→{choice}", t.solver),
                    None => t.solver.clone(),
                },
                us(Phase::Plan),
                us(Phase::IndexBuild),
                us(Phase::Solve),
                us(Phase::Certify),
                t.phase_total().as_secs_f64() * 1e6,
                t.version,
                if t.ok { "" } else { " FAILED" },
            ));
        }
    }
    Ok(out)
}

/// The solver tag of a per-step answer line: `auto→exact-disk-2d` when the
/// cost-model router answered (the routed choice matters more than the
/// literal name), the plain solver name otherwise.
fn solver_label(solver: &str, stats: &SolveStats) -> String {
    match stats.auto_choice {
        Some(choice) => format!("{solver}→{choice}"),
        None => solver.to_string(),
    }
}

fn render_step(step: &ScriptStep<2>) -> String {
    match step {
        ScriptStep::Query(query) => {
            let shape = match query.shape() {
                RangeShape::Ball { radius } => format!("ball r={radius}"),
                RangeShape::AxisBox { extents } => format!("box {}x{}", extents[0], extents[1]),
            };
            match query {
                BatchQuery::Weighted { .. } => format!("weighted {shape}"),
                BatchQuery::Colored { .. } => format!("colored {shape}"),
            }
        }
        ScriptStep::Mutate(Mutation::Insert { point, .. }) => {
            format!("insert ({}, {})", point.point.x(), point.point.y())
        }
        ScriptStep::Mutate(Mutation::Delete { point }) => {
            format!("delete ({}, {})", point.x(), point.y())
        }
    }
}

/// The engine configuration the CLI dispatches with: practical sampling caps
/// at the requested `ε` (see [`EngineConfig::practical`] for the `ε ≥ 1/2`
/// clamping rule).
fn cli_config(eps: f64) -> EngineConfig {
    EngineConfig::practical(eps)
}

/// Looks a weighted solver up and dispatches the instance through it.
fn dispatch_weighted(
    solver_name: &str,
    eps: f64,
    instance: &WeightedInstance<2>,
) -> Result<crate::engine::SolverReport<mrs_core::input::Placement<2>>, CliError> {
    let registry = registry_with(cli_config(eps));
    let solver = registry
        .weighted::<2>(solver_name)
        .ok_or_else(|| CliError(format!("solver `{solver_name}` is not registered")))?;
    solver.solve(instance).map_err(engine_error)
}

/// Looks a colored solver up and dispatches the instance through it.
fn dispatch_colored(
    solver_name: &str,
    eps: f64,
    instance: &ColoredInstance<2>,
) -> Result<crate::engine::SolverReport<mrs_core::input::ColoredPlacement<2>>, CliError> {
    let registry = registry_with(cli_config(eps));
    let solver = registry
        .colored::<2>(solver_name)
        .ok_or_else(|| CliError(format!("solver `{solver_name}` is not registered")))?;
    solver.solve(instance).map_err(engine_error)
}

fn engine_error(e: EngineError) -> CliError {
    CliError(e.to_string())
}

/// Renders the registry listing for `maxrs solvers`: every solver's name,
/// problem kind, shape class, supported dimensions, guarantee, batch
/// capability, and source reference.
fn render_solvers() -> String {
    let registry = crate::engine::registry();
    let mut out = String::from(
        "registered solvers (name | problem | shape | dims | guarantee | batch | updates | \
         reference):\n",
    );
    for d in registry.descriptors() {
        let dims = match d.dims {
            DimSupport::Any => "any d".to_string(),
            DimSupport::Fixed(d) => format!("d = {d}"),
        };
        let guarantee = match d.guarantee {
            crate::engine::GuaranteeClass::Exact => "exact",
            crate::engine::GuaranteeClass::HalfMinusEps => "(1/2 − ε)-approx",
            crate::engine::GuaranteeClass::OneMinusEps => "(1 − ε)-approx",
        };
        let problem = match d.problem {
            crate::engine::ProblemKind::Weighted => "weighted",
            crate::engine::ProblemKind::Colored => "colored",
        };
        let updates = if d.dynamic { "incremental" } else { "static" };
        out.push_str(&format!(
            "  {:<30} {:<9} {:<5} {:<7} {:<17} {:<13} {:<11} {}\n",
            d.name,
            problem,
            d.shape.to_string(),
            dims,
            guarantee,
            d.batch.to_string(),
            updates,
            d.reference
        ));
    }
    out
}

fn check_radius(radius: f64) -> Result<(), CliError> {
    if radius.is_finite() && radius > 0.0 {
        Ok(())
    } else {
        err("radius must be positive")
    }
}

fn check_extent(name: &str, extent: f64) -> Result<(), CliError> {
    if extent.is_finite() && extent > 0.0 {
        Ok(())
    } else {
        err(format!("{name} must be positive"))
    }
}

fn check_eps(eps: f64, hi: f64) -> Result<(), CliError> {
    if eps > 0.0 && eps < hi {
        Ok(())
    } else {
        err(format!("--eps must lie in (0, {hi}), got {eps}"))
    }
}

/// Executes a parsed command against already-loaded file contents and returns
/// the report text.  Every query dispatches through the solver engine; the
/// function stays pure so it can be tested without touching the filesystem.
pub fn run_on_text(command: &Command, file_text: &str) -> Result<String, CliError> {
    const DEFAULT_EPS: f64 = 0.25;
    match command {
        Command::Help => Ok(USAGE.to_string()),
        Command::Solvers => Ok(render_solvers()),
        Command::Batch { threads, eps, .. } => {
            // The binary resolves the query file separately and calls
            // `run_batch_on_text` with both contents; reaching this arm means
            // the caller only loaded the point file.
            let _ = (threads, eps);
            err("batch commands need the query file too; use run_batch_on_text")
        }
        Command::Serve { .. } => {
            // Serving binds sockets and blocks; the binary dispatches it to
            // `mrs_server` directly instead of through this pure function.
            err("serve runs a long-lived network service; the binary handles it directly")
        }
        Command::Mutate { .. } => {
            // Mutations talk to a running server over TCP; the binary owns
            // that path.
            err("mutate talks to a running server; the binary handles it directly")
        }
        Command::Disk { radius, .. } => {
            let points = parse_weighted_csv(file_text)?;
            check_radius(*radius)?;
            let n = points.len();
            let instance = WeightedInstance::ball(points, *radius);
            let report = dispatch_weighted("exact-disk-2d", DEFAULT_EPS, &instance)?;
            Ok(format!(
                "exact disk MaxRS: center = ({:.6}, {:.6}), covered weight = {:.6}, points = {}",
                report.placement.center.x(),
                report.placement.center.y(),
                report.placement.value,
                n
            ))
        }
        Command::DiskApprox { radius, eps, .. } => {
            let points = parse_weighted_csv(file_text)?;
            check_radius(*radius)?;
            check_eps(*eps, 0.5)?;
            if points.is_empty() {
                return Ok("empty input: nothing to place".to_string());
            }
            let instance = WeightedInstance::ball(points, *radius);
            let report = dispatch_weighted("approx-static-ball", *eps, &instance)?;
            Ok(format!(
                "approximate disk MaxRS (Theorem 1.2, ε = {eps}): center = ({:.6}, {:.6}), covered weight = {:.6}",
                report.placement.center.x(),
                report.placement.center.y(),
                report.placement.value
            ))
        }
        Command::Rect { width, height, .. } => {
            let points = parse_weighted_csv(file_text)?;
            check_extent("--width", *width)?;
            check_extent("--height", *height)?;
            let instance = WeightedInstance::axis_box(points, [*width, *height]);
            let report = dispatch_weighted("exact-rect-2d", DEFAULT_EPS, &instance)?;
            Ok(format!(
                "exact rectangle MaxRS: anchor = ({:.6}, {:.6}), covered weight = {:.6}",
                report.placement.center.x() - width / 2.0,
                report.placement.center.y() - height / 2.0,
                report.placement.value
            ))
        }
        Command::ColoredDisk { radius, .. } => {
            let sites = parse_colored_csv(file_text)?;
            check_radius(*radius)?;
            let instance = ColoredInstance::ball(sites, *radius);
            let report = dispatch_colored("output-sensitive-colored-disk", DEFAULT_EPS, &instance)?;
            Ok(format!(
                "exact colored disk MaxRS (Theorem 4.6): center = ({:.6}, {:.6}), distinct colors = {}",
                report.placement.center.x(),
                report.placement.center.y(),
                report.placement.distinct
            ))
        }
        Command::ColoredDiskApprox { radius, eps, .. } => {
            let sites = parse_colored_csv(file_text)?;
            check_radius(*radius)?;
            check_eps(*eps, 1.0)?;
            if sites.is_empty() {
                return Ok("empty input: nothing to place".to_string());
            }
            let instance = ColoredInstance::ball(sites, *radius);
            let report = dispatch_colored("approx-colored-disk-sampling", *eps, &instance)?;
            Ok(format!(
                "approximate colored disk MaxRS (Theorem 1.6, ε = {eps}): center = ({:.6}, {:.6}), distinct colors = {}",
                report.placement.center.x(),
                report.placement.center.y(),
                report.placement.distinct
            ))
        }
    }
}

/// The input file referenced by a command, if any.
pub fn input_path(command: &Command) -> Option<&str> {
    match command {
        Command::Help | Command::Solvers | Command::Serve { .. } => None,
        Command::Disk { path, .. }
        | Command::DiskApprox { path, .. }
        | Command::Rect { path, .. }
        | Command::ColoredDisk { path, .. }
        | Command::ColoredDiskApprox { path, .. }
        | Command::Mutate { path, .. }
        | Command::Batch { path, .. } => Some(path),
    }
}

/// The query-list file referenced by a command, if any (batch only).
pub fn queries_path(command: &Command) -> Option<&str> {
    match command {
        Command::Batch { queries, .. } => Some(queries),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_every_command() {
        assert_eq!(
            parse_args(&args(&["disk", "--radius", "2.5", "pts.csv"])).unwrap(),
            Command::Disk { radius: 2.5, path: "pts.csv".into() }
        );
        assert_eq!(
            parse_args(&args(&["rect", "--width", "1", "--height", "2", "pts.csv"])).unwrap(),
            Command::Rect { width: 1.0, height: 2.0, path: "pts.csv".into() }
        );
        assert_eq!(
            parse_args(&args(&["colored-disk-approx", "--radius", "1", "--eps", "0.1", "c.csv"]))
                .unwrap(),
            Command::ColoredDiskApprox { radius: 1.0, eps: 0.1, path: "c.csv".into() }
        );
        assert_eq!(parse_args(&args(&["help"])).unwrap(), Command::Help);
        assert_eq!(parse_args(&args(&["solvers"])).unwrap(), Command::Solvers);
        assert_eq!(parse_args(&[]).unwrap(), Command::Help);
    }

    #[test]
    fn rejects_malformed_arguments() {
        assert!(parse_args(&args(&["disk", "pts.csv"])).is_err());
        assert!(parse_args(&args(&["disk", "--radius", "abc", "pts.csv"])).is_err());
        assert!(parse_args(&args(&["frobnicate"])).is_err());
        assert!(parse_args(&args(&["disk", "--radius", "1", "a.csv", "b.csv"])).is_err());
        assert!(parse_args(&args(&["disk", "--radius", "1", "--bogus", "x", "a.csv"])).is_err());
    }

    #[test]
    fn inapplicable_flags_are_rejected_per_subcommand() {
        let e = parse_args(&args(&["colored-disk", "--radius", "1", "--eps", "0.3", "c.csv"]))
            .unwrap_err();
        assert!(e.0.contains("--eps") && e.0.contains("colored-disk"), "{e}");
        assert!(parse_args(&args(&["disk", "--radius", "1", "--width", "2", "a.csv"])).is_err());
        assert!(parse_args(&args(&[
            "rect", "--width", "1", "--height", "1", "--radius", "2", "a.csv"
        ]))
        .is_err());
        assert!(
            parse_args(&args(&["disk-approx", "--radius", "1", "--height", "2", "a.csv"])).is_err()
        );
    }

    #[test]
    fn parses_weighted_and_colored_csv() {
        let weighted = "0,0\n1.5, 2.5, 3  # heavy point\n\n# comment line\n";
        let points = parse_weighted_csv(weighted).unwrap();
        assert_eq!(points.len(), 2);
        assert_eq!(points[1].weight, 3.0);

        let colored = "0,0,0\n1,1,4\n";
        let sites = parse_colored_csv(colored).unwrap();
        assert_eq!(sites.len(), 2);
        assert_eq!(sites[1].color, 4);

        assert!(parse_weighted_csv("1,2,3,4").is_err());
        assert!(parse_weighted_csv("1,2,-1").is_err());
        assert!(parse_colored_csv("1,2").is_err());
        assert!(parse_colored_csv("1,2,red").is_err());
    }

    #[test]
    fn runs_queries_end_to_end_on_text_input() {
        let csv = "0,0\n0.5,0\n0.5,0.5\n9,9\n";
        let disk = Command::Disk { radius: 1.0, path: "ignored".into() };
        let report = run_on_text(&disk, csv).unwrap();
        assert!(report.contains("covered weight = 3.0"), "{report}");

        let rect = Command::Rect { width: 1.0, height: 1.0, path: "ignored".into() };
        let report = run_on_text(&rect, csv).unwrap();
        assert!(report.contains("covered weight = 3.0"), "{report}");

        let colored_csv = "0,0,0\n0.4,0,1\n0.4,0.3,1\n9,9,2\n";
        let colored = Command::ColoredDisk { radius: 1.0, path: "ignored".into() };
        let report = run_on_text(&colored, colored_csv).unwrap();
        assert!(report.contains("distinct colors = 2"), "{report}");

        let help = run_on_text(&Command::Help, "").unwrap();
        assert!(help.contains("USAGE"));
    }

    #[test]
    fn invalid_parameters_are_clean_errors_not_panics() {
        let csv = "0,0\n1,1\n";
        let bad_eps = Command::DiskApprox { radius: 1.0, eps: 0.9, path: "x".into() };
        assert!(run_on_text(&bad_eps, csv).unwrap_err().0.contains("--eps"));
        let bad_rect = Command::Rect { width: -1.0, height: 1.0, path: "x".into() };
        assert!(run_on_text(&bad_rect, csv).unwrap_err().0.contains("--width"));
        let bad_radius = Command::ColoredDisk { radius: -2.0, path: "x".into() };
        assert!(run_on_text(&bad_radius, "0,0,1\n").unwrap_err().0.contains("radius"));
        let bad_colored_eps =
            Command::ColoredDiskApprox { radius: 1.0, eps: 1.5, path: "x".into() };
        assert!(run_on_text(&bad_colored_eps, "0,0,1\n").unwrap_err().0.contains("--eps"));
        // ε ∈ [1/2, 1) is legal for the (1 − ε) color sampler even though the
        // Technique 1 estimator inside it only admits ε < 1/2.
        let high_eps = Command::ColoredDiskApprox { radius: 1.0, eps: 0.6, path: "x".into() };
        assert!(run_on_text(&high_eps, "0,0,1\n0.1,0,2\n").unwrap().contains("distinct colors"));
    }

    /// Doctest-style golden test: `maxrs solvers` must render exactly this
    /// table — name, problem, shape, dims, guarantee, batch capability,
    /// update capability (static | incremental, from
    /// `SolverDescriptor::dynamic`), and reference for every registered
    /// solver.  Registering a new solver (or changing a capability) means
    /// updating this expectation deliberately.
    #[test]
    fn solvers_listing_golden_output() {
        let expected = "\
registered solvers (name | problem | shape | dims | guarantee | batch | updates | reference):
  batched-interval-1d            weighted  ball  d = 1   exact             index-shared  static      Theorem 1.3 upper bound (O(n log n + m·n))
  exact-interval-1d              weighted  ball  d = 1   exact             index-shared  static      Section 5 per-length oracle (sorted sweep)
  exact-rect-2d                  weighted  box   d = 2   exact             index-shared  static      [IA83]/[NB95] rectangle sweep
  exact-disk-2d                  weighted  ball  d = 2   exact             index-shared  static      [CL86] disk sweep
  approx-static-ball             weighted  ball  any d   (1/2 − ε)-approx  index-shared  static      Theorem 1.2
  dynamic-ball                   weighted  ball  any d   (1/2 − ε)-approx  independent   incremental Theorem 1.1
  exact-colored-disk-enum        colored   ball  d = 2   exact             independent   static      candidate enumeration baseline
  exact-colored-disk-union       colored   ball  d = 2   exact             independent   static      Lemma 4.2
  output-sensitive-colored-disk  colored   ball  d = 2   exact             independent   static      Theorem 4.6
  approx-colored-ball            colored   ball  any d   (1/2 − ε)-approx  index-shared  static      Theorem 1.5
  approx-colored-disk-sampling   colored   ball  d = 2   (1 − ε)-approx    independent   static      Theorem 1.6
  exact-colored-rect-2d          colored   box   d = 2   exact             independent   static      [ZGH+22]-style sweep
  auto                           weighted  any   any d   (1/2 − ε)-approx  index-shared  static      cost-model router over the registered solvers
  auto                           colored   any   any d   (1/2 − ε)-approx  index-shared  static      cost-model router over the registered solvers
";
        assert_eq!(run_on_text(&Command::Solvers, "").unwrap(), expected);
    }

    #[test]
    fn solvers_listing_names_every_registered_solver() {
        let listing = run_on_text(&Command::Solvers, "").unwrap();
        for name in [
            "exact-disk-2d",
            "exact-rect-2d",
            "exact-interval-1d",
            "batched-interval-1d",
            "approx-static-ball",
            "dynamic-ball",
            "output-sensitive-colored-disk",
            "approx-colored-disk-sampling",
            "approx-colored-ball",
        ] {
            assert!(listing.contains(name), "missing {name} in:\n{listing}");
        }
    }

    #[test]
    fn approx_commands_run_and_report() {
        let csv: String =
            (0..50).map(|i| format!("{},{}\n", 0.01 * i as f64, 0.0)).collect::<String>();
        let cmd = Command::DiskApprox { radius: 1.0, eps: 0.25, path: "ignored".into() };
        let report = run_on_text(&cmd, &csv).unwrap();
        assert!(report.contains("approximate disk MaxRS"), "{report}");

        let colored_csv: String =
            (0..30).map(|i| format!("{},0,{}\n", 0.02 * i as f64, i % 5)).collect::<String>();
        let cmd = Command::ColoredDiskApprox { radius: 1.0, eps: 0.25, path: "ignored".into() };
        let report = run_on_text(&cmd, &colored_csv).unwrap();
        assert!(report.contains("distinct colors = 5"), "{report}");
    }

    #[test]
    fn input_path_extraction() {
        assert_eq!(input_path(&Command::Help), None);
        assert_eq!(input_path(&Command::Disk { radius: 1.0, path: "a.csv".into() }), Some("a.csv"));
        let batch = Command::Batch {
            queries: "q.txt".into(),
            threads: Some(2),
            eps: 0.25,
            deadline_ms: None,
            trace: false,
            path: "pts.csv".into(),
        };
        assert_eq!(input_path(&batch), Some("pts.csv"));
        assert_eq!(queries_path(&batch), Some("q.txt"));
        assert_eq!(queries_path(&Command::Help), None);
    }

    #[test]
    fn parses_batch_command() {
        assert_eq!(
            parse_args(&args(&[
                "batch",
                "--queries",
                "q.txt",
                "--threads",
                "3",
                "--eps",
                "0.3",
                "pts.csv"
            ]))
            .unwrap(),
            Command::Batch {
                queries: "q.txt".into(),
                threads: Some(3),
                eps: 0.3,
                deadline_ms: None,
                trace: false,
                path: "pts.csv".into(),
            }
        );
        // `--trace` turns per-query tracing on; it applies to batch only.
        assert!(matches!(
            parse_args(&args(&["batch", "--queries", "q.txt", "--trace", "pts.csv"])).unwrap(),
            Command::Batch { trace: true, .. }
        ));
        assert!(parse_args(&args(&["disk", "--radius", "1", "--trace", "p"])).is_err());
        // `--deadline-ms` arms the batch compute deadline; batch-only.
        assert!(matches!(
            parse_args(&args(&["batch", "--queries", "q", "--deadline-ms", "500", "p"])).unwrap(),
            Command::Batch { deadline_ms: Some(500), .. }
        ));
        assert!(parse_args(&args(&["batch", "--queries", "q", "--deadline-ms", "x", "p"])).is_err());
        assert!(parse_args(&args(&["disk", "--radius", "1", "--deadline-ms", "5", "p"])).is_err());
        // --queries is mandatory, --threads must be a positive integer, and
        // batch flags are rejected on other subcommands.
        assert!(parse_args(&args(&["batch", "pts.csv"])).is_err());
        assert!(parse_args(&args(&["batch", "--queries", "q", "--threads", "0", "p"])).is_err());
        assert!(parse_args(&args(&["disk", "--radius", "1", "--queries", "q", "p"])).is_err());
        assert!(parse_args(&args(&["batch", "--queries", "q", "--radius", "1", "p"])).is_err());
    }

    #[test]
    fn parses_serve_command() {
        assert_eq!(
            parse_args(&args(&[
                "serve",
                "--addr",
                "127.0.0.1:7070",
                "--threads",
                "4",
                "--dataset",
                "demo=examples/data/batch_points.csv",
            ]))
            .unwrap(),
            Command::Serve {
                addr: "127.0.0.1:7070".into(),
                threads: Some(4),
                eps: 0.25,
                seed: None,
                slow_query_ms: None,
                request_timeout_ms: None,
                queue_capacity: None,
                max_inflight: None,
                overload_watermark: None,
                chaos_solver: false,
                runtime: None,
                datasets: vec![("demo".into(), "examples/data/batch_points.csv".into(), 2)],
            }
        );
        // `--runtime` parses its two spellings, rejects others, serve-only.
        assert!(matches!(
            parse_args(&args(&["serve", "--addr", "x:1", "--runtime", "threaded"])).unwrap(),
            Command::Serve { runtime: Some(r), .. } if r == "threaded"
        ));
        assert!(matches!(
            parse_args(&args(&["serve", "--addr", "x:1", "--runtime", "epoll"])).unwrap(),
            Command::Serve { runtime: Some(r), .. } if r == "epoll"
        ));
        assert!(parse_args(&args(&["serve", "--addr", "x:1", "--runtime", "fibers"])).is_err());
        assert!(parse_args(&args(&["serve", "--addr", "x:1", "--runtime"])).is_err());
        assert!(parse_args(&args(&["disk", "--radius", "1", "--runtime", "epoll", "a"])).is_err());
        // The overload knobs parse and are serve-only.
        assert!(matches!(
            parse_args(&args(&[
                "serve",
                "--addr",
                "x:1",
                "--request-timeout-ms",
                "250",
                "--queue-capacity",
                "64",
                "--max-inflight",
                "8",
                "--overload-watermark",
                "0.5",
                "--chaos-solver",
            ]))
            .unwrap(),
            Command::Serve {
                request_timeout_ms: Some(250),
                queue_capacity: Some(64),
                max_inflight: Some(8),
                overload_watermark: Some(watermark),
                chaos_solver: true,
                ..
            } if watermark == 0.5
        ));
        assert!(parse_args(&args(&["serve", "--addr", "x:1", "--queue-capacity", "0"])).is_err());
        assert!(parse_args(&args(&["serve", "--addr", "x:1", "--max-inflight", "no"])).is_err());
        assert!(
            parse_args(&args(&["serve", "--addr", "x:1", "--overload-watermark", "-1"])).is_err()
        );
        assert!(parse_args(&args(&["disk", "--radius", "1", "--max-inflight", "4", "a"])).is_err());
        assert!(parse_args(&args(&["disk", "--radius", "1", "--chaos-solver", "a"])).is_err());
        // `--slow-query-ms` arms the slow-query log; serve-only.
        assert!(matches!(
            parse_args(&args(&["serve", "--addr", "x:1", "--slow-query-ms", "250"])).unwrap(),
            Command::Serve { slow_query_ms: Some(250), .. }
        ));
        assert!(parse_args(&args(&["serve", "--addr", "x:1", "--slow-query-ms", "fast"])).is_err());
        assert!(parse_args(&args(&["disk", "--radius", "1", "--slow-query-ms", "9", "a"])).is_err());
        // A `@1d` suffix marks a 1-D dataset file.
        assert!(matches!(
            parse_args(&args(&["serve", "--addr", "x:1", "--dataset", "ticks=events.csv@1d"]))
                .unwrap(),
            Command::Serve { ref datasets, .. }
                if datasets == &[("ticks".to_string(), "events.csv".to_string(), 1)]
        ));
        assert!(parse_args(&args(&["serve", "--addr", "x:1", "--dataset", "t=@1d"])).is_err());
        assert!(matches!(
            parse_args(&args(&["serve", "--addr", "x:1", "--seed", "7"])).unwrap(),
            Command::Serve { seed: Some(7), .. }
        ));
        assert!(parse_args(&args(&["serve", "--addr", "x:1", "--seed", "-2"])).is_err());
        // A bad ε is a clean CLI error, not an engine-config panic.
        let e = parse_args(&args(&["serve", "--addr", "x:1", "--eps", "1.5"])).unwrap_err();
        assert!(e.0.contains("--eps"), "{e}");
        assert!(parse_args(&args(&["disk", "--radius", "1", "--seed", "7", "a.csv"])).is_err());
        // --addr is mandatory, name=path must be well-formed, serve takes no
        // positional file, and serve flags are rejected on other subcommands.
        assert!(parse_args(&args(&["serve"])).is_err());
        assert!(parse_args(&args(&["serve", "--addr", "x:1", "--dataset", "nopath"])).is_err());
        assert!(parse_args(&args(&["serve", "--addr", "x:1", "--dataset", "=p"])).is_err());
        assert!(parse_args(&args(&["serve", "--addr", "x:1", "stray.csv"])).is_err());
        assert!(parse_args(&args(&["serve", "--addr", "x:1", "--radius", "1"])).is_err());
        assert!(parse_args(&args(&["disk", "--radius", "1", "--addr", "x:1", "a.csv"])).is_err());
        // The pure text runner refuses to serve; the binary owns that path.
        let serve = Command::Serve {
            addr: "127.0.0.1:0".into(),
            threads: None,
            eps: 0.25,
            seed: None,
            slow_query_ms: None,
            request_timeout_ms: None,
            queue_capacity: None,
            max_inflight: None,
            overload_watermark: None,
            chaos_solver: false,
            runtime: None,
            datasets: Vec::new(),
        };
        assert!(run_on_text(&serve, "").is_err());
        assert_eq!(input_path(&serve), None);
    }

    #[test]
    fn parses_mutate_command() {
        assert_eq!(
            parse_args(&args(&[
                "mutate",
                "--addr",
                "127.0.0.1:7070",
                "--dataset",
                "demo",
                "new.csv"
            ]))
            .unwrap(),
            Command::Mutate {
                addr: "127.0.0.1:7070".into(),
                dataset: "demo".into(),
                delete: false,
                path: "new.csv".into(),
            }
        );
        assert!(matches!(
            parse_args(&args(&[
                "mutate",
                "--addr",
                "x:1",
                "--dataset",
                "demo",
                "--delete",
                "gone.csv"
            ]))
            .unwrap(),
            Command::Mutate { delete: true, .. }
        ));
        // --addr, --dataset NAME (exactly one, bare) and the file are all
        // mandatory; serve-style name=path is rejected with a hint.
        assert!(parse_args(&args(&["mutate", "--dataset", "demo", "f.csv"])).is_err());
        assert!(parse_args(&args(&["mutate", "--addr", "x:1", "f.csv"])).is_err());
        assert!(
            parse_args(&args(&["mutate", "--addr", "x:1", "--dataset", "a=b", "f.csv"])).is_err()
        );
        assert!(parse_args(&args(&[
            "mutate",
            "--addr",
            "x:1",
            "--dataset",
            "a",
            "--dataset",
            "b",
            "f.csv"
        ]))
        .is_err());
        assert!(parse_args(&args(&["mutate", "--addr", "x:1", "--dataset", "demo"])).is_err());
        // --delete applies to mutate only; query flags are rejected on mutate.
        assert!(parse_args(&args(&["disk", "--radius", "1", "--delete", "a.csv"])).is_err());
        assert!(parse_args(&args(&[
            "mutate",
            "--addr",
            "x:1",
            "--dataset",
            "d",
            "--radius",
            "1",
            "f.csv"
        ]))
        .is_err());
        // The pure text runner refuses; the binary owns the network path.
        let mutate = Command::Mutate {
            addr: "x:1".into(),
            dataset: "demo".into(),
            delete: false,
            path: "f.csv".into(),
        };
        assert!(run_on_text(&mutate, "").is_err());
        assert_eq!(input_path(&mutate), Some("f.csv"));
    }

    #[test]
    fn batch_scripts_interleave_updates_and_queries() {
        // Start with a 3-point cluster; insert a heavy point mid-script and
        // delete it again: the same query sees three different versions.
        let csv = "0,0\n0.4,0\n0,0.4\n9,9\n";
        let script = "disk,1.0\ninsert,0.2,0.2,5\ndisk,1.0\ndelete,0.2,0.2\ndisk,1.0\n";
        let out = run_batch_on_text(csv, script, None, 0.25, None, false).unwrap();
        assert!(out.contains("covered weight = 3.000000"), "{out}");
        assert!(out.contains("covered weight = 8.000000"), "{out}");
        assert!(out.contains("@v1]"), "{out}");
        assert!(out.contains("@v2]"), "{out}");
        assert!(out.contains("@v3]"), "{out}");
        assert!(out.contains("applied: +1 −0 (missed 0) → v2"), "{out}");
        assert!(out.contains("batch: 3 queries (0 failed), 2 updates"), "{out}");
        assert!(out.contains("certified 3/3 (0 mismatches)"), "{out}");
        assert!(out.contains("dataset: version = 3 | delta ="), "{out}");
        assert!(out.contains("compactions ="), "{out}");
    }

    #[test]
    fn parses_batch_points_and_queries() {
        let (points, sites) =
            parse_batch_csv("0,0\n1,1,2.5\n2,2,1,7  # weighted and colored\n").unwrap();
        assert_eq!(points.len(), 3);
        assert_eq!(points[1].weight, 2.5);
        assert_eq!(sites.len(), 1);
        assert_eq!(sites[0].color, 7);
        assert!(parse_batch_csv("1\n").is_err());
        assert!(parse_batch_csv("1,2,3,4,5\n").is_err());
        assert!(parse_batch_csv("1,2,-1\n").is_err());
        assert!(parse_batch_csv("1,2,1,red\n").is_err());
        // Non-finite numbers are clean errors, not engine panics.
        assert!(parse_batch_csv("inf,0,1\n").is_err());
        assert!(parse_batch_csv("0,0,NaN\n").is_err());
        assert!(parse_weighted_csv("0,inf\n").is_err());
        assert!(parse_colored_csv("NaN,0,1\n").is_err());

        let steps = parse_batch_script(
            "disk,1.0\nrect,2,1\ncolored-disk,0.5\n# comment\ndisk-approx,1\ncolored-disk-approx,1\n",
        )
        .unwrap();
        assert_eq!(steps.len(), 5);
        let solver_of = |step: &ScriptStep<2>| match step {
            ScriptStep::Query(q) => q.solver().to_string(),
            ScriptStep::Mutate(_) => unreachable!("query step"),
        };
        assert_eq!(solver_of(&steps[0]), "exact-disk-2d");
        assert_eq!(solver_of(&steps[1]), "exact-rect-2d");
        assert_eq!(solver_of(&steps[2]), "output-sensitive-colored-disk");
        assert!(parse_batch_script("disk,1,2\n").is_err());
        assert!(parse_batch_script("rect,1\n").is_err());
        assert!(parse_batch_script("disk,-1\n").is_err());
        assert!(parse_batch_script("frobnicate,1\n").is_err());

        // The `-auto` variants all hand their query to the cost-model router.
        let steps =
            parse_batch_script("disk-auto,1\nrect-auto,2,1\ncolored-disk-auto,0.5\n").unwrap();
        assert_eq!(steps.len(), 3);
        assert!(steps.iter().all(|s| solver_of(s) == "auto"), "{steps:?}");
        assert!(parse_batch_script("disk-auto,0\n").is_err());
        assert!(parse_batch_script("rect-auto,1\n").is_err());
        assert!(parse_batch_script("colored-disk-auto\n").is_err());

        // Update steps: inserts with optional weight/color, deletes by
        // coordinates, dynamic-disk queries through the maintained tracker.
        let steps = parse_batch_script(
            "insert,1,2\ninsert,1,2,3\ninsert,1,2,3,4\ndelete,1,2\ndisk-dynamic,1\n",
        )
        .unwrap();
        assert_eq!(steps.len(), 5);
        assert!(matches!(
            steps[0],
            ScriptStep::Mutate(Mutation::Insert { point, color: None }) if point.weight == 1.0
        ));
        assert!(matches!(steps[2], ScriptStep::Mutate(Mutation::Insert { color: Some(4), .. })));
        assert!(matches!(steps[3], ScriptStep::Mutate(Mutation::Delete { .. })));
        assert_eq!(solver_of(&steps[4]), "dynamic-ball");
        assert!(parse_batch_script("insert,1\n").is_err());
        assert!(parse_batch_script("insert,1,2,-1\n").is_err());
        assert!(parse_batch_script("insert,1,2,3,red\n").is_err());
        assert!(parse_batch_script("delete,1\n").is_err());
    }

    #[test]
    fn batch_runs_mixed_queries_through_the_executor() {
        // Four points: a weighted cluster of 3 near the origin carrying
        // colors 0/1/2, plus a far heavier point with a repeated color.  The
        // cluster wins the radius-1 queries; the far point wins at radius
        // 0.1, where no two points fit in one disk.
        let csv = "0,0,1,0\n0.4,0,1,1\n0,0.4,1,2\n9,9,2,0\n";
        let queries = "disk,1.0\nrect,1,1\ncolored-disk,1.0\ndisk,0.1\n";
        let out = run_batch_on_text(csv, queries, Some(2), 0.25, None, false).unwrap();
        assert!(out.contains("covered weight = 3.000000"), "{out}");
        assert!(out.contains("distinct colors = 3"), "{out}");
        assert!(out.contains("covered weight = 2.000000"), "{out}");
        assert!(out.contains("batch: 4 queries (0 failed)"), "{out}");
        assert!(out.contains("certified 4/4 (0 mismatches)"), "{out}");
        assert!(out.contains("threads = 2"), "{out}");
        // Per-query wall-time summary (satellite of the serving PR): the
        // batch report surfaces the same LatencySummary the server serializes,
        // tail quantiles included.
        assert!(out.contains("per-query: min"), "{out}");
        assert!(out.contains("p95"), "{out}");
        assert!(out.contains("p99"), "{out}");
        // Untraced runs print no trace block.
        assert!(!out.contains("traces:"), "{out}");
        // Work counters: the disk query runs through the shared grid, so the
        // batch must report nonzero candidates examined.
        assert!(out.contains("index work:"), "{out}");
        assert!(out.contains("candidates examined"), "{out}");
        assert!(out.contains("sieve-rejected"), "{out}");

        assert!(run_batch_on_text(csv, "", None, 0.25, None, false)
            .unwrap()
            .contains("empty query file"));
        assert!(run_batch_on_text(csv, queries, None, 1.5, None, false).is_err());
    }

    #[test]
    fn batch_trace_prints_one_phase_line_per_query() {
        let csv = "0,0,1,0\n0.4,0,1,1\n0,0.4,1,2\n9,9,2,0\n";
        let queries = "disk,1.0\ninsert,0.2,0.2,5\ndisk-auto,1.0\n";
        let out = run_batch_on_text(csv, queries, None, 0.25, None, true).unwrap();
        assert!(out.contains("traces:"), "{out}");
        // Two queries executed (the insert is an update, not a query): the
        // trace lines carry the step position, the solver (with the routed
        // choice for `auto`), the phase split and the observed version.
        assert!(out.contains("[q   0] exact-disk-2d"), "{out}");
        assert!(out.contains("[q   2] auto→"), "{out}");
        assert!(out.contains("plan "), "{out}");
        assert!(out.contains("solve "), "{out}");
        assert!(out.contains("certify "), "{out}");
        assert!(out.matches("| v").count() >= 2, "{out}");
        assert!(!out.contains("FAILED"), "{out}");
    }

    #[test]
    fn batch_surfaces_auto_routing_choices_and_work() {
        // Three `-auto` steps and one explicitly-solved step: the routed
        // lines carry the `auto→<choice>` tag, the explicit one stays plain,
        // and the aggregate line reports picks plus predicted/actual work.
        let csv = "0,0,1,0\n0.4,0,1,1\n0,0.4,1,2\n9,9,2,0\n";
        let queries = "disk-auto,1.0\nrect-auto,1,1\ncolored-disk-auto,1.0\ndisk,0.1\n";
        let out = run_batch_on_text(csv, queries, None, 0.25, None, false).unwrap();
        assert!(out.contains("[auto→"), "{out}");
        // A weighted axis-box can only go to the exact rect solver, so this
        // pick is deterministic; the colored-ball step must answer exactly
        // (all three cluster colors fit in a unit disk) whichever capable
        // solver the model scores cheapest.
        assert!(out.contains("[auto→exact-rect-2d @v1]"), "{out}");
        assert!(out.contains("covered weight = 3.000000"), "{out}");
        assert!(out.contains("distinct colors = 3"), "{out}");
        assert!(out.contains("[exact-disk-2d @v1]"), "{out}");
        assert!(out.contains("batch: 4 queries (0 failed)"), "{out}");
        assert!(out.contains("(0 mismatches)"), "{out}");
        assert!(out.contains("auto: routed 3 | predicted work = "), "{out}");
        assert!(out.contains("| actual work = "), "{out}");

        // No `-auto` steps → no aggregate auto line.
        let out = run_batch_on_text(csv, "disk,1.0\n", None, 0.25, None, false).unwrap();
        assert!(!out.contains("auto:"), "{out}");
    }
}
