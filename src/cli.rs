//! Parsing and formatting helpers for the `maxrs` command-line tool.
//!
//! The binary (`src/bin/maxrs.rs`) is a thin wrapper around these functions so
//! that everything interesting — CSV parsing, query-spec parsing, result
//! formatting — is unit-testable without spawning processes.

use std::fmt;
use std::str::FromStr;

use mrs_core::config::{ColorSamplingConfig, SamplingConfig};
use mrs_core::exact::{max_disk_placement, max_rect_placement};
use mrs_core::input::{ColoredBallInstance, WeightedBallInstance};
use mrs_core::technique1::approx_static_ball;
use mrs_core::technique2::{approx_colored_disk_sampling, output_sensitive_colored_disk};
use mrs_geom::{ColoredSite, Point2, WeightedPoint};

/// A parsed command line.
#[derive(Clone, Debug, PartialEq)]
pub enum Command {
    /// Exact disk MaxRS (`disk --radius R <file>`).
    Disk {
        /// Query radius.
        radius: f64,
        /// Input CSV path.
        path: String,
    },
    /// Approximate disk MaxRS via Technique 1 (`disk-approx --radius R --eps E <file>`).
    DiskApprox {
        /// Query radius.
        radius: f64,
        /// Approximation parameter.
        eps: f64,
        /// Input CSV path.
        path: String,
    },
    /// Exact rectangle MaxRS (`rect --width W --height H <file>`).
    Rect {
        /// Rectangle width.
        width: f64,
        /// Rectangle height.
        height: f64,
        /// Input CSV path.
        path: String,
    },
    /// Exact colored disk MaxRS (`colored-disk --radius R <file>`).
    ColoredDisk {
        /// Query radius.
        radius: f64,
        /// Input CSV path.
        path: String,
    },
    /// Approximate colored disk MaxRS via color sampling
    /// (`colored-disk-approx --radius R --eps E <file>`).
    ColoredDiskApprox {
        /// Query radius.
        radius: f64,
        /// Approximation parameter.
        eps: f64,
        /// Input CSV path.
        path: String,
    },
    /// Print usage.
    Help,
}

/// Errors produced while parsing arguments or input files.
#[derive(Clone, Debug, PartialEq)]
pub struct CliError(pub String);

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CliError {}

fn err<T>(message: impl Into<String>) -> Result<T, CliError> {
    Err(CliError(message.into()))
}

/// The usage string printed by `maxrs help`.
pub const USAGE: &str = "\
maxrs — maximum range sum queries over CSV point files

USAGE:
    maxrs disk                --radius R            <points.csv>
    maxrs disk-approx         --radius R --eps E    <points.csv>
    maxrs rect                --width W --height H  <points.csv>
    maxrs colored-disk        --radius R            <colored.csv>
    maxrs colored-disk-approx --radius R --eps E    <colored.csv>

INPUT FORMATS (one record per line, '#' starts a comment):
    weighted points:  x,y[,weight]      (weight defaults to 1)
    colored sites:    x,y,color         (color is a non-negative integer)
";

/// Parses the command-line arguments (excluding the program name).
pub fn parse_args(args: &[String]) -> Result<Command, CliError> {
    let Some(command) = args.first() else {
        return Ok(Command::Help);
    };
    let mut radius = None;
    let mut eps = None;
    let mut width = None;
    let mut height = None;
    let mut path = None;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--radius" => {
                radius = Some(parse_flag_value(args, &mut i, "--radius")?);
            }
            "--eps" => {
                eps = Some(parse_flag_value(args, &mut i, "--eps")?);
            }
            "--width" => {
                width = Some(parse_flag_value(args, &mut i, "--width")?);
            }
            "--height" => {
                height = Some(parse_flag_value(args, &mut i, "--height")?);
            }
            flag if flag.starts_with("--") => {
                return err(format!("unknown flag {flag}"));
            }
            positional => {
                if path.is_some() {
                    return err(format!("unexpected extra argument {positional}"));
                }
                path = Some(positional.to_string());
                i += 1;
            }
        }
    }
    let need_path = |path: Option<String>| -> Result<String, CliError> {
        path.ok_or_else(|| CliError("missing input file path".into()))
    };
    match command.as_str() {
        "help" | "--help" | "-h" => Ok(Command::Help),
        "disk" => Ok(Command::Disk {
            radius: radius.ok_or_else(|| CliError("disk requires --radius".into()))?,
            path: need_path(path)?,
        }),
        "disk-approx" => Ok(Command::DiskApprox {
            radius: radius.ok_or_else(|| CliError("disk-approx requires --radius".into()))?,
            eps: eps.unwrap_or(0.25),
            path: need_path(path)?,
        }),
        "rect" => Ok(Command::Rect {
            width: width.ok_or_else(|| CliError("rect requires --width".into()))?,
            height: height.ok_or_else(|| CliError("rect requires --height".into()))?,
            path: need_path(path)?,
        }),
        "colored-disk" => Ok(Command::ColoredDisk {
            radius: radius.ok_or_else(|| CliError("colored-disk requires --radius".into()))?,
            path: need_path(path)?,
        }),
        "colored-disk-approx" => Ok(Command::ColoredDiskApprox {
            radius: radius
                .ok_or_else(|| CliError("colored-disk-approx requires --radius".into()))?,
            eps: eps.unwrap_or(0.25),
            path: need_path(path)?,
        }),
        other => err(format!("unknown command {other}; run `maxrs help`")),
    }
}

fn parse_flag_value(args: &[String], i: &mut usize, flag: &str) -> Result<f64, CliError> {
    let Some(raw) = args.get(*i + 1) else {
        return err(format!("{flag} requires a value"));
    };
    let value = f64::from_str(raw).map_err(|_| CliError(format!("{flag}: invalid number {raw}")))?;
    *i += 2;
    Ok(value)
}

/// Parses weighted points from CSV text (`x,y[,weight]` per line).
pub fn parse_weighted_csv(text: &str) -> Result<Vec<WeightedPoint<2>>, CliError> {
    let mut out = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split(',').map(str::trim).collect();
        if fields.len() < 2 || fields.len() > 3 {
            return err(format!("line {}: expected `x,y[,weight]`, got `{line}`", lineno + 1));
        }
        let x = parse_number(fields[0], lineno)?;
        let y = parse_number(fields[1], lineno)?;
        let weight = if fields.len() == 3 { parse_number(fields[2], lineno)? } else { 1.0 };
        if weight < 0.0 {
            return err(format!("line {}: weights must be non-negative", lineno + 1));
        }
        out.push(WeightedPoint::new(Point2::xy(x, y), weight));
    }
    Ok(out)
}

/// Parses colored sites from CSV text (`x,y,color` per line).
pub fn parse_colored_csv(text: &str) -> Result<Vec<ColoredSite<2>>, CliError> {
    let mut out = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split(',').map(str::trim).collect();
        if fields.len() != 3 {
            return err(format!("line {}: expected `x,y,color`, got `{line}`", lineno + 1));
        }
        let x = parse_number(fields[0], lineno)?;
        let y = parse_number(fields[1], lineno)?;
        let color: usize = fields[2]
            .parse()
            .map_err(|_| CliError(format!("line {}: invalid color `{}`", lineno + 1, fields[2])))?;
        out.push(ColoredSite::new(Point2::xy(x, y), color));
    }
    Ok(out)
}

fn parse_number(raw: &str, lineno: usize) -> Result<f64, CliError> {
    f64::from_str(raw).map_err(|_| CliError(format!("line {}: invalid number `{raw}`", lineno + 1)))
}

/// Executes a parsed command against already-loaded file contents and returns
/// the report text.  Pure function so it can be tested without touching the
/// filesystem.
pub fn run_on_text(command: &Command, file_text: &str) -> Result<String, CliError> {
    match command {
        Command::Help => Ok(USAGE.to_string()),
        Command::Disk { radius, .. } => {
            let points = parse_weighted_csv(file_text)?;
            if !(radius.is_finite() && *radius > 0.0) {
                return err("radius must be positive");
            }
            let placement = max_disk_placement(&points, *radius);
            Ok(format!(
                "exact disk MaxRS: center = ({:.6}, {:.6}), covered weight = {:.6}, points = {}",
                placement.center.x(),
                placement.center.y(),
                placement.value,
                points.len()
            ))
        }
        Command::DiskApprox { radius, eps, .. } => {
            let points = parse_weighted_csv(file_text)?;
            if points.is_empty() {
                return Ok("empty input: nothing to place".to_string());
            }
            let instance = WeightedBallInstance::new(points, *radius);
            let placement = approx_static_ball(&instance, SamplingConfig::practical(*eps));
            Ok(format!(
                "approximate disk MaxRS (Theorem 1.2, ε = {eps}): center = ({:.6}, {:.6}), covered weight = {:.6}",
                placement.center.x(),
                placement.center.y(),
                placement.value
            ))
        }
        Command::Rect { width, height, .. } => {
            let points = parse_weighted_csv(file_text)?;
            let placement = max_rect_placement(&points, *width, *height);
            Ok(format!(
                "exact rectangle MaxRS: anchor = ({:.6}, {:.6}), covered weight = {:.6}",
                placement.rect.lo.x(),
                placement.rect.lo.y(),
                placement.value
            ))
        }
        Command::ColoredDisk { radius, .. } => {
            let sites = parse_colored_csv(file_text)?;
            let placement = output_sensitive_colored_disk(&sites, *radius);
            Ok(format!(
                "exact colored disk MaxRS (Theorem 4.6): center = ({:.6}, {:.6}), distinct colors = {}",
                placement.center.x(),
                placement.center.y(),
                placement.distinct
            ))
        }
        Command::ColoredDiskApprox { radius, eps, .. } => {
            let sites = parse_colored_csv(file_text)?;
            if sites.is_empty() {
                return Ok("empty input: nothing to place".to_string());
            }
            let instance = ColoredBallInstance::new(sites, *radius);
            let placement =
                approx_colored_disk_sampling(&instance, ColorSamplingConfig::new(*eps));
            Ok(format!(
                "approximate colored disk MaxRS (Theorem 1.6, ε = {eps}): center = ({:.6}, {:.6}), distinct colors = {}",
                placement.center.x(),
                placement.center.y(),
                placement.distinct
            ))
        }
    }
}

/// The input file referenced by a command, if any.
pub fn input_path(command: &Command) -> Option<&str> {
    match command {
        Command::Help => None,
        Command::Disk { path, .. }
        | Command::DiskApprox { path, .. }
        | Command::Rect { path, .. }
        | Command::ColoredDisk { path, .. }
        | Command::ColoredDiskApprox { path, .. } => Some(path),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_every_command() {
        assert_eq!(
            parse_args(&args(&["disk", "--radius", "2.5", "pts.csv"])).unwrap(),
            Command::Disk { radius: 2.5, path: "pts.csv".into() }
        );
        assert_eq!(
            parse_args(&args(&["rect", "--width", "1", "--height", "2", "pts.csv"])).unwrap(),
            Command::Rect { width: 1.0, height: 2.0, path: "pts.csv".into() }
        );
        assert_eq!(
            parse_args(&args(&["colored-disk-approx", "--radius", "1", "--eps", "0.1", "c.csv"]))
                .unwrap(),
            Command::ColoredDiskApprox { radius: 1.0, eps: 0.1, path: "c.csv".into() }
        );
        assert_eq!(parse_args(&args(&["help"])).unwrap(), Command::Help);
        assert_eq!(parse_args(&[]).unwrap(), Command::Help);
    }

    #[test]
    fn rejects_malformed_arguments() {
        assert!(parse_args(&args(&["disk", "pts.csv"])).is_err());
        assert!(parse_args(&args(&["disk", "--radius", "abc", "pts.csv"])).is_err());
        assert!(parse_args(&args(&["frobnicate"])).is_err());
        assert!(parse_args(&args(&["disk", "--radius", "1", "a.csv", "b.csv"])).is_err());
        assert!(parse_args(&args(&["disk", "--radius", "1", "--bogus", "x", "a.csv"])).is_err());
    }

    #[test]
    fn parses_weighted_and_colored_csv() {
        let weighted = "0,0\n1.5, 2.5, 3  # heavy point\n\n# comment line\n";
        let points = parse_weighted_csv(weighted).unwrap();
        assert_eq!(points.len(), 2);
        assert_eq!(points[1].weight, 3.0);

        let colored = "0,0,0\n1,1,4\n";
        let sites = parse_colored_csv(colored).unwrap();
        assert_eq!(sites.len(), 2);
        assert_eq!(sites[1].color, 4);

        assert!(parse_weighted_csv("1,2,3,4").is_err());
        assert!(parse_weighted_csv("1,2,-1").is_err());
        assert!(parse_colored_csv("1,2").is_err());
        assert!(parse_colored_csv("1,2,red").is_err());
    }

    #[test]
    fn runs_queries_end_to_end_on_text_input() {
        let csv = "0,0\n0.5,0\n0.5,0.5\n9,9\n";
        let disk = Command::Disk { radius: 1.0, path: "ignored".into() };
        let report = run_on_text(&disk, csv).unwrap();
        assert!(report.contains("covered weight = 3.0"), "{report}");

        let rect = Command::Rect { width: 1.0, height: 1.0, path: "ignored".into() };
        let report = run_on_text(&rect, csv).unwrap();
        assert!(report.contains("covered weight = 3.0"), "{report}");

        let colored_csv = "0,0,0\n0.4,0,1\n0.4,0.3,1\n9,9,2\n";
        let colored = Command::ColoredDisk { radius: 1.0, path: "ignored".into() };
        let report = run_on_text(&colored, colored_csv).unwrap();
        assert!(report.contains("distinct colors = 2"), "{report}");

        let help = run_on_text(&Command::Help, "").unwrap();
        assert!(help.contains("USAGE"));
    }

    #[test]
    fn approx_commands_run_and_report() {
        let csv: String =
            (0..50).map(|i| format!("{},{}\n", 0.01 * i as f64, 0.0)).collect::<String>();
        let cmd = Command::DiskApprox { radius: 1.0, eps: 0.25, path: "ignored".into() };
        let report = run_on_text(&cmd, &csv).unwrap();
        assert!(report.contains("approximate disk MaxRS"), "{report}");

        let colored_csv: String =
            (0..30).map(|i| format!("{},0,{}\n", 0.02 * i as f64, i % 5)).collect::<String>();
        let cmd = Command::ColoredDiskApprox { radius: 1.0, eps: 0.25, path: "ignored".into() };
        let report = run_on_text(&cmd, &colored_csv).unwrap();
        assert!(report.contains("distinct colors = 5"), "{report}");
    }

    #[test]
    fn input_path_extraction() {
        assert_eq!(input_path(&Command::Help), None);
        assert_eq!(
            input_path(&Command::Disk { radius: 1.0, path: "a.csv".into() }),
            Some("a.csv")
        );
    }
}
